//! Supervised sharded serving runtime: N panic-isolated worker shards
//! scoring RCU [`ModelSnapshot`]s through the zero-allocation
//! [`ScoreBatch`] engine, one writer shard applying online updates, and
//! a supervisor that restarts crashed shards with exponential backoff
//! behind a restart-budget circuit breaker.
//!
//! ```text
//!                      ┌────────────────────────────────────────────┐
//!   submit() ───────►  │  per-shard bounded queues (backpressure +  │
//!   (admission:        │  deadline-aware shedding at admission)     │
//!    shortest queue)   └───────┬──────────┬──────────┬──────────────┘
//!                              │          │◄──steal──│  own pop,
//!                        ┌─────▼───┐ ┌────▼────┐ ┌───▼─────┐ steal when idle
//!                        │ worker 0│ │ worker 1│ │ worker N│  catch_unwind
//!                        │ ladder +│ │         │ │         │  + in-flight
//!                        │ScoreBatch│ │        │ │         │  recovery
//!                        └─────┬───┘ └────┬────┘ └───┬─────┘
//!                              │ SnapshotCell::load  │
//!                      ┌───────▼──────────▼──────────▼──────┐
//!                      │   RCU ModelSnapshot (versioned)    │◄── publish
//!                      └────────────────────────────────────┘      │
//!   submit_learn() ──► bounded learn queue ──► writer shard ── OnlineRuntime
//!                      (MPSC, backpressure)    (checkpoints, retrains,
//!                                               rollbacks, dead letters)
//!                              supervisor: restart w/ backoff,
//!                              circuit breaker, requeue in-flight
//! ```
//!
//! **Failure containment.** Each worker runs inside
//! [`catch_unwind`](std::panic::catch_unwind); a panicking shard's
//! in-flight batch is requeued at the *front* of the work queue by the
//! supervisor (so crashed-over requests keep their place), and the
//! shard is restarted after an exponential backoff. A shard that
//! exhausts its restart budget trips a per-shard circuit breaker and
//! stays down; when every worker is down, admission fails fast with
//! [`SubmitError::Unavailable`] instead of queueing unboundedly.
//!
//! **Work distribution.** Each worker owns a bounded queue; admission
//! routes every request to the currently-shortest queue (round-robin on
//! ties) and a worker whose own queue runs dry *steals* from its
//! siblings, so one slow shard — or one unlucky burst — cannot strand
//! queued work behind it. Steals are counted in
//! [`RuntimeStats::steals`].
//!
//! **Overload protection.** The work queues are bounded: when every
//! queue is full the request is rejected at submission
//! ([`SubmitError::QueueFull`]) rather than buffered without limit.
//! Deadline-aware admission consults the
//! narrowest ladder tier's live latency estimate — a request whose
//! budget cannot be met even degraded, accounting for the queue ahead
//! of it, is shed with [`SubmitError::DeadlineHopeless`]. Requests that
//! *are* admitted degrade through the sub-norm reduction tiers first
//! (the [`DegradationLadder`] picks the widest tier fitting the
//! remaining budget) before any answer is late.
//!
//! **Durability.** The writer shard owns the [`OnlineRuntime`]:
//! checkpoint writes retry with capped jittered backoff
//! ([`RetryPolicy`](crate::runtime::RetryPolicy)), and when a write
//! fails even after retries the fleet keeps serving from the last good
//! published snapshot (degraded-mode serving). [`Server::drain`]
//! flushes remaining work, writes a final checkpoint, and exports the
//! quarantine buffer.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::kernels;
use crate::registry::{ModelRegistry, TenantHandle};
use crate::runtime::{
    DeadLetter, DegradationLadder, ModelSnapshot, OnlineRuntime, RejectReason, RuntimeError,
    RuntimeStats, SnapshotCell,
};
use crate::{NormMode, PredictOptions, ScoreBatch};

/// How long a parked worker or the supervisor sleeps between checks for
/// shutdown/chaos flags when no work arrives.
const IDLE_TICK: Duration = Duration::from_millis(5);

/// Recovers a poisoned mutex: every structure guarded here is updated
/// atomically from the guard's perspective (no multi-step invariants),
/// so the value inside a poisoned lock is always usable.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

// ---------------------------------------------------------------------------
// Bounded queue
// ---------------------------------------------------------------------------

/// Result of a blocking pop on a [`BoundedQueue`].
enum Pop<T> {
    /// An item was dequeued.
    Item(T),
    /// The wait timed out with the queue still open.
    TimedOut,
    /// The queue is closed and fully drained.
    Closed,
}

/// Why a push was refused.
enum PushRefused<T> {
    /// The queue is at capacity (backpressure).
    Full(T),
    /// The queue is closed to new work.
    Closed(T),
}

struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded FIFO queue (mutex + condvar) with explicit backpressure:
/// pushes never block — a full queue refuses the item so admission
/// control can reject with a reason instead of buffering unboundedly.
/// Closing wakes all waiters; pops keep draining remaining items after
/// close and only report [`Pop::Closed`] once empty.
struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn len(&self) -> usize {
        lock_unpoisoned(&self.inner).items.len()
    }

    /// Closed to new work *and* fully drained — nothing will ever come
    /// out of this queue again (modulo forced requeues).
    fn closed_and_empty(&self) -> bool {
        let inner = lock_unpoisoned(&self.inner);
        inner.closed && inner.items.is_empty()
    }

    /// Appends unless full or closed; never blocks.
    fn try_push(&self, item: T) -> Result<(), PushRefused<T>> {
        let mut inner = lock_unpoisoned(&self.inner);
        if inner.closed {
            return Err(PushRefused::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushRefused::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Requeues a crashed-over item at the *front*, ignoring capacity
    /// and the closed flag: recovered in-flight work must never be
    /// dropped by the very mechanism meant to save it.
    fn push_front_forced(&self, item: T) {
        lock_unpoisoned(&self.inner).items.push_front(item);
        self.not_empty.notify_one();
    }

    /// Blocks up to `timeout` for one item.
    fn pop(&self, timeout: Duration) -> Pop<T> {
        let mut inner = lock_unpoisoned(&self.inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Pop::Item(item);
            }
            if inner.closed {
                return Pop::Closed;
            }
            let (guard, result) = match self.not_empty.wait_timeout(inner, timeout) {
                Ok((g, r)) => (g, r),
                Err(poisoned) => {
                    let (g, r) = poisoned.into_inner();
                    (g, r)
                }
            };
            inner = guard;
            if result.timed_out() {
                return match inner.items.pop_front() {
                    Some(item) => Pop::Item(item),
                    None if inner.closed => Pop::Closed,
                    None => Pop::TimedOut,
                };
            }
        }
    }

    /// Dequeues without blocking.
    fn try_pop(&self) -> Option<T> {
        lock_unpoisoned(&self.inner).items.pop_front()
    }

    /// Closes the queue to new pushes and wakes every waiter.
    fn close(&self) {
        lock_unpoisoned(&self.inner).closed = true;
        self.not_empty.notify_all();
    }

    /// Removes and returns everything queued (used by drain to cancel
    /// work no shard will ever pop).
    fn drain_all(&self) -> Vec<T> {
        lock_unpoisoned(&self.inner).items.drain(..).collect()
    }
}

// ---------------------------------------------------------------------------
// Sharded work queues with stealing
// ---------------------------------------------------------------------------

/// Per-shard bounded queues: admission routes to the shortest queue
/// (round-robin tie-break), each worker pops its own queue, and an idle
/// worker steals from its siblings. Total capacity is split evenly, so
/// backpressure semantics match the old single MPMC queue.
struct ShardedQueue<T> {
    queues: Vec<BoundedQueue<T>>,
    /// Round-robin cursor breaking admission ties between equally-short
    /// queues so single-length bursts still spread across shards.
    next: AtomicUsize,
}

impl<T> ShardedQueue<T> {
    fn new(shards: usize, total_capacity: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = total_capacity.div_ceil(shards).max(1);
        ShardedQueue {
            queues: (0..shards).map(|_| BoundedQueue::new(per_shard)).collect(),
            next: AtomicUsize::new(0),
        }
    }

    /// Total queued across every shard.
    fn len(&self) -> usize {
        self.queues.iter().map(BoundedQueue::len).sum()
    }

    /// Routes one request to the shortest queue (ties broken by a
    /// rotating cursor); falls through to the remaining queues if the
    /// chosen one refuses. `Full` is only reported once *every* queue
    /// is full; a single closed queue among open ones behaves as full.
    fn admit(&self, item: T) -> Result<(), PushRefused<T>> {
        let n = self.queues.len();
        let start = self.next.fetch_add(1, Ordering::Relaxed) % n;
        let mut target = start;
        let mut shortest = usize::MAX;
        for offset in 0..n {
            let idx = (start + offset) % n;
            let len = self.queues[idx].len();
            if len < shortest {
                shortest = len;
                target = idx;
            }
        }
        let mut item = item;
        let mut any_open = false;
        for offset in 0..n {
            let idx = (target + offset) % n;
            match self.queues[idx].try_push(item) {
                Ok(()) => return Ok(()),
                Err(PushRefused::Full(returned)) => {
                    any_open = true;
                    item = returned;
                }
                Err(PushRefused::Closed(returned)) => item = returned,
            }
        }
        if any_open {
            Err(PushRefused::Full(item))
        } else {
            Err(PushRefused::Closed(item))
        }
    }

    /// Forces a recovered in-flight item back to the front of `shard`'s
    /// own queue (capacity- and close-exempt, like the underlying
    /// queue's forced push — siblings can still steal it).
    fn push_front_forced(&self, shard: usize, item: T) {
        self.queues[shard % self.queues.len()].push_front_forced(item);
    }

    /// Blocking pop from the worker's own queue.
    fn pop_own(&self, shard: usize, timeout: Duration) -> Pop<T> {
        self.queues[shard % self.queues.len()].pop(timeout)
    }

    /// Non-blocking pop from the worker's own queue.
    fn try_pop_own(&self, shard: usize) -> Option<T> {
        self.queues[shard % self.queues.len()].try_pop()
    }

    /// Steals one queued request from the first non-empty sibling,
    /// scanning from the thief's right-hand neighbour.
    fn steal(&self, thief: usize) -> Option<T> {
        let n = self.queues.len();
        for offset in 1..n {
            if let Some(item) = self.queues[(thief + offset) % n].try_pop() {
                return Some(item);
            }
        }
        None
    }

    /// Every queue closed and drained: the fleet can exit.
    fn all_closed_and_empty(&self) -> bool {
        self.queues.iter().all(BoundedQueue::closed_and_empty)
    }

    /// Closes every queue to new pushes and wakes all waiters.
    fn close_all(&self) {
        for queue in &self.queues {
            queue.close();
        }
    }

    /// Removes and returns everything still queued anywhere.
    fn drain_all(&self) -> Vec<T> {
        self.queues
            .iter()
            .flat_map(BoundedQueue::drain_all)
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Public request/answer types
// ---------------------------------------------------------------------------

/// Tunables of the sharded serving runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Worker shards scoring concurrently (≥ 1).
    pub shards: usize,
    /// Total bounded work-queue capacity, split evenly across the
    /// per-shard queues; when every queue is full, admission rejects.
    pub queue_depth: usize,
    /// Bounded learn-queue capacity feeding the writer shard.
    pub learn_queue_depth: usize,
    /// Largest micro-batch a worker coalesces per scoring pass.
    pub batch_max: usize,
    /// Restarts each shard may consume before its circuit breaker
    /// opens and it stays down.
    pub restart_budget: u32,
    /// Base restart backoff; doubles per consecutive restart of the
    /// same shard.
    pub restart_backoff: Duration,
    /// Cap on the exponential restart backoff.
    pub restart_backoff_max: Duration,
    /// EWMA smoothing factor for each worker's latency ladder.
    pub ladder_alpha: f64,
    /// Writer publishes a fresh snapshot every this many applied
    /// samples, in addition to the durability boundaries the
    /// [`OnlineRuntime`] already publishes at (0 = boundaries only).
    pub publish_every: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 2,
            queue_depth: 1024,
            learn_queue_depth: 256,
            batch_max: 16,
            restart_budget: 8,
            restart_backoff: Duration::from_millis(5),
            restart_backoff_max: Duration::from_millis(200),
            ladder_alpha: 0.2,
            publish_every: 64,
        }
    }
}

/// Why admission control refused a request synchronously.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// The bounded work queue is at capacity (backpressure).
    QueueFull,
    /// Even the narrowest degradation tier cannot meet the request's
    /// budget given the queue ahead of it; shed instead of answering
    /// hopelessly late.
    DeadlineHopeless {
        /// The budget that could not be met.
        budget: Duration,
    },
    /// The request failed sanitization.
    Rejected(RejectReason),
    /// Every worker shard is circuit-broken; nothing could answer.
    Unavailable,
    /// The server is draining and admits no new work.
    ShuttingDown,
    /// A tenant-routed request could not be pinned to a mapped model:
    /// no registry is configured, the tenant is unknown/quarantined, or
    /// its model failed validation. Carries the registry's reason.
    TenantUnavailable {
        /// The tenant that could not be served.
        tenant: String,
        /// Why the registry refused it.
        reason: String,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "work queue full (backpressure)"),
            SubmitError::DeadlineHopeless { budget } => {
                write!(f, "budget {budget:?} unmeetable even at the narrowest tier")
            }
            SubmitError::Rejected(reason) => write!(f, "rejected: {reason}"),
            SubmitError::Unavailable => write!(f, "no live worker shards"),
            SubmitError::ShuttingDown => write!(f, "server is draining"),
            SubmitError::TenantUnavailable { tenant, reason } => {
                write!(f, "tenant `{tenant}` unavailable: {reason}")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an *admitted* request still came back without an answer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// A worker rejected the row while scoring it.
    Rejected(RejectReason),
    /// The server drained (or every shard died) before the request was
    /// scored.
    Canceled,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Rejected(reason) => write!(f, "rejected: {reason}"),
            ServeError::Canceled => write!(f, "canceled before scoring"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One answered request.
#[derive(Debug, Clone)]
pub struct ServeAnswer {
    /// Predicted class.
    pub label: usize,
    /// Dimensions actually scored.
    pub dims_used: usize,
    /// Ladder tier that served the batch.
    pub tier: usize,
    /// Served below full dimensionality.
    pub degraded: bool,
    /// Time from submission to answer (queueing + scoring).
    pub elapsed: Duration,
    /// Whether the answer landed within the request's budget (always
    /// true without one).
    pub deadline_met: bool,
    /// Worker shard that scored the request.
    pub shard: usize,
    /// The exact immutable snapshot scored against — lets an auditor
    /// replay the request through the scalar oracle and demand
    /// bit-identity.
    pub snapshot: Arc<ModelSnapshot>,
    /// For tenant-routed requests: the exact mapped model scored
    /// against, pinned for the same replay-and-audit purpose (the
    /// mapping cannot be retired while this answer is held). `None`
    /// for requests served by the writer-owned snapshot above.
    pub tenant: Option<TenantHandle>,
}

/// A pending answer; redeem with [`wait`](Ticket::wait).
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<ServeAnswer, ServeError>>,
}

impl Ticket {
    /// Blocks until the request is answered, rejected, or canceled.
    pub fn wait(self) -> Result<ServeAnswer, ServeError> {
        match self.rx.recv() {
            Ok(result) => result,
            Err(_) => Err(ServeError::Canceled),
        }
    }

    /// Like [`wait`](Ticket::wait) but gives up after `timeout`
    /// (returning [`ServeError::Canceled`]).
    pub fn wait_timeout(self, timeout: Duration) -> Result<ServeAnswer, ServeError> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(_) => Err(ServeError::Canceled),
        }
    }
}

struct Request {
    features: Vec<f64>,
    submitted: Instant,
    deadline: Option<Instant>,
    /// Pinned at admission: tenant-routed requests score against this
    /// mapped model (the exact version resolved when the request was
    /// admitted) instead of the writer's snapshot.
    tenant: Option<TenantHandle>,
    reply: mpsc::SyncSender<Result<ServeAnswer, ServeError>>,
}

struct LearnRequest {
    features: Vec<f64>,
    label: usize,
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

/// Atomic supervision/admission counters, readable live.
#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    admitted: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_deadline: AtomicU64,
    rejected_malformed: AtomicU64,
    rejected_unavailable: AtomicU64,
    rejected_shutting_down: AtomicU64,
    canceled: AtomicU64,
    requeued: AtomicU64,
    shard_panics: AtomicU64,
    shard_restarts: AtomicU64,
    circuit_opens: AtomicU64,
    learn_submitted: AtomicU64,
    learn_rejected: AtomicU64,
    writer_stalls: AtomicU64,
}

/// A point-in-time copy of the serving counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests offered to [`ServerHandle::submit`].
    pub submitted: u64,
    /// Requests admitted into the work queue.
    pub admitted: u64,
    /// Rejected: bounded queue at capacity (backpressure).
    pub rejected_queue_full: u64,
    /// Shed: budget unmeetable even fully degraded.
    pub rejected_deadline: u64,
    /// Rejected synchronously by the sanitizer.
    pub rejected_malformed: u64,
    /// Rejected: all worker shards circuit-broken.
    pub rejected_unavailable: u64,
    /// Rejected: server draining.
    pub rejected_shutting_down: u64,
    /// Admitted requests canceled by drain/shard death before scoring.
    pub canceled: u64,
    /// In-flight requests recovered from panicking shards and requeued.
    pub requeued: u64,
    /// Worker panics caught by the supervisor.
    pub shard_panics: u64,
    /// Worker restarts performed.
    pub shard_restarts: u64,
    /// Shards whose restart budget was exhausted (circuit opened).
    pub circuit_opens: u64,
    /// Labeled samples offered to [`ServerHandle::submit_learn`].
    pub learn_submitted: u64,
    /// Labeled samples refused by learn-queue backpressure.
    pub learn_rejected: u64,
    /// Chaos writer stalls honoured.
    pub writer_stalls: u64,
}

impl Counters {
    fn snapshot(&self) -> ServeStats {
        ServeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            rejected_deadline: self.rejected_deadline.load(Ordering::Relaxed),
            rejected_malformed: self.rejected_malformed.load(Ordering::Relaxed),
            rejected_unavailable: self.rejected_unavailable.load(Ordering::Relaxed),
            rejected_shutting_down: self.rejected_shutting_down.load(Ordering::Relaxed),
            canceled: self.canceled.load(Ordering::Relaxed),
            requeued: self.requeued.load(Ordering::Relaxed),
            shard_panics: self.shard_panics.load(Ordering::Relaxed),
            shard_restarts: self.shard_restarts.load(Ordering::Relaxed),
            circuit_opens: self.circuit_opens.load(Ordering::Relaxed),
            learn_submitted: self.learn_submitted.load(Ordering::Relaxed),
            learn_rejected: self.learn_rejected.load(Ordering::Relaxed),
            writer_stalls: self.writer_stalls.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// Shared state
// ---------------------------------------------------------------------------

struct Shared {
    work: ShardedQueue<Request>,
    learn: BoundedQueue<LearnRequest>,
    snapshots: Arc<SnapshotCell>,
    /// The writer's runtime; uncontended in steady state (only the
    /// writer thread locks it per message) and reclaimed by drain for
    /// the final checkpoint even if the writer panicked.
    runtime: Mutex<Option<OnlineRuntime>>,
    counters: Counters,
    /// Worker-side [`RuntimeStats`] deltas, merged per batch — the
    /// shard-aggregatable counters of the whole reader fleet.
    worker_stats: Mutex<RuntimeStats>,
    /// Live EWMA estimate (ns/row) of the narrowest ladder tier,
    /// published by workers for deadline-aware admission (0 = unknown).
    floor_ns: AtomicU64,
    /// Worker shards not permanently circuit-broken.
    live_shards: AtomicUsize,
    /// Set once drain begins: admission refuses new work.
    draining: AtomicBool,
    /// Expected feature width, for synchronous sanitization.
    n_features: usize,
    /// Multi-tenant model registry for tenant-routed requests
    /// ([`ServerHandle::submit_tenant`]); `None` = single-tenant server.
    registry: Option<Arc<ModelRegistry>>,
    config: ServeConfig,
    /// One in-flight slot per shard: the batch a worker is currently
    /// holding, recovered by the supervisor if the worker panics.
    in_flight: Vec<Mutex<Vec<Request>>>,
    /// Chaos: arm to make shard *i* panic mid-batch (after it has taken
    /// its in-flight batch, before scoring).
    kill_flags: Vec<AtomicBool>,
    /// Chaos: nanoseconds the writer sleeps before its next apply.
    stall_ns: AtomicU64,
    /// Chaos: nanoseconds worker *i* sleeps before its next pop —
    /// leaves its queue backed up so siblings demonstrably steal.
    shard_stall_ns: Vec<AtomicU64>,
}

enum Event {
    Panicked(usize),
    Exited,
}

/// Per-request routing decision a worker records while encoding, then
/// consumes while answering.
enum Verdict {
    /// Answer with this error.
    Reject(ServeError),
    /// Scored by the batched shared-snapshot engine; take the next
    /// prediction from `preds`.
    Shared,
    /// Scored inline against the request's pinned mapped model.
    Tenant {
        /// Predicted class.
        label: usize,
        /// Dimensions scored (the mapped model's full width).
        dims: usize,
    },
}

// ---------------------------------------------------------------------------
// Worker shard
// ---------------------------------------------------------------------------

fn worker_shard(shard: usize, shared: &Shared) {
    let snapshot0 = shared.snapshots.load();
    let dim = snapshot0.pipeline().model().dim();
    drop(snapshot0);
    let Ok(mut ladder) = DegradationLadder::new(dim, shared.config.ladder_alpha) else {
        // Impossible for a trained model (dim ≥ 1, alpha validated at
        // start); exiting cleanly beats poisoning the fleet.
        return;
    };
    let mut engine = ScoreBatch::new();
    let mut encoded = Vec::new();
    let mut preds = Vec::new();
    let mut locals = RuntimeStats::default();
    // Tenant-routed scoring: the dispatched kernel set and a reused
    // score buffer (zero steady-state allocation in the mapped path).
    let tenant_kernels = kernels::active();
    let mut tenant_scores: Vec<f64> = Vec::new();

    loop {
        // Chaos: an armed stall sleeps *before* popping, leaving this
        // shard's queue backed up so siblings demonstrably steal it.
        let stall = shared.shard_stall_ns[shard].swap(0, Ordering::Relaxed);
        if stall > 0 {
            std::thread::sleep(Duration::from_nanos(stall));
        }
        // Coalesce a micro-batch: block on the own queue for the first
        // request (stealing from siblings when it runs dry), then drain
        // greedily up to batch_max — own queue first, then steals.
        let mut stolen = 0u64;
        let first = match shared.work.pop_own(shard, IDLE_TICK) {
            Pop::Item(request) => request,
            Pop::TimedOut => match shared.work.steal(shard) {
                Some(request) => {
                    stolen += 1;
                    request
                }
                None => continue,
            },
            Pop::Closed => match shared.work.steal(shard) {
                Some(request) => {
                    stolen += 1;
                    request
                }
                None if shared.work.all_closed_and_empty() => break,
                // A sibling's queue re-filled (forced requeue) or holds
                // items a racing steal just missed; try again shortly.
                None => {
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
            },
        };
        let mut batch = vec![first];
        while batch.len() < shared.config.batch_max {
            match shared.work.try_pop_own(shard) {
                Some(request) => batch.push(request),
                None => match shared.work.steal(shard) {
                    Some(request) => {
                        stolen += 1;
                        batch.push(request);
                    }
                    None => break,
                },
            }
        }
        locals.steals += stolen;

        // Park the batch in the crash-recovery slot *before* any
        // fallible work: a panic from here on loses nothing.
        *lock_unpoisoned(&shared.in_flight[shard]) = batch;
        if shared.kill_flags[shard].swap(false, Ordering::Relaxed) {
            panic!("chaos: shard {shard} killed mid-batch");
        }

        // One tier for the whole batch, chosen from the tightest
        // remaining budget (degrade before missing deadlines).
        let now = Instant::now();
        let tightest_ns: Option<u64> = {
            let slot = lock_unpoisoned(&shared.in_flight[shard]);
            slot.iter()
                .filter_map(|r| {
                    r.deadline.map(|d| {
                        u64::try_from(d.saturating_duration_since(now).as_nanos())
                            .unwrap_or(u64::MAX)
                    })
                })
                .min()
        };
        let tier = ladder.choose(tightest_ns);
        let dims = ladder.dims(tier);
        let degraded = tier < ladder.full_tier();
        let opts = PredictOptions::reduced(dims, NormMode::Updated);

        // Sanitize + encode against one pinned snapshot. Tenant-routed
        // requests score inline against their admission-pinned mapped
        // model (full dimensionality — the packed planes carry no
        // sub-norm tiers); shared-model requests batch through the
        // ladder-driven ScoreBatch engine below.
        let snapshot = shared.snapshots.load();
        let started = Instant::now();
        encoded.clear();
        let mut verdicts: Vec<Verdict> = Vec::new();
        {
            let slot = lock_unpoisoned(&shared.in_flight[shard]);
            for request in slot.iter() {
                locals.infer_requests += 1;
                if let Some(reason) = sanitize(&request.features, shared.n_features) {
                    locals.rejected += 1;
                    verdicts.push(Verdict::Reject(ServeError::Rejected(reason)));
                    continue;
                }
                let hv = match snapshot.pipeline().encode(&request.features) {
                    Ok(hv) => hv,
                    // Unreachable for sanitized input; answer with a
                    // cancellation rather than a made-up reason.
                    Err(_) => {
                        locals.rejected += 1;
                        verdicts.push(Verdict::Reject(ServeError::Canceled));
                        continue;
                    }
                };
                match &request.tenant {
                    None => {
                        verdicts.push(Verdict::Shared);
                        encoded.push(hv);
                    }
                    Some(handle) => {
                        let query = hv.to_binary();
                        let view = handle.view();
                        match view.scores_into_with(&query, tenant_kernels, &mut tenant_scores) {
                            Ok(()) => {
                                // Last-wins argmax, matching the scalar
                                // oracle's and PackedModelView::predict's
                                // tie-breaking.
                                let mut label = 0usize;
                                let mut best = f64::NEG_INFINITY;
                                for (c, &s) in tenant_scores.iter().enumerate() {
                                    if s >= best {
                                        best = s;
                                        label = c;
                                    }
                                }
                                verdicts.push(Verdict::Tenant {
                                    label,
                                    dims: view.dim(),
                                });
                            }
                            // Unreachable: the registry validates the
                            // model's dimensionality against the shared
                            // encoder at load.
                            Err(_) => {
                                locals.rejected += 1;
                                verdicts.push(Verdict::Reject(ServeError::Canceled));
                            }
                        }
                    }
                }
            }
        }
        if !encoded.is_empty() {
            engine.predict_into(snapshot.pipeline().model(), &encoded, opts, &mut preds);
        } else {
            preds.clear();
        }
        let scored = preds.len() as u32;
        let per_row = started.elapsed() / scored.max(1);
        if scored > 0 {
            ladder.observe(tier, per_row);
            if let Some(floor) = ladder.estimate_ns(0) {
                shared
                    .floor_ns
                    .store(floor.max(0.0) as u64, Ordering::Relaxed);
            }
        }

        // Scoring is done: take the batch out of the recovery slot and
        // answer. (A panic after this point would drop the remaining
        // reply senders, surfacing as Canceled — never a double answer.)
        let batch = std::mem::take(&mut *lock_unpoisoned(&shared.in_flight[shard]));
        let mut next_pred = preds.iter();
        for (request, verdict) in batch.into_iter().zip(verdicts) {
            match verdict {
                Verdict::Reject(error) => {
                    let _ = request.reply.try_send(Err(error));
                }
                Verdict::Shared => {
                    let Some(&label) = next_pred.next() else {
                        let _ = request.reply.try_send(Err(ServeError::Canceled));
                        continue;
                    };
                    let answered_at = Instant::now();
                    let deadline_met = request.deadline.is_none_or(|d| answered_at <= d);
                    locals.answered += 1;
                    if degraded {
                        locals.degraded += 1;
                    }
                    if !deadline_met {
                        locals.deadline_misses += 1;
                    }
                    let _ = request.reply.try_send(Ok(ServeAnswer {
                        label,
                        dims_used: dims,
                        tier,
                        degraded,
                        elapsed: answered_at.duration_since(request.submitted),
                        deadline_met,
                        shard,
                        snapshot: Arc::clone(&snapshot),
                        tenant: None,
                    }));
                }
                Verdict::Tenant { label, dims } => {
                    let answered_at = Instant::now();
                    let deadline_met = request.deadline.is_none_or(|d| answered_at <= d);
                    locals.answered += 1;
                    if !deadline_met {
                        locals.deadline_misses += 1;
                    }
                    let tenant = request.tenant.clone();
                    let _ = request.reply.try_send(Ok(ServeAnswer {
                        label,
                        dims_used: dims,
                        tier: ladder.full_tier(),
                        degraded: false,
                        elapsed: answered_at.duration_since(request.submitted),
                        deadline_met,
                        shard,
                        snapshot: Arc::clone(&snapshot),
                        tenant,
                    }));
                }
            }
        }

        // Publish this batch's stats delta while it is still small —
        // a later crash loses at most one batch of counters.
        lock_unpoisoned(&shared.worker_stats).merge(&locals);
        locals = RuntimeStats::default();
    }
    lock_unpoisoned(&shared.worker_stats).merge(&locals);
}

/// Width/finiteness gate matching the runtime sanitizer's first two
/// checks (range checks stay writer-side where the trained spans live).
fn sanitize(features: &[f64], n_features: usize) -> Option<RejectReason> {
    if features.len() != n_features {
        return Some(RejectReason::WrongWidth {
            expected: n_features,
            actual: features.len(),
        });
    }
    features
        .iter()
        .position(|v| !v.is_finite())
        .map(|column| RejectReason::NonFinite { column })
}

// ---------------------------------------------------------------------------
// Writer shard
// ---------------------------------------------------------------------------

fn writer_shard(shared: &Shared) {
    let mut since_publish = 0u64;
    loop {
        let request = match shared.learn.pop(IDLE_TICK) {
            Pop::Item(request) => request,
            Pop::TimedOut => continue,
            Pop::Closed => break,
        };
        let stall = shared.stall_ns.swap(0, Ordering::Relaxed);
        if stall > 0 {
            shared
                .counters
                .writer_stalls
                .fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_nanos(stall));
        }
        let mut guard = lock_unpoisoned(&shared.runtime);
        let Some(runtime) = guard.as_mut() else {
            break;
        };
        // Quarantine and checkpoint failures are both absorbed by the
        // runtime (counted, never fatal); a panic from a genuine bug is
        // contained so one poisoned sample cannot kill the writer.
        let applied = catch_unwind(AssertUnwindSafe(|| {
            runtime.learn(&request.features, request.label).is_ok()
        }))
        .unwrap_or(false);
        if applied {
            since_publish += 1;
            if shared.config.publish_every > 0 && since_publish >= shared.config.publish_every {
                runtime.publish_snapshot();
                since_publish = 0;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------------------

struct ShardSeat {
    restarts_used: u32,
    restart_due: Option<Instant>,
    open: bool,
}

fn spawn_worker(
    shard: usize,
    shared: &Arc<Shared>,
    events: &mpsc::Sender<Event>,
) -> std::io::Result<JoinHandle<()>> {
    let shared = Arc::clone(shared);
    let events = events.clone();
    std::thread::Builder::new()
        .name(format!("generic-serve-worker-{shard}"))
        .spawn(move || {
            let outcome = catch_unwind(AssertUnwindSafe(|| worker_shard(shard, &shared)));
            let _ = events.send(match outcome {
                Ok(()) => Event::Exited,
                Err(_) => Event::Panicked(shard),
            });
        })
}

fn supervisor(shared: Arc<Shared>, events: mpsc::Receiver<Event>, sender: mpsc::Sender<Event>) {
    let n = shared.config.shards;
    let mut seats: Vec<ShardSeat> = (0..n)
        .map(|_| ShardSeat {
            restarts_used: 0,
            restart_due: None,
            open: false,
        })
        .collect();
    let mut running = n;

    loop {
        // Done when nothing is running and nothing is scheduled to be.
        if running == 0 && seats.iter().all(|s| s.restart_due.is_none()) {
            break;
        }

        // Fire due restarts.
        let now = Instant::now();
        for (shard, seat) in seats.iter_mut().enumerate() {
            if seat.restart_due.is_some_and(|at| at <= now) {
                seat.restart_due = None;
                match spawn_worker(shard, &shared, &sender) {
                    Ok(_) => {
                        running += 1;
                        shared
                            .counters
                            .shard_restarts
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => open_circuit(&shared, seat),
                }
            }
        }

        let wait = seats
            .iter()
            .filter_map(|s| s.restart_due)
            .map(|at| at.saturating_duration_since(now))
            .min()
            .unwrap_or(IDLE_TICK)
            .max(Duration::from_millis(1));
        let event = match events.recv_timeout(wait) {
            Ok(event) => event,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        };
        match event {
            Event::Exited => {
                running -= 1;
            }
            Event::Panicked(shard) => {
                running -= 1;
                shared.counters.shard_panics.fetch_add(1, Ordering::Relaxed);

                // Recover the in-flight batch: requeue at the front so
                // crashed-over requests keep their place in line.
                let stranded = std::mem::take(&mut *lock_unpoisoned(&shared.in_flight[shard]));
                shared
                    .counters
                    .requeued
                    .fetch_add(stranded.len() as u64, Ordering::Relaxed);
                for request in stranded.into_iter().rev() {
                    shared.work.push_front_forced(shard, request);
                }

                let seat = &mut seats[shard];
                if seat.restarts_used >= shared.config.restart_budget {
                    open_circuit(&shared, seat);
                } else {
                    seat.restarts_used += 1;
                    let exp = seat.restarts_used.saturating_sub(1).min(16);
                    let backoff = shared
                        .config
                        .restart_backoff
                        .saturating_mul(1u32 << exp)
                        .min(shared.config.restart_backoff_max);
                    seat.restart_due = Some(Instant::now() + backoff);
                }
            }
        }
    }

    // No shard will ever pop again; cancel whatever is still queued so
    // clients unblock (their reply senders drop → Canceled).
    if shared.live_shards.load(Ordering::Relaxed) == 0 {
        let orphaned = shared.work.drain_all();
        shared
            .counters
            .canceled
            .fetch_add(orphaned.len() as u64, Ordering::Relaxed);
    }
}

fn open_circuit(shared: &Shared, seat: &mut ShardSeat) {
    if !seat.open {
        seat.open = true;
        shared
            .counters
            .circuit_opens
            .fetch_add(1, Ordering::Relaxed);
        let left = shared.live_shards.fetch_sub(1, Ordering::Relaxed) - 1;
        if left == 0 {
            // Total outage: fail queued work fast instead of letting
            // clients wait on a fleet that cannot answer.
            shared.work.close_all();
        }
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// The running sharded server. Submit through [`handle`](Server::handle)
/// clones; shut down with [`drain`](Server::drain).
pub struct Server {
    shared: Arc<Shared>,
    supervisor: Option<JoinHandle<()>>,
    writer: Option<JoinHandle<()>>,
}

/// A cloneable submission handle.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

/// Everything the server accounted for, returned by [`Server::drain`].
#[derive(Debug)]
pub struct DrainReport {
    /// Admission/supervision counters.
    pub serve: ServeStats,
    /// Aggregated worker-shard counters (merged-on-drain
    /// [`RuntimeStats`]; inference-side fields only).
    pub workers: RuntimeStats,
    /// The writer runtime's counters (learning, checkpoints, retries).
    pub writer: RuntimeStats,
    /// Newest durable checkpoint generation.
    pub generation: u64,
    /// Labeled samples folded into the final model.
    pub seen: u64,
    /// The quarantine buffer at drain, oldest first — export with
    /// [`write_dead_letters_csv`](crate::runtime::write_dead_letters_csv).
    pub dead_letters: Vec<DeadLetter>,
    /// Whether the final checkpoint landed durably.
    pub final_checkpoint_ok: bool,
}

impl Server {
    /// Starts the fleet: `config.shards` workers, one writer owning
    /// `runtime`, and the supervisor.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid configuration or if a thread
    /// cannot be spawned.
    pub fn start(runtime: OnlineRuntime, config: ServeConfig) -> Result<Server, RuntimeError> {
        Server::start_with_registry(runtime, config, None)
    }

    /// Like [`Server::start`], with an optional multi-tenant
    /// [`ModelRegistry`]: tenant-routed requests
    /// ([`ServerHandle::submit_tenant`]) are pinned to their tenant's
    /// mapped model at admission and scored zero-copy by the worker
    /// shards. The registry's dimensionality must match the runtime's
    /// encoder.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid configuration, a registry whose
    /// dimensionality disagrees with the runtime's, or if a thread
    /// cannot be spawned.
    pub fn start_with_registry(
        runtime: OnlineRuntime,
        config: ServeConfig,
        registry: Option<Arc<ModelRegistry>>,
    ) -> Result<Server, RuntimeError> {
        if let Some(registry) = &registry {
            let dim = runtime.pipeline().model().dim();
            if registry.config().dim != dim {
                return Err(RuntimeError::Model(crate::HdcError::invalid(
                    "registry",
                    "registry dimensionality must match the serving encoder",
                )));
            }
        }
        if config.shards == 0 {
            return Err(RuntimeError::Model(crate::HdcError::invalid(
                "shards",
                "need at least one worker shard",
            )));
        }
        if config.batch_max == 0 {
            return Err(RuntimeError::Model(crate::HdcError::invalid(
                "batch_max",
                "micro-batches need room for at least one row",
            )));
        }
        let snapshots = runtime.snapshots();
        let n_features = runtime.pipeline().encoder().spec().n_features();
        let shared = Arc::new(Shared {
            work: ShardedQueue::new(config.shards, config.queue_depth),
            learn: BoundedQueue::new(config.learn_queue_depth),
            snapshots,
            runtime: Mutex::new(Some(runtime)),
            counters: Counters::default(),
            worker_stats: Mutex::new(RuntimeStats::default()),
            floor_ns: AtomicU64::new(0),
            live_shards: AtomicUsize::new(config.shards),
            draining: AtomicBool::new(false),
            n_features,
            registry,
            config,
            in_flight: (0..config.shards).map(|_| Mutex::new(Vec::new())).collect(),
            kill_flags: (0..config.shards).map(|_| AtomicBool::new(false)).collect(),
            stall_ns: AtomicU64::new(0),
            shard_stall_ns: (0..config.shards).map(|_| AtomicU64::new(0)).collect(),
        });

        let (event_tx, event_rx) = mpsc::channel();
        for shard in 0..config.shards {
            spawn_worker(shard, &shared, &event_tx).map_err(RuntimeError::Io)?;
        }
        let supervisor_handle = {
            let shared = Arc::clone(&shared);
            let sender = event_tx.clone();
            std::thread::Builder::new()
                .name("generic-serve-supervisor".into())
                .spawn(move || supervisor(shared, event_rx, sender))
                .map_err(RuntimeError::Io)?
        };
        let writer_handle = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("generic-serve-writer".into())
                .spawn(move || writer_shard(&shared))
                .map_err(RuntimeError::Io)?
        };
        Ok(Server {
            shared,
            supervisor: Some(supervisor_handle),
            writer: Some(writer_handle),
        })
    }

    /// A cloneable submission handle.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Graceful shutdown: stop admitting, let workers flush their
    /// micro-batches and the queue, write a final checkpoint, and
    /// export the quarantine buffer.
    ///
    /// # Errors
    ///
    /// Returns an error only when a supervision thread cannot be
    /// joined; checkpoint failure is reported in the drain report, not
    /// as an error.
    pub fn drain(mut self) -> Result<DrainReport, RuntimeError> {
        self.shared.draining.store(true, Ordering::Relaxed);
        self.shared.work.close_all();
        if let Some(handle) = self.supervisor.take() {
            handle
                .join()
                .map_err(|_| RuntimeError::Io(std::io::Error::other("supervisor panicked")))?;
        }
        self.shared.learn.close();
        if let Some(handle) = self.writer.take() {
            handle
                .join()
                .map_err(|_| RuntimeError::Io(std::io::Error::other("writer panicked")))?;
        }

        // Anything still queued has no consumer left; cancel it.
        let orphaned = self.shared.work.drain_all();
        self.shared
            .counters
            .canceled
            .fetch_add(orphaned.len() as u64, Ordering::Relaxed);
        drop(orphaned);

        let mut runtime = lock_unpoisoned(&self.shared.runtime).take();
        let (writer_stats, generation, seen, dead_letters, final_checkpoint_ok) =
            match runtime.as_mut() {
                Some(rt) => {
                    let ok = rt.checkpoint().is_ok();
                    (
                        *rt.stats(),
                        rt.generation(),
                        rt.seen(),
                        rt.dead_letters().cloned().collect(),
                        ok,
                    )
                }
                None => (RuntimeStats::default(), 0, 0, Vec::new(), false),
            };
        Ok(DrainReport {
            serve: self.shared.counters.snapshot(),
            workers: *lock_unpoisoned(&self.shared.worker_stats),
            writer: writer_stats,
            generation,
            seen,
            dead_letters,
            final_checkpoint_ok,
        })
    }
}

impl ServerHandle {
    /// Offers one inference request under an optional latency budget.
    /// Admission control answers synchronously: malformed input,
    /// backpressure, hopeless deadlines, outage, and drain are all
    /// rejected here with a reason; an admitted request yields a
    /// [`Ticket`].
    ///
    /// # Errors
    ///
    /// See [`SubmitError`].
    pub fn submit(
        &self,
        features: Vec<f64>,
        budget: Option<Duration>,
    ) -> Result<Ticket, SubmitError> {
        self.admit(features, budget, None)
    }

    /// Offers one inference request routed to `tenant`'s model in the
    /// server's [`ModelRegistry`]. The tenant's mapped model is
    /// resolved (cold-loading if necessary) and pinned *at admission*,
    /// so a hot-swap between admission and scoring cannot tear the
    /// request across versions.
    ///
    /// # Errors
    ///
    /// All of [`submit`](ServerHandle::submit)'s errors, plus
    /// [`SubmitError::TenantUnavailable`] when no registry is
    /// configured or the registry refuses the tenant (unknown,
    /// quarantined, over budget).
    pub fn submit_tenant(
        &self,
        tenant: &str,
        features: Vec<f64>,
        budget: Option<Duration>,
    ) -> Result<Ticket, SubmitError> {
        let Some(registry) = &self.shared.registry else {
            self.shared
                .counters
                .submitted
                .fetch_add(1, Ordering::Relaxed);
            self.shared
                .counters
                .rejected_malformed
                .fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::TenantUnavailable {
                tenant: tenant.to_owned(),
                reason: "server started without a model registry".to_owned(),
            });
        };
        let handle = match registry.get(tenant) {
            Ok(handle) => handle,
            Err(e) => {
                self.shared
                    .counters
                    .submitted
                    .fetch_add(1, Ordering::Relaxed);
                self.shared
                    .counters
                    .rejected_malformed
                    .fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::TenantUnavailable {
                    tenant: tenant.to_owned(),
                    reason: e.to_string(),
                });
            }
        };
        self.admit(features, budget, Some(handle))
    }

    fn admit(
        &self,
        features: Vec<f64>,
        budget: Option<Duration>,
        tenant: Option<TenantHandle>,
    ) -> Result<Ticket, SubmitError> {
        let shared = &self.shared;
        shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
        if shared.draining.load(Ordering::Relaxed) {
            shared
                .counters
                .rejected_shutting_down
                .fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::ShuttingDown);
        }
        let live = shared.live_shards.load(Ordering::Relaxed);
        if live == 0 {
            shared
                .counters
                .rejected_unavailable
                .fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Unavailable);
        }
        if let Some(reason) = sanitize(&features, shared.n_features) {
            shared
                .counters
                .rejected_malformed
                .fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Rejected(reason));
        }

        // Deadline-aware shedding: even the narrowest tier, behind the
        // queue already ahead of us, must fit the budget.
        if let Some(budget) = budget {
            let floor = shared.floor_ns.load(Ordering::Relaxed);
            if floor > 0 {
                let budget_ns = u64::try_from(budget.as_nanos()).unwrap_or(u64::MAX);
                let depth = shared.work.len() as u64;
                let expected = floor.saturating_mul(1 + depth / live as u64);
                if expected > budget_ns {
                    shared
                        .counters
                        .rejected_deadline
                        .fetch_add(1, Ordering::Relaxed);
                    return Err(SubmitError::DeadlineHopeless { budget });
                }
            }
        }

        let submitted = Instant::now();
        let (reply, rx) = mpsc::sync_channel(1);
        let request = Request {
            features,
            submitted,
            deadline: budget.map(|b| submitted + b),
            tenant,
            reply,
        };
        match shared.work.admit(request) {
            Ok(()) => {
                shared.counters.admitted.fetch_add(1, Ordering::Relaxed);
                Ok(Ticket { rx })
            }
            Err(PushRefused::Full(_)) => {
                shared
                    .counters
                    .rejected_queue_full
                    .fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::QueueFull)
            }
            Err(PushRefused::Closed(_)) => {
                shared
                    .counters
                    .rejected_shutting_down
                    .fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::ShuttingDown)
            }
        }
    }

    /// Offers one labeled sample to the writer shard (fire-and-forget;
    /// quarantine decisions surface in the drain report).
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] under writer backpressure,
    /// [`SubmitError::ShuttingDown`] once draining.
    pub fn submit_learn(&self, features: Vec<f64>, label: usize) -> Result<(), SubmitError> {
        let shared = &self.shared;
        shared
            .counters
            .learn_submitted
            .fetch_add(1, Ordering::Relaxed);
        if shared.draining.load(Ordering::Relaxed) {
            return Err(SubmitError::ShuttingDown);
        }
        match shared.learn.try_push(LearnRequest { features, label }) {
            Ok(()) => Ok(()),
            Err(PushRefused::Full(_)) => {
                shared
                    .counters
                    .learn_rejected
                    .fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::QueueFull)
            }
            Err(PushRefused::Closed(_)) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Live admission/supervision counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.counters.snapshot()
    }

    /// Worker shards not circuit-broken.
    pub fn live_shards(&self) -> usize {
        self.shared.live_shards.load(Ordering::Relaxed)
    }

    /// Current total work-queue depth across every shard (for tests
    /// and load generators).
    pub fn queue_depth(&self) -> usize {
        self.shared.work.len()
    }

    /// The RCU snapshot cell workers serve from.
    pub fn snapshots(&self) -> Arc<SnapshotCell> {
        Arc::clone(&self.shared.snapshots)
    }

    /// Chaos hook: the next batch shard `i` picks up panics mid-batch
    /// (after the in-flight slot is filled, before scoring) — the
    /// worst-case kill the supervisor must recover from.
    pub fn chaos_kill_shard(&self, shard: usize) {
        if let Some(flag) = self.shared.kill_flags.get(shard) {
            flag.store(true, Ordering::Relaxed);
        }
    }

    /// Chaos hook: worker `shard` sleeps `stall` before its next pop,
    /// leaving its own queue backed up — the deterministic way to make
    /// siblings steal (observable as [`RuntimeStats::steals`]).
    pub fn chaos_stall_shard(&self, shard: usize, stall: Duration) {
        if let Some(slot) = self.shared.shard_stall_ns.get(shard) {
            slot.store(
                u64::try_from(stall.as_nanos()).unwrap_or(u64::MAX),
                Ordering::Relaxed,
            );
        }
    }

    /// Chaos hook: the writer sleeps `stall` before applying its next
    /// sample, backing the learn queue up against its bound.
    pub fn chaos_stall_writer(&self, stall: Duration) {
        self.shared.stall_ns.store(
            u64::try_from(stall.as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn bounded_queue_backpressure_and_fifo() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        q.try_push(1).map_err(|_| ()).unwrap();
        q.try_push(2).map_err(|_| ()).unwrap();
        assert!(matches!(q.try_push(3), Err(PushRefused::Full(3))));
        assert_eq!(q.len(), 2);
        q.push_front_forced(0);
        assert!(matches!(q.pop(Duration::ZERO), Pop::Item(0)));
        assert!(matches!(q.pop(Duration::ZERO), Pop::Item(1)));
        q.close();
        assert!(matches!(q.try_push(9), Err(PushRefused::Closed(9))));
        // Remaining items still drain after close…
        assert!(matches!(q.pop(Duration::ZERO), Pop::Item(2)));
        // …then the queue reports closed.
        assert!(matches!(q.pop(Duration::ZERO), Pop::Closed));
    }

    #[test]
    fn pop_times_out_on_an_open_empty_queue() {
        let q: BoundedQueue<u32> = BoundedQueue::new(1);
        assert!(matches!(q.pop(Duration::from_millis(1)), Pop::TimedOut));
    }

    use proptest::prelude::*;
    use proptest::Arbitrary;

    /// One admission-model operation.
    #[derive(Debug, Clone)]
    enum Op {
        Push(u32),
        PushFrontForced(u32),
        Pop,
        Close,
    }

    /// Push-heavy mix with occasional forced requeues and a rare close.
    struct ArbOp;

    impl Strategy for ArbOp {
        type Value = Op;

        fn sample(&self, rng: &mut rand::rngs::StdRng) -> Op {
            match u32::arbitrary(rng) % 9 {
                0..=3 => Op::Push(u32::arbitrary(rng)),
                4 => Op::PushFrontForced(u32::arbitrary(rng)),
                5..=7 => Op::Pop,
                _ => Op::Close,
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The bounded queue agrees with a straightforward VecDeque
        /// model under any interleaving of admission, forced requeue,
        /// pops, and close: FIFO order is preserved, capacity refuses
        /// admission exactly when the model is full, forced requeues
        /// always land at the front, and close drains before reporting.
        #[test]
        fn queue_matches_fifo_model(
            capacity in 1usize..8,
            ops in proptest::collection::vec(ArbOp, 1..64),
        ) {
            let queue: BoundedQueue<u32> = BoundedQueue::new(capacity);
            let mut model: VecDeque<u32> = VecDeque::new();
            let mut closed = false;
            for op in ops {
                match op {
                    Op::Push(v) => match queue.try_push(v) {
                        Ok(()) => {
                            prop_assert!(!closed, "push succeeded after close");
                            prop_assert!(model.len() < capacity, "push succeeded while full");
                            model.push_back(v);
                        }
                        Err(PushRefused::Full(got)) => {
                            prop_assert_eq!(got, v);
                            prop_assert!(!closed, "full-refusal after close");
                            // Forced requeues may overfill past capacity.
                            prop_assert!(model.len() >= capacity);
                        }
                        Err(PushRefused::Closed(got)) => {
                            prop_assert_eq!(got, v);
                            prop_assert!(closed, "closed-refusal while open");
                        }
                    },
                    Op::PushFrontForced(v) => {
                        queue.push_front_forced(v);
                        model.push_front(v);
                    }
                    Op::Pop => match queue.pop(Duration::ZERO) {
                        Pop::Item(got) => prop_assert_eq!(Some(got), model.pop_front()),
                        Pop::TimedOut => {
                            prop_assert!(model.is_empty());
                            prop_assert!(!closed);
                        }
                        Pop::Closed => {
                            prop_assert!(model.is_empty());
                            prop_assert!(closed);
                        }
                    },
                    Op::Close => {
                        queue.close();
                        closed = true;
                    }
                }
                prop_assert_eq!(queue.len(), model.len());
            }
            // Whatever remains drains in exact FIFO order.
            while let Some(expected) = model.pop_front() {
                match queue.pop(Duration::ZERO) {
                    Pop::Item(got) => prop_assert_eq!(got, expected),
                    other => prop_assert!(
                        false,
                        "queue ended early: expected {}, got {}",
                        expected,
                        match other {
                            Pop::TimedOut => "timeout",
                            Pop::Closed => "closed",
                            Pop::Item(_) => unreachable!(),
                        }
                    ),
                }
            }
        }
    }
}
