//! Level item memory and input quantization.
//!
//! Scalar features are quantized into a small number of bins; each bin is
//! represented in hyperspace by a *level hypervector*. Neighbouring levels
//! are similar and distant levels quasi-orthogonal — the Hamming distance
//! between levels grows linearly with their bin distance, which is the
//! distance-preservation property Figure 2(a) of the paper illustrates
//! (`L1·L1 ≈ 0`, `L1·L64 ≈ D/2`).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::{BinaryHv, HdcError};

/// Per-feature linear quantizer mapping raw feature values to level bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Quantizer {
    mins: Vec<f64>,
    spans: Vec<f64>,
    n_levels: usize,
}

impl Quantizer {
    /// Fits a quantizer to training data: per-feature min/max with
    /// `n_levels` uniform bins.
    ///
    /// # Errors
    ///
    /// Returns an error if `samples` is empty, rows have inconsistent
    /// lengths, or `n_levels < 2`.
    pub fn fit(samples: &[Vec<f64>], n_levels: usize) -> Result<Self, HdcError> {
        if samples.is_empty() {
            return Err(HdcError::EmptyInput);
        }
        if n_levels < 2 {
            return Err(HdcError::invalid("n_levels", "must be at least 2"));
        }
        let n_features = samples[0].len();
        if n_features == 0 {
            return Err(HdcError::invalid(
                "samples",
                "must have at least one feature",
            ));
        }
        let mut mins = vec![f64::INFINITY; n_features];
        let mut maxs = vec![f64::NEG_INFINITY; n_features];
        for row in samples {
            if row.len() != n_features {
                return Err(HdcError::FeatureCountMismatch {
                    expected: n_features,
                    actual: row.len(),
                });
            }
            for (j, &v) in row.iter().enumerate() {
                mins[j] = mins[j].min(v);
                maxs[j] = maxs[j].max(v);
            }
        }
        let spans = mins
            .iter()
            .zip(&maxs)
            .map(|(&lo, &hi)| if hi > lo { hi - lo } else { 1.0 })
            .collect();
        Ok(Quantizer {
            mins,
            spans,
            n_levels,
        })
    }

    /// Number of features the quantizer was fitted on.
    pub fn n_features(&self) -> usize {
        self.mins.len()
    }

    /// Number of quantization bins.
    pub fn n_levels(&self) -> usize {
        self.n_levels
    }

    /// The fitted per-feature minima (for serialization).
    pub fn mins(&self) -> &[f64] {
        &self.mins
    }

    /// The fitted per-feature spans (for serialization).
    pub fn spans(&self) -> &[f64] {
        &self.spans
    }

    /// Rebuilds a quantizer from serialized parts.
    ///
    /// # Errors
    ///
    /// Returns an error if the slices are empty or mismatched, spans are
    /// not strictly positive, or `n_levels < 2`.
    pub fn from_parts(mins: Vec<f64>, spans: Vec<f64>, n_levels: usize) -> Result<Self, HdcError> {
        if mins.is_empty() {
            return Err(HdcError::EmptyInput);
        }
        if mins.len() != spans.len() {
            return Err(HdcError::invalid(
                "spans",
                "mins and spans must have equal lengths",
            ));
        }
        if n_levels < 2 {
            return Err(HdcError::invalid("n_levels", "must be at least 2"));
        }
        if spans.iter().any(|&s| s <= 0.0 || !s.is_finite()) {
            return Err(HdcError::invalid("spans", "must be strictly positive"));
        }
        Ok(Quantizer {
            mins,
            spans,
            n_levels,
        })
    }

    /// Maps feature `feature` with raw value `value` to its level bin in
    /// `0..n_levels`. Values outside the fitted range clamp to the first or
    /// last bin.
    ///
    /// # Panics
    ///
    /// Panics if `feature >= self.n_features()`.
    pub fn bin(&self, feature: usize, value: f64) -> usize {
        assert!(
            feature < self.mins.len(),
            "feature index {feature} out of range for {} features",
            self.mins.len()
        );
        let t = (value - self.mins[feature]) / self.spans[feature];
        let b = (t * self.n_levels as f64).floor();
        (b.max(0.0) as usize).min(self.n_levels - 1)
    }

    /// Quantizes a full sample into level bins.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::FeatureCountMismatch`] if the sample length is
    /// wrong.
    pub fn bins(&self, sample: &[f64]) -> Result<Vec<usize>, HdcError> {
        if sample.len() != self.n_features() {
            return Err(HdcError::FeatureCountMismatch {
                expected: self.n_features(),
                actual: sample.len(),
            });
        }
        Ok(sample
            .iter()
            .enumerate()
            .map(|(j, &v)| self.bin(j, v))
            .collect())
    }
}

/// Distance-preserving level item memory.
///
/// The first level is random; each subsequent level flips the next
/// `dim / (2 * (n_levels - 1))` positions of a fixed random permutation,
/// so `hamming(L_i, L_j) ≈ |i - j| * dim / (2 * (n_levels - 1))` and the
/// two extreme levels are quasi-orthogonal.
///
/// ```
/// use generic_hdc::LevelMemory;
///
/// # fn main() -> Result<(), generic_hdc::HdcError> {
/// let levels = LevelMemory::new(4096, 64, 42)?;
/// let near = levels.level(0).hamming(levels.level(1))?;
/// let far = levels.level(0).hamming(levels.level(63))?;
/// assert!(far > 50 * near); // distance grows linearly with bin distance
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelMemory {
    levels: Vec<BinaryHv>,
}

impl LevelMemory {
    /// Generates `n_levels` level hypervectors of dimensionality `dim`
    /// deterministically from `seed`.
    ///
    /// # Errors
    ///
    /// Returns an error if `dim == 0`, `n_levels < 2`, or
    /// `n_levels - 1 > dim / 2` (not enough bits to flip per step).
    pub fn new(dim: usize, n_levels: usize, seed: u64) -> Result<Self, HdcError> {
        if n_levels < 2 {
            return Err(HdcError::invalid("n_levels", "must be at least 2"));
        }
        if n_levels - 1 > dim / 2 {
            return Err(HdcError::invalid(
                "n_levels",
                format!("too many levels ({n_levels}) for dimension {dim}"),
            ));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let base = BinaryHv::random(dim, &mut rng)?;
        let mut order: Vec<usize> = (0..dim).collect();
        order.shuffle(&mut rng);

        let flips_per_step = dim / (2 * (n_levels - 1));
        let mut levels = Vec::with_capacity(n_levels);
        let mut current = base;
        levels.push(current.clone());
        for step in 0..n_levels - 1 {
            for &pos in &order[step * flips_per_step..(step + 1) * flips_per_step] {
                current.flip_bit(pos);
            }
            levels.push(current.clone());
        }
        Ok(LevelMemory { levels })
    }

    /// Number of levels stored.
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Dimensionality of the level hypervectors.
    pub fn dim(&self) -> usize {
        self.levels[0].dim()
    }

    /// The level hypervector for bin `bin`.
    ///
    /// # Panics
    ///
    /// Panics if `bin >= self.n_levels()`.
    pub fn level(&self, bin: usize) -> &BinaryHv {
        &self.levels[bin]
    }

    /// Iterator over all level hypervectors in bin order.
    pub fn iter(&self) -> std::slice::Iter<'_, BinaryHv> {
        self.levels.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantizer_bins_span_range() {
        let data = vec![vec![0.0, 10.0], vec![1.0, 20.0]];
        let q = Quantizer::fit(&data, 4).unwrap();
        assert_eq!(q.bin(0, 0.0), 0);
        assert_eq!(q.bin(0, 1.0), 3);
        assert_eq!(q.bin(0, 0.49), 1);
        assert_eq!(q.bin(1, 15.0), 2);
    }

    #[test]
    fn quantizer_clamps_out_of_range() {
        let data = vec![vec![0.0], vec![1.0]];
        let q = Quantizer::fit(&data, 8).unwrap();
        assert_eq!(q.bin(0, -5.0), 0);
        assert_eq!(q.bin(0, 99.0), 7);
    }

    #[test]
    fn quantizer_is_monotonic() {
        let data = vec![vec![-3.0], vec![3.0]];
        let q = Quantizer::fit(&data, 16).unwrap();
        let mut prev = 0;
        for i in 0..100 {
            let v = -3.0 + 6.0 * (i as f64) / 99.0;
            let b = q.bin(0, v);
            assert!(b >= prev, "bins must be non-decreasing");
            prev = b;
        }
        assert_eq!(prev, 15);
    }

    #[test]
    fn quantizer_constant_feature_is_safe() {
        let data = vec![vec![5.0], vec![5.0]];
        let q = Quantizer::fit(&data, 4).unwrap();
        assert_eq!(q.bin(0, 5.0), 0);
    }

    #[test]
    fn quantizer_rejects_bad_input() {
        assert!(matches!(Quantizer::fit(&[], 4), Err(HdcError::EmptyInput)));
        assert!(Quantizer::fit(&[vec![1.0]], 1).is_err());
        assert!(Quantizer::fit(&[vec![1.0], vec![1.0, 2.0]], 4).is_err());
    }

    #[test]
    fn bins_checks_sample_length() {
        let q = Quantizer::fit(&[vec![0.0, 1.0], vec![1.0, 2.0]], 4).unwrap();
        assert!(q.bins(&[0.5]).is_err());
        assert_eq!(q.bins(&[0.5, 1.5]).unwrap().len(), 2);
    }

    #[test]
    fn levels_distance_grows_linearly() {
        let lm = LevelMemory::new(4096, 64, 9).unwrap();
        let step = 4096 / (2 * 63);
        let d01 = lm.level(0).hamming(lm.level(1)).unwrap();
        let d05 = lm.level(0).hamming(lm.level(5)).unwrap();
        assert_eq!(d01, step);
        assert_eq!(d05, 5 * step);
    }

    #[test]
    fn extreme_levels_are_quasi_orthogonal() {
        let lm = LevelMemory::new(4096, 64, 10).unwrap();
        let d = lm.level(0).hamming(lm.level(63)).unwrap();
        // 63 * (4096 / 126) = 2016 flips, close to D/2 = 2048.
        assert!((1900..=2100).contains(&d), "d = {d}");
    }

    #[test]
    fn level_memory_is_deterministic() {
        let a = LevelMemory::new(512, 16, 3).unwrap();
        let b = LevelMemory::new(512, 16, 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn level_memory_rejects_too_many_levels() {
        assert!(LevelMemory::new(64, 64, 1).is_err());
    }
}
