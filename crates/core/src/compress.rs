//! Post-training model compression: saliency-guided dimension pruning
//! composed with quantization, and an automatic accuracy/size Pareto
//! search (the DPQ-HD recipe adapted to the GENERIC datapath).
//!
//! The registry byte budget — not the hardware — caps how many tenants
//! fit in RAM, and every tenant image carries the full D-dimensional
//! model whether or not all D dimensions earn their keep. This module
//! shrinks trained models *after* training, in three composable steps:
//!
//! 1. **Saliency** ([`saliency`]): score every dimension by its summed
//!    contribution to the margin between the true class and the
//!    strongest rival over a labeled sample set — exact integer
//!    arithmetic, computed through the same dispatched kernels as
//!    inference, with [`saliency_scalar`] as the retained scalar
//!    reference.
//! 2. **Pruning** ([`prune`]): keep the top-S dimensions, compact the
//!    class memory onto that support, and recover accuracy with
//!    mispredict-driven retraining on the pruned support
//!    ([`PrunedModel::recover`], reusing
//!    [`HdcModel::retrain_epoch_parallel`]).
//! 3. **Quantization** ([`CompressedModel`]): the existing 1–16-bit
//!    quantizer applied to the compacted model, serialized as a GHDC v3
//!    image whose trailing support mask makes the pruned model
//!    first-class through the mapped view, the registry, and serving.
//!
//! [`pareto_search`] sweeps support sizes × bit widths, measures
//! held-out accuracy per candidate, and returns the smallest image
//! meeting a target accuracy together with the full accuracy/size
//! frontier. Everything here is deterministic: same model, data, and
//! options ⇒ the same chosen image, byte for byte.

use crate::kernels::{self, KernelSet};
use crate::{io, HdcError, HdcModel, IntHv, PredictOptions, QuantizedModel, ScoreBatch};

/// Per-dimension saliency of a trained model over a labeled sample set.
///
/// `scores[d]` is the exact integer sum over samples of
/// `q[d] · (C_true[d] − C_rival[d])` — how much dimension `d` pushed
/// each query toward its true class and away from the strongest
/// impostor. Dimensions with large positive saliency carry the class
/// margins; dimensions near zero are noise the model can shed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaliencyMap {
    dim: usize,
    scores: Vec<i64>,
}

impl SaliencyMap {
    /// Dimensionality of the scored model.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow of the per-dimension saliency scores.
    pub fn scores(&self) -> &[i64] {
        &self.scores
    }

    /// Dimension indices in descending saliency order; ties break toward
    /// the lower index so rankings are deterministic.
    pub fn ranked(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.dim).collect();
        order.sort_by(|&a, &b| self.scores[b].cmp(&self.scores[a]).then(a.cmp(&b)));
        order
    }
}

/// Scores every dimension's class-margin contribution over `encoded`,
/// through the actively dispatched kernel set.
///
/// # Errors
///
/// Returns [`HdcError::InvalidParameter`] on empty or mismatched
/// inputs, or a label out of class range.
pub fn saliency(
    model: &HdcModel,
    encoded: &[IntHv],
    labels: &[usize],
) -> Result<SaliencyMap, HdcError> {
    saliency_with(model, encoded, labels, kernels::active())
}

/// [`saliency`] through an explicit kernel set — the hook the
/// differential oracles use to pin every SIMD variant against
/// [`saliency_scalar`].
pub(crate) fn saliency_with(
    model: &HdcModel,
    encoded: &[IntHv],
    labels: &[usize],
    kernels: &'static KernelSet,
) -> Result<SaliencyMap, HdcError> {
    check_samples(model, encoded, labels)?;
    let opts = PredictOptions::full(model.dim());
    let mut batch = ScoreBatch::with_kernels(kernels);
    let mut scores = Vec::new();
    batch.scores_into(model, encoded, opts, &mut scores);
    let k = model.n_classes();
    let mut sal = vec![0i64; model.dim()];
    for (i, (hv, &label)) in encoded.iter().zip(labels).enumerate() {
        let rival = strongest_rival(&scores[i * k..(i + 1) * k], label);
        accumulate_margin(&mut sal, hv, model, label, rival);
    }
    Ok(SaliencyMap {
        dim: model.dim(),
        scores: sal,
    })
}

/// The retained scalar reference for [`saliency`]: one dimension at a
/// time, scored through [`HdcModel::scores_scalar`]. The differential
/// harness pins the kernel-dispatched path against this bit-for-bit.
///
/// # Errors
///
/// Returns [`HdcError::InvalidParameter`] on empty or mismatched
/// inputs, or a label out of class range.
pub fn saliency_scalar(
    model: &HdcModel,
    encoded: &[IntHv],
    labels: &[usize],
) -> Result<SaliencyMap, HdcError> {
    check_samples(model, encoded, labels)?;
    let opts = PredictOptions::full(model.dim());
    let mut sal = vec![0i64; model.dim()];
    for (hv, &label) in encoded.iter().zip(labels) {
        let scores = model.scores_scalar(hv, opts);
        let rival = strongest_rival(&scores, label);
        accumulate_margin(&mut sal, hv, model, label, rival);
    }
    Ok(SaliencyMap {
        dim: model.dim(),
        scores: sal,
    })
}

fn check_samples(model: &HdcModel, encoded: &[IntHv], labels: &[usize]) -> Result<(), HdcError> {
    if encoded.is_empty() {
        return Err(HdcError::EmptyInput);
    }
    if encoded.len() != labels.len() {
        return Err(HdcError::invalid(
            "labels",
            "must have one label per encoded sample",
        ));
    }
    if let Some(bad) = encoded.iter().find(|hv| hv.dim() != model.dim()) {
        return Err(HdcError::DimensionMismatch {
            expected: model.dim(),
            actual: bad.dim(),
        });
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= model.n_classes()) {
        return Err(HdcError::invalid(
            "labels",
            format!("label {bad} exceeds the class count {}", model.n_classes()),
        ));
    }
    Ok(())
}

/// Index of the strongest class other than `label` (last max wins,
/// matching the model's argmax tie rule); `None` for single-class
/// models.
fn strongest_rival(scores: &[f64], label: usize) -> Option<usize> {
    let mut best = f64::NEG_INFINITY;
    let mut idx = None;
    for (c, &s) in scores.iter().enumerate() {
        if c != label && s >= best {
            best = s;
            idx = Some(c);
        }
    }
    idx
}

/// Adds `q[d] · (C_label[d] − C_rival[d])` into `sal` — exact i64
/// arithmetic, so every kernel set accumulates identical saliency.
fn accumulate_margin(
    sal: &mut [i64],
    query: &IntHv,
    model: &HdcModel,
    label: usize,
    rival: Option<usize>,
) {
    let q = query.values();
    let true_class = model.class(label).values();
    match rival {
        Some(r) => {
            let rival_class = model.class(r).values();
            for (d, slot) in sal.iter_mut().enumerate() {
                *slot += i64::from(q[d]) * (i64::from(true_class[d]) - i64::from(rival_class[d]));
            }
        }
        None => {
            for (d, slot) in sal.iter_mut().enumerate() {
                *slot += i64::from(q[d]) * i64::from(true_class[d]);
            }
        }
    }
}

/// A trained model compacted onto a pruned support: `support[j]` is the
/// parent-space dimension stored at compacted position `j` (strictly
/// ascending), and `model` is the support-sized [`HdcModel`] ready for
/// retrain-after-prune recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct PrunedModel {
    parent_dim: usize,
    support: Vec<usize>,
    model: HdcModel,
}

/// Selects the `keep` most salient dimensions and compacts `model` onto
/// that support. `keep == model.dim()` is total and yields the identity
/// support (all dimensions, original class values).
///
/// # Errors
///
/// Returns [`HdcError::InvalidParameter`] when `keep` is zero or
/// exceeds the model dimensionality, or on a saliency/model dimension
/// mismatch.
pub fn prune(
    model: &HdcModel,
    saliency: &SaliencyMap,
    keep: usize,
) -> Result<PrunedModel, HdcError> {
    if saliency.dim() != model.dim() {
        return Err(HdcError::DimensionMismatch {
            expected: model.dim(),
            actual: saliency.dim(),
        });
    }
    if keep == 0 {
        return Err(HdcError::invalid("keep", "support must be non-empty"));
    }
    if keep > model.dim() {
        return Err(HdcError::invalid(
            "keep",
            format!(
                "support {keep} exceeds the model dimensionality {}",
                model.dim()
            ),
        ));
    }
    let mut support = saliency.ranked();
    support.truncate(keep);
    support.sort_unstable();
    let classes = model
        .iter()
        .map(|class| {
            let values = class.values();
            IntHv::from_values(support.iter().map(|&d| values[d]).collect())
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(PrunedModel {
        parent_dim: model.dim(),
        support,
        model: HdcModel::from_class_vectors(classes)?,
    })
}

impl PrunedModel {
    /// Parent-space dimensionality the support was pruned from.
    pub fn parent_dim(&self) -> usize {
        self.parent_dim
    }

    /// Compacted (support) dimensionality.
    pub fn dim(&self) -> usize {
        self.support.len()
    }

    /// The kept parent-space dimensions, strictly ascending.
    pub fn support(&self) -> &[usize] {
        &self.support
    }

    /// The compacted model.
    pub fn model(&self) -> &HdcModel {
        &self.model
    }

    /// The support as a parent-space bitmask (`ceil(parent_dim/64)`
    /// little-endian words), the GHDC v3 on-disk representation.
    pub fn support_mask(&self) -> Vec<u64> {
        let mut mask = vec![0u64; self.parent_dim.div_ceil(64)];
        for &d in &self.support {
            mask[d / 64] |= 1 << (d % 64);
        }
        mask
    }

    /// Gathers a parent-space encoded hypervector onto the support.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] on a wrong-width input.
    pub fn compact(&self, hv: &IntHv) -> Result<IntHv, HdcError> {
        if hv.dim() != self.parent_dim {
            return Err(HdcError::DimensionMismatch {
                expected: self.parent_dim,
                actual: hv.dim(),
            });
        }
        let values = hv.values();
        IntHv::from_values(self.support.iter().map(|&d| values[d]).collect())
    }

    /// [`PrunedModel::compact`] over a batch.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] on any wrong-width input.
    pub fn compact_batch(&self, encoded: &[IntHv]) -> Result<Vec<IntHv>, HdcError> {
        encoded.iter().map(|hv| self.compact(hv)).collect()
    }

    /// Retrain-after-prune accuracy recovery: compacts `encoded` onto
    /// the support and runs up to `epochs` mispredict-driven retraining
    /// epochs through [`HdcModel::retrain_epoch_parallel`], stopping
    /// early once an epoch is mispredict-free. Returns the last epoch's
    /// mispredict count.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] on wrong-width samples or
    /// mismatched label counts.
    pub fn recover(
        &mut self,
        encoded: &[IntHv],
        labels: &[usize],
        epochs: usize,
        n_threads: usize,
    ) -> Result<usize, HdcError> {
        let compacted = self.compact_batch(encoded)?;
        let mut mispredicts = 0;
        for _ in 0..epochs {
            mispredicts = self
                .model
                .retrain_epoch_parallel(&compacted, labels, n_threads)?;
            if mispredicts == 0 {
                break;
            }
        }
        Ok(mispredicts)
    }

    /// Held-out accuracy of the compacted full-precision model on
    /// parent-space samples.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] on wrong-width samples.
    pub fn accuracy(&self, encoded: &[IntHv], labels: &[usize]) -> Result<f64, HdcError> {
        let compacted = self.compact_batch(encoded)?;
        Ok(self.model.accuracy(&compacted, labels))
    }
}

/// A pruned *and* quantized model plus everything needed to serialize
/// it as a first-class GHDC v3 image: the publishable artifact of the
/// compression pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedModel {
    parent_dim: usize,
    support: Vec<usize>,
    quantized: QuantizedModel,
}

impl CompressedModel {
    /// Quantizes a pruned model to `bit_width` bits per element.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidParameter`] if `bit_width` is not in
    /// `1..=16`.
    pub fn from_pruned(pruned: &PrunedModel, bit_width: u8) -> Result<Self, HdcError> {
        Ok(CompressedModel {
            parent_dim: pruned.parent_dim,
            support: pruned.support.clone(),
            quantized: QuantizedModel::from_model(&pruned.model, bit_width)?,
        })
    }

    /// Parent-space dimensionality (what queries arrive at).
    pub fn parent_dim(&self) -> usize {
        self.parent_dim
    }

    /// Compacted (support) dimensionality.
    pub fn dim(&self) -> usize {
        self.support.len()
    }

    /// The kept parent-space dimensions, strictly ascending.
    pub fn support(&self) -> &[usize] {
        &self.support
    }

    /// Effective bit-width of the quantized elements.
    pub fn bit_width(&self) -> u8 {
        self.quantized.bit_width()
    }

    /// The compacted quantized model.
    pub fn quantized(&self) -> &QuantizedModel {
        &self.quantized
    }

    /// The support as a parent-space bitmask.
    pub fn support_mask(&self) -> Vec<u64> {
        let mut mask = vec![0u64; self.parent_dim.div_ceil(64)];
        for &d in &self.support {
            mask[d / 64] |= 1 << (d % 64);
        }
        mask
    }

    /// Serializes the complete GHDC v3 image. A full-dimension support
    /// writes the plain (maskless) v3 layout, byte-identical to
    /// [`io::write_packed`] — pruning none is not a format change.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidParameter`] on implausible geometry.
    pub fn image_bytes(&self) -> Result<Vec<u8>, HdcError> {
        let bytes = if self.support.len() == self.parent_dim {
            io::packed_bytes(&self.quantized)
        } else {
            io::packed_bytes_pruned(&self.quantized, self.parent_dim, &self.support_mask())
        };
        bytes.map_err(|e| HdcError::invalid("image", e.to_string()))
    }

    /// Gathers a parent-space encoded hypervector onto the support.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] on a wrong-width input.
    pub fn compact(&self, hv: &IntHv) -> Result<IntHv, HdcError> {
        if hv.dim() != self.parent_dim {
            return Err(HdcError::DimensionMismatch {
                expected: self.parent_dim,
                actual: hv.dim(),
            });
        }
        let values = hv.values();
        IntHv::from_values(self.support.iter().map(|&d| values[d]).collect())
    }

    /// Accuracy of the quantized compacted model on parent-space
    /// samples — the number the Pareto search optimizes.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] on wrong-width samples.
    pub fn accuracy(&self, encoded: &[IntHv], labels: &[usize]) -> Result<f64, HdcError> {
        let compacted = encoded
            .iter()
            .map(|hv| self.compact(hv))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(self.quantized.accuracy(&compacted, labels))
    }
}

/// Options steering [`pareto_search`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompressOptions {
    /// Minimum held-out accuracy the chosen model must reach.
    pub target_accuracy: f64,
    /// Optional hard ceiling on the chosen image's byte size.
    pub max_bytes: Option<usize>,
    /// Bit widths to sweep (each must be in `1..=16`).
    pub bit_widths: Vec<u8>,
    /// Support sizes to sweep, as fractions of the parent dimension
    /// (each in `(0, 1]`; rounded to at least one dimension).
    pub keep_fractions: Vec<f64>,
    /// Retraining epochs per pruned support
    /// ([`PrunedModel::recover`]).
    pub recover_epochs: usize,
    /// Worker threads for recovery retraining.
    pub n_threads: usize,
}

impl CompressOptions {
    /// Defaults: sweep 1/16 … 1 supports × {1, 2, 4, 8} bits with 5
    /// recovery epochs on one thread.
    pub fn new(target_accuracy: f64) -> Self {
        CompressOptions {
            target_accuracy,
            max_bytes: None,
            bit_widths: vec![1, 2, 4, 8],
            keep_fractions: vec![
                1.0 / 16.0,
                1.0 / 8.0,
                3.0 / 16.0,
                1.0 / 4.0,
                3.0 / 8.0,
                1.0 / 2.0,
                3.0 / 4.0,
                1.0,
            ],
            recover_epochs: 5,
            n_threads: 1,
        }
    }
}

/// One evaluated (support size, bit width) candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint {
    /// Dimensions kept.
    pub keep_dims: usize,
    /// Quantization bit width.
    pub bit_width: u8,
    /// Serialized GHDC v3 image size in bytes.
    pub bytes: usize,
    /// Held-out accuracy of the quantized pruned model.
    pub accuracy: f64,
}

/// The result of a [`pareto_search`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompressionOutcome {
    /// The chosen compressed model (smallest feasible image, or the
    /// most accurate candidate when nothing is feasible).
    pub chosen: CompressedModel,
    /// The chosen candidate's evaluation.
    pub chosen_point: ParetoPoint,
    /// Whether the chosen model meets the target accuracy (and byte
    /// ceiling, when set).
    pub meets_target: bool,
    /// Every evaluated candidate, in sweep order.
    pub points: Vec<ParetoPoint>,
    /// The non-dominated accuracy/size frontier, ascending by bytes.
    pub frontier: Vec<ParetoPoint>,
}

/// Sweeps support sizes × bit widths, recovering accuracy after each
/// prune on `train` and measuring candidates on `holdout`, and returns
/// the smallest image whose held-out accuracy reaches
/// `opts.target_accuracy` (and fits `opts.max_bytes`, when set). When
/// no candidate is feasible the most accurate one is returned with
/// [`CompressionOutcome::meets_target`] `false` — callers decide
/// whether best-effort is acceptable.
///
/// # Errors
///
/// Returns [`HdcError::InvalidParameter`] on empty sweeps, out-of-range
/// fractions or bit widths, or mismatched samples.
pub fn pareto_search(
    model: &HdcModel,
    train: &[IntHv],
    train_labels: &[usize],
    holdout: &[IntHv],
    holdout_labels: &[usize],
    opts: &CompressOptions,
) -> Result<CompressionOutcome, HdcError> {
    if opts.bit_widths.is_empty() || opts.keep_fractions.is_empty() {
        return Err(HdcError::invalid(
            "opts",
            "bit_widths and keep_fractions must be non-empty",
        ));
    }
    if let Some(&bad) = opts
        .keep_fractions
        .iter()
        .find(|f| !(f > &&0.0 && f <= &&1.0))
    {
        return Err(HdcError::invalid(
            "keep_fractions",
            format!("fraction {bad} outside (0, 1]"),
        ));
    }
    let sal = saliency(model, train, train_labels)?;

    // Distinct support sizes, descending so the identity support (when
    // swept) anchors the frontier's accurate end.
    let mut keeps: Vec<usize> = opts
        .keep_fractions
        .iter()
        .map(|f| ((f * model.dim() as f64).round() as usize).clamp(1, model.dim()))
        .collect();
    keeps.sort_unstable();
    keeps.dedup();
    keeps.reverse();

    let mut points = Vec::new();
    let mut candidates = Vec::new();
    for &keep in &keeps {
        let mut pruned = prune(model, &sal, keep)?;
        pruned.recover(train, train_labels, opts.recover_epochs, opts.n_threads)?;
        for &bw in &opts.bit_widths {
            let compressed = CompressedModel::from_pruned(&pruned, bw)?;
            let accuracy = compressed.accuracy(holdout, holdout_labels)?;
            let bytes = compressed.image_bytes()?.len();
            points.push(ParetoPoint {
                keep_dims: keep,
                bit_width: bw,
                bytes,
                accuracy,
            });
            candidates.push(compressed);
        }
    }

    let feasible = |p: &ParetoPoint| {
        p.accuracy >= opts.target_accuracy && opts.max_bytes.is_none_or(|m| p.bytes <= m)
    };
    // Smallest feasible image; ties break toward higher accuracy, then
    // sweep order. Infeasible searches fall back to the most accurate
    // candidate (ties toward fewer bytes).
    let chosen_idx = points
        .iter()
        .enumerate()
        .filter(|(_, p)| feasible(p))
        .min_by(|(_, a), (_, b)| {
            a.bytes
                .cmp(&b.bytes)
                .then(b.accuracy.total_cmp(&a.accuracy))
        })
        .map(|(i, _)| i)
        .or_else(|| {
            points
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    b.accuracy
                        .total_cmp(&a.accuracy)
                        .then(a.bytes.cmp(&b.bytes))
                })
                .map(|(i, _)| i)
        })
        .ok_or(HdcError::EmptyInput)?;

    let chosen_point = points[chosen_idx];
    let meets_target = feasible(&chosen_point);

    // Non-dominated frontier: ascending bytes, strictly improving
    // accuracy.
    let mut by_size: Vec<ParetoPoint> = points.clone();
    by_size.sort_by(|a, b| {
        a.bytes
            .cmp(&b.bytes)
            .then(b.accuracy.total_cmp(&a.accuracy))
    });
    let mut frontier: Vec<ParetoPoint> = Vec::new();
    for p in by_size {
        if frontier.last().is_none_or(|f| p.accuracy > f.accuracy) {
            frontier.push(p);
        }
    }

    Ok(CompressionOutcome {
        chosen: candidates.swap_remove(chosen_idx),
        chosen_point,
        meets_target,
        points,
        frontier,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BinaryHv;

    /// Two well-separated classes over a 512-dim space where only the
    /// first half carries signal: the perfect pruning testbed.
    fn structured_model() -> (HdcModel, Vec<IntHv>, Vec<usize>) {
        let dim = 512;
        let proto0 = BinaryHv::random_seeded(dim, 70).unwrap();
        let proto1 = BinaryHv::random_seeded(dim, 71).unwrap();
        let mut encoded = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            for (label, proto) in [(0usize, &proto0), (1usize, &proto1)] {
                let mut hv = proto.clone();
                // Noise lives in the back half; signal in the front.
                for k in 0..dim / 8 {
                    hv.flip_bit(dim / 2 + (k * 13 + i * 7) % (dim / 2));
                }
                encoded.push(IntHv::from(hv));
                labels.push(label);
            }
        }
        let model = HdcModel::fit(&encoded, &labels, 2).unwrap();
        (model, encoded, labels)
    }

    #[test]
    fn saliency_matches_scalar_reference_on_every_kernel_set() {
        let (model, encoded, labels) = structured_model();
        let reference = saliency_scalar(&model, &encoded, &labels).unwrap();
        for isa in kernels::available() {
            let ks = kernels::for_isa(isa).unwrap();
            let fast = saliency_with(&model, &encoded, &labels, ks).unwrap();
            assert_eq!(fast, reference, "isa {}", isa.name());
        }
    }

    #[test]
    fn saliency_validates_inputs() {
        let (model, encoded, labels) = structured_model();
        assert!(saliency(&model, &[], &[]).is_err());
        assert!(saliency(&model, &encoded, &labels[..1]).is_err());
        let wrong = vec![IntHv::zeros(64).unwrap()];
        assert!(saliency(&model, &wrong, &[0]).is_err());
        let bad_labels = vec![9; encoded.len()];
        assert!(saliency(&model, &encoded, &bad_labels).is_err());
    }

    #[test]
    fn ranked_order_is_monotone_and_deterministic() {
        let (model, encoded, labels) = structured_model();
        let sal = saliency(&model, &encoded, &labels).unwrap();
        let order = sal.ranked();
        assert_eq!(order.len(), model.dim());
        for pair in order.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            assert!(
                sal.scores()[a] > sal.scores()[b] || (sal.scores()[a] == sal.scores()[b] && a < b),
                "ranking must be strictly monotone with index tie-break"
            );
        }
    }

    #[test]
    fn prune_keeps_the_most_salient_support() {
        let (model, encoded, labels) = structured_model();
        let sal = saliency(&model, &encoded, &labels).unwrap();
        let pruned = prune(&model, &sal, 128).unwrap();
        assert_eq!(pruned.dim(), 128);
        assert_eq!(pruned.parent_dim(), model.dim());
        assert!(pruned.support().windows(2).all(|w| w[0] < w[1]));
        // The signal half must dominate the kept support.
        let in_front = pruned.support().iter().filter(|&&d| d < 256).count();
        assert!(in_front > 96, "only {in_front}/128 kept dims carry signal");
        // Compacted classes are exact gathers of the parent classes.
        for (c, class) in pruned.model().iter().enumerate() {
            for (j, &d) in pruned.support().iter().enumerate() {
                assert_eq!(class.values()[j], model.class(c).values()[d]);
            }
        }
    }

    #[test]
    fn full_support_prune_is_the_identity() {
        let (model, encoded, labels) = structured_model();
        let sal = saliency(&model, &encoded, &labels).unwrap();
        let pruned = prune(&model, &sal, model.dim()).unwrap();
        assert_eq!(pruned.support(), (0..model.dim()).collect::<Vec<_>>());
        for (c, class) in pruned.model().iter().enumerate() {
            assert_eq!(class, model.class(c));
        }
    }

    #[test]
    fn degenerate_supports_are_typed_errors() {
        let (model, encoded, labels) = structured_model();
        let sal = saliency(&model, &encoded, &labels).unwrap();
        assert!(prune(&model, &sal, 0).is_err());
        assert!(prune(&model, &sal, model.dim() + 1).is_err());
    }

    #[test]
    fn recovery_restores_accuracy_after_aggressive_pruning() {
        let (model, encoded, labels) = structured_model();
        let sal = saliency(&model, &encoded, &labels).unwrap();
        let mut pruned = prune(&model, &sal, 64).unwrap();
        pruned.recover(&encoded, &labels, 5, 2).unwrap();
        let acc = pruned.accuracy(&encoded, &labels).unwrap();
        assert!(acc >= 0.95, "recovered accuracy {acc}");
    }

    #[test]
    fn compressed_image_round_trips_through_the_mapped_view() {
        let (model, encoded, labels) = structured_model();
        let sal = saliency(&model, &encoded, &labels).unwrap();
        let mut pruned = prune(&model, &sal, 96).unwrap();
        pruned.recover(&encoded, &labels, 3, 1).unwrap();
        for bw in [1u8, 4, 8] {
            let compressed = CompressedModel::from_pruned(&pruned, bw).unwrap();
            let bytes = compressed.image_bytes().unwrap();
            let mapping = crate::Mapping::from_bytes(&bytes).unwrap();
            let view = crate::PackedModelView::new(&mapping).unwrap();
            assert!(view.is_pruned());
            assert_eq!(view.dim(), 96);
            assert_eq!(view.parent_dim(), model.dim());
            assert_eq!(view.to_quantized().unwrap(), *compressed.quantized());
        }
    }

    #[test]
    fn full_support_image_is_byte_identical_to_write_packed() {
        let (model, encoded, labels) = structured_model();
        let sal = saliency(&model, &encoded, &labels).unwrap();
        let pruned = prune(&model, &sal, model.dim()).unwrap();
        let compressed = CompressedModel::from_pruned(&pruned, 8).unwrap();
        let mut plain = Vec::new();
        io::write_packed(compressed.quantized(), &mut plain).unwrap();
        assert_eq!(compressed.image_bytes().unwrap(), plain);
    }

    #[test]
    fn pareto_search_finds_a_small_accurate_model() {
        let (model, encoded, labels) = structured_model();
        let (train, holdout): (Vec<_>, Vec<_>) = (
            encoded.iter().step_by(2).cloned().collect(),
            encoded.iter().skip(1).step_by(2).cloned().collect(),
        );
        let (train_labels, holdout_labels): (Vec<_>, Vec<_>) = (
            labels.iter().step_by(2).copied().collect(),
            labels.iter().skip(1).step_by(2).copied().collect(),
        );
        let opts = CompressOptions::new(0.95);
        let outcome = pareto_search(
            &model,
            &train,
            &train_labels,
            &holdout,
            &holdout_labels,
            &opts,
        )
        .unwrap();
        assert!(outcome.meets_target);
        assert!(outcome.chosen_point.accuracy >= 0.95);
        // The baseline (full-dim 8-bit) image must dwarf the choice.
        let baseline = io::packed_bytes(&QuantizedModel::from_model(&model, 8).unwrap())
            .unwrap()
            .len();
        assert!(
            outcome.chosen_point.bytes * 2 <= baseline,
            "chosen {} vs baseline {baseline}",
            outcome.chosen_point.bytes
        );
        // Frontier is strictly improving in both axes.
        for pair in outcome.frontier.windows(2) {
            assert!(pair[0].bytes < pair[1].bytes);
            assert!(pair[0].accuracy < pair[1].accuracy);
        }
        // Determinism: a second search reproduces the same choice.
        let again = pareto_search(
            &model,
            &train,
            &train_labels,
            &holdout,
            &holdout_labels,
            &opts,
        )
        .unwrap();
        assert_eq!(again.chosen_point, outcome.chosen_point);
        assert_eq!(
            again.chosen.image_bytes().unwrap().len(),
            outcome.chosen_point.bytes
        );
    }

    #[test]
    fn pareto_search_validates_options() {
        let (model, encoded, labels) = structured_model();
        let mut opts = CompressOptions::new(0.9);
        opts.bit_widths.clear();
        assert!(pareto_search(&model, &encoded, &labels, &encoded, &labels, &opts).is_err());
        let mut opts = CompressOptions::new(0.9);
        opts.keep_fractions = vec![1.5];
        assert!(pareto_search(&model, &encoded, &labels, &encoded, &labels, &opts).is_err());
    }
}
