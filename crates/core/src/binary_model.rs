//! Binarized associative memory: the 1-bit deployment mode where class
//! hypervectors are majority-binarized and inference is a pure
//! Hamming-distance search over packed words.
//!
//! This is the representation the HDC associative-memory literature the
//! paper builds on ([19]: *Exploring Hyperdimensional Associative Memory*)
//! uses for its extreme error resilience, and the fastest software
//! inference path this crate offers — XOR + popcount over `u64` words, no
//! integer multiplies and no norms (all binarized classes have identical
//! norm, so Hamming distance *is* the cosine ranking).

use crate::{BinaryHv, HdcError, HdcModel, IntHv};

/// A binarized HDC model: one packed sign hypervector per class.
///
/// ```
/// use generic_hdc::{BinaryHv, BinaryModel, HdcModel, IntHv};
///
/// # fn main() -> Result<(), generic_hdc::HdcError> {
/// let a = IntHv::from(BinaryHv::random_seeded(512, 1)?);
/// let b = IntHv::from(BinaryHv::random_seeded(512, 2)?);
/// let model = HdcModel::fit(&[a.clone(), b], &[0, 1], 2)?;
///
/// let binary = BinaryModel::from_model(&model);
/// assert_eq!(binary.predict_encoded(&a)?, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryModel {
    classes: Vec<BinaryHv>,
}

impl BinaryModel {
    /// Binarizes a trained model by the sign of each class element
    /// (non-negative ↦ bipolar `+1`).
    pub fn from_model(model: &HdcModel) -> Self {
        BinaryModel {
            classes: model.iter().map(IntHv::to_binary).collect(),
        }
    }

    /// Builds a model directly from packed class hypervectors.
    ///
    /// # Errors
    ///
    /// Returns an error if `classes` is empty or dimensionalities differ.
    pub fn from_class_vectors(classes: Vec<BinaryHv>) -> Result<Self, HdcError> {
        if classes.is_empty() {
            return Err(HdcError::EmptyInput);
        }
        let dim = classes[0].dim();
        if let Some(bad) = classes.iter().find(|c| c.dim() != dim) {
            return Err(HdcError::DimensionMismatch {
                expected: dim,
                actual: bad.dim(),
            });
        }
        Ok(BinaryModel { classes })
    }

    /// Hypervector dimensionality.
    pub fn dim(&self) -> usize {
        self.classes[0].dim()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// The packed class hypervector for `label`.
    ///
    /// # Panics
    ///
    /// Panics if `label >= self.n_classes()`.
    pub fn class(&self, label: usize) -> &BinaryHv {
        &self.classes[label]
    }

    /// Hamming distance of a binarized query to every class.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] on a wrong-width query.
    pub fn distances(&self, query: &BinaryHv) -> Result<Vec<usize>, HdcError> {
        let mut out = Vec::new();
        self.distances_into(query, &mut out)?;
        Ok(out)
    }

    /// Hamming distance of a binarized query to every class, written into
    /// a reusable buffer — the allocation-free inner loop of
    /// [`predict_batch`](BinaryModel::predict_batch).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] on a wrong-width query.
    pub fn distances_into(&self, query: &BinaryHv, out: &mut Vec<usize>) -> Result<(), HdcError> {
        if query.dim() != self.dim() {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim(),
                actual: query.dim(),
            });
        }
        out.clear();
        out.reserve(self.classes.len());
        for c in &self.classes {
            out.push(query.hamming(c)?);
        }
        Ok(())
    }

    /// Predicts every binarized query in one pass over the class memory,
    /// reusing one distance buffer across queries.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] on the first wrong-width
    /// query.
    pub fn predict_batch(&self, queries: &[BinaryHv]) -> Result<Vec<usize>, HdcError> {
        let mut distances = Vec::with_capacity(self.classes.len());
        let mut out = Vec::with_capacity(queries.len());
        for q in queries {
            self.distances_into(q, &mut distances)?;
            out.push(min_index(&distances));
        }
        Ok(out)
    }

    /// Predicts the class of a binarized query (minimum Hamming distance;
    /// first class wins ties).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] on a wrong-width query.
    pub fn predict(&self, query: &BinaryHv) -> Result<usize, HdcError> {
        let distances = self.distances(query)?;
        Ok(min_index(&distances))
    }

    /// Convenience: binarizes an integer encoding by sign and predicts.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] on a wrong-width query.
    pub fn predict_encoded(&self, query: &IntHv) -> Result<usize, HdcError> {
        self.predict(&query.to_binary())
    }

    /// Fraction of `encoded` samples predicted as their `labels`.
    ///
    /// # Errors
    ///
    /// Returns an error on mismatched lengths or dimensions.
    pub fn accuracy(&self, encoded: &[IntHv], labels: &[usize]) -> Result<f64, HdcError> {
        if encoded.len() != labels.len() {
            return Err(HdcError::invalid(
                "labels",
                "encoded and labels must have equal lengths",
            ));
        }
        if encoded.is_empty() {
            return Err(HdcError::EmptyInput);
        }
        let mut correct = 0;
        for (hv, &label) in encoded.iter().zip(labels) {
            if self.predict_encoded(hv)? == label {
                correct += 1;
            }
        }
        Ok(correct as f64 / encoded.len() as f64)
    }

    /// Flips each stored class bit independently with probability `ber` —
    /// the associative-memory fault model of [19].
    /// Returns the number of bits flipped.
    ///
    /// # Errors
    ///
    /// Returns an error if `ber` is not a probability.
    pub fn inject_bit_flips(&mut self, ber: f64, seed: u64) -> Result<usize, HdcError> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        if !(0.0..=1.0).contains(&ber) || ber.is_nan() {
            return Err(HdcError::invalid("ber", "must be a probability in [0, 1]"));
        }
        if ber == 0.0 {
            return Ok(0);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = self.dim();
        let mut flipped = 0;
        for class in &mut self.classes {
            for i in 0..dim {
                if rng.random_bool(ber) {
                    class.flip_bit(i);
                    flipped += 1;
                }
            }
        }
        Ok(flipped)
    }
}

/// Index of the minimum distance (first class wins ties), shared by the
/// single-query and batched prediction paths.
fn min_index(distances: &[usize]) -> usize {
    distances
        .iter()
        .enumerate()
        .min_by_key(|&(_, &d)| d)
        .map(|(i, _)| i)
        .expect("model has at least one class")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QuantizedModel;

    fn trained(dim: usize) -> (HdcModel, Vec<IntHv>, Vec<usize>) {
        let protos: Vec<BinaryHv> = (0..3u64)
            .map(|s| BinaryHv::random_seeded(dim, 70 + s).expect("dim > 0"))
            .collect();
        let mut encoded = Vec::new();
        let mut labels = Vec::new();
        for i in 0..15 {
            let c = i % 3;
            let mut hv = protos[c].clone();
            for k in 0..dim / 10 {
                hv.flip_bit((k * 13 + i * 7) % dim);
            }
            encoded.push(IntHv::from(hv));
            labels.push(c);
        }
        let model = HdcModel::fit(&encoded, &labels, 3).expect("valid inputs");
        (model, encoded, labels)
    }

    #[test]
    fn binarized_model_classifies_separable_data() {
        let (model, encoded, labels) = trained(2048);
        let binary = BinaryModel::from_model(&model);
        assert_eq!(binary.accuracy(&encoded, &labels).unwrap(), 1.0);
    }

    #[test]
    fn agrees_with_one_bit_quantized_model() {
        // Both models keep only the sign; on binarized queries the
        // rankings must coincide (Hamming distance is an affine transform
        // of the bipolar dot product).
        let (model, encoded, _) = trained(1024);
        let binary = BinaryModel::from_model(&model);
        let quantized = QuantizedModel::from_model(&model, 1).expect("valid width");
        for hv in &encoded {
            let binarized = IntHv::from(hv.to_binary());
            assert_eq!(
                binary.predict_encoded(hv).unwrap(),
                quantized.predict(&binarized)
            );
        }
    }

    #[test]
    fn tolerates_heavy_bit_errors() {
        // The [19] headline: associative memories survive double-digit BER.
        let (model, encoded, labels) = trained(4096);
        let mut binary = BinaryModel::from_model(&model);
        binary.inject_bit_flips(0.15, 9).unwrap();
        let acc = binary.accuracy(&encoded, &labels).unwrap();
        assert!(acc >= 0.95, "accuracy {acc} under 15% BER");
    }

    #[test]
    fn flip_count_tracks_ber() {
        let (model, _, _) = trained(1024);
        let mut binary = BinaryModel::from_model(&model);
        let flipped = binary.inject_bit_flips(0.1, 4).unwrap();
        let expected = (3 * 1024) as f64 * 0.1;
        assert!((flipped as f64 - expected).abs() < expected * 0.5);
        assert_eq!(binary.inject_bit_flips(0.0, 4).unwrap(), 0);
    }

    #[test]
    fn validates_inputs() {
        assert!(BinaryModel::from_class_vectors(vec![]).is_err());
        let a = BinaryHv::random_seeded(64, 1).unwrap();
        let b = BinaryHv::random_seeded(128, 2).unwrap();
        assert!(BinaryModel::from_class_vectors(vec![a.clone(), b]).is_err());
        let model = BinaryModel::from_class_vectors(vec![a]).unwrap();
        let wrong = BinaryHv::random_seeded(128, 3).unwrap();
        assert!(model.predict(&wrong).is_err());
        let mut m = model.clone();
        assert!(m.inject_bit_flips(2.0, 1).is_err());
    }

    #[test]
    fn predict_batch_matches_predict() {
        let (model, encoded, _) = trained(1024);
        let binary = BinaryModel::from_model(&model);
        let queries: Vec<BinaryHv> = encoded.iter().map(IntHv::to_binary).collect();
        let batch = binary.predict_batch(&queries).unwrap();
        for (q, &p) in queries.iter().zip(&batch) {
            assert_eq!(p, binary.predict(q).unwrap());
        }
        let wrong = vec![BinaryHv::zeros(64).unwrap()];
        assert!(binary.predict_batch(&wrong).is_err());
    }

    #[test]
    fn distances_are_symmetric_in_construction() {
        let (model, encoded, _) = trained(512);
        let binary = BinaryModel::from_model(&model);
        let q = encoded[0].to_binary();
        let d = binary.distances(&q).unwrap();
        assert_eq!(d.len(), 3);
        assert!(d.iter().all(|&x| x <= 512));
    }
}
