//! Random projection (RP) encoding — Fig. 2(c) of the paper.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::encoding::Encoder;
use crate::{BinaryHv, HdcError, IntHv};

/// Random projection encoder.
///
/// Each feature index has a random but constant bipolar projection row
/// (its *id*); the raw feature value multiplies the row and the results are
/// aggregated over all features, then binarized by sign:
/// `H_j = sign(Σ_i x_i · s_{i,j})` with `s ∈ {±1}`.
///
/// RP preserves global linear structure but no temporal/local information,
/// which is why it fails on time-series datasets such as EEG (§3.2).
#[derive(Debug, Clone)]
pub struct RandomProjectionEncoder {
    rows: Vec<BinaryHv>,
    dim: usize,
}

impl RandomProjectionEncoder {
    /// Creates an RP encoder for `n_features` inputs projecting into `dim`
    /// dimensions.
    ///
    /// # Errors
    ///
    /// Returns an error if `dim == 0` or `n_features == 0`.
    pub fn new(dim: usize, n_features: usize, seed: u64) -> Result<Self, HdcError> {
        if n_features == 0 {
            return Err(HdcError::invalid("n_features", "must be positive"));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n_features);
        for _ in 0..n_features {
            rows.push(BinaryHv::random(dim, &mut rng)?);
        }
        Ok(RandomProjectionEncoder { rows, dim })
    }

    /// The raw (pre-binarization) projection of a sample.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::FeatureCountMismatch`] on a wrong-length sample.
    pub fn project(&self, sample: &[f64]) -> Result<Vec<f64>, HdcError> {
        if sample.len() != self.rows.len() {
            return Err(HdcError::FeatureCountMismatch {
                expected: self.rows.len(),
                actual: sample.len(),
            });
        }
        let mut acc = vec![0.0f64; self.dim];
        for (row, &x) in self.rows.iter().zip(sample) {
            if x == 0.0 {
                continue;
            }
            for (wi, &w) in row.words().iter().enumerate() {
                let base = wi * 64;
                let n = 64.min(self.dim - base);
                for b in 0..n {
                    if (w >> b) & 1 == 1 {
                        acc[base + b] -= x;
                    } else {
                        acc[base + b] += x;
                    }
                }
            }
        }
        Ok(acc)
    }
}

impl Encoder for RandomProjectionEncoder {
    fn dim(&self) -> usize {
        self.dim
    }

    fn n_features(&self) -> usize {
        self.rows.len()
    }

    fn encode(&self, sample: &[f64]) -> Result<IntHv, HdcError> {
        let acc = self.project(sample)?;
        let signed: Vec<i32> = acc.iter().map(|&v| if v < 0.0 { -1 } else { 1 }).collect();
        IntHv::from_values(signed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_is_linear() {
        let enc = RandomProjectionEncoder::new(256, 4, 1).unwrap();
        let a = enc.project(&[1.0, 0.0, 0.0, 0.0]).unwrap();
        let b = enc.project(&[0.0, 2.0, 0.0, 0.0]).unwrap();
        let ab = enc.project(&[1.0, 2.0, 0.0, 0.0]).unwrap();
        for j in 0..256 {
            assert!((ab[j] - (a[j] + b[j])).abs() < 1e-12);
        }
    }

    #[test]
    fn encode_is_bipolar() {
        let enc = RandomProjectionEncoder::new(128, 3, 2).unwrap();
        let hv = enc.encode(&[0.3, -1.2, 4.0]).unwrap();
        assert!(hv.values().iter().all(|&v| v == 1 || v == -1));
    }

    #[test]
    fn similar_inputs_have_similar_codes() {
        let enc = RandomProjectionEncoder::new(2048, 8, 3).unwrap();
        let x = vec![1.0, -2.0, 0.5, 3.0, -1.0, 0.0, 2.0, 1.5];
        let mut y = x.clone();
        y[0] += 0.01;
        let far = vec![-3.0, 5.0, -0.5, -3.0, 4.0, 2.0, -2.0, 0.5];
        let hx = enc.encode(&x).unwrap();
        let hy = enc.encode(&y).unwrap();
        let hf = enc.encode(&far).unwrap();
        assert!(hx.cosine(&hy).unwrap() > hx.cosine(&hf).unwrap());
    }

    #[test]
    fn rejects_zero_features() {
        assert!(RandomProjectionEncoder::new(128, 0, 1).is_err());
    }
}
