//! Permutation encoding — Fig. 2(b) of the paper.

use crate::encoding::level_id::DEFAULT_LEVELS;
use crate::encoding::Encoder;
use crate::{HdcError, IntHv, LevelMemory, Quantizer};

/// Permutation encoder.
///
/// The level hypervector of the *m*-th feature is circularly rotated by
/// `m` positions before bundling: `H = Σ_m ρ^(m)(ℓ(x_m))`. Rotation makes
/// the encoding strictly order-sensitive, which suits sequential data but
/// over-constrains datasets whose discriminative structure is local
/// subsequences (e.g. LANG, where it scores only 52.8 % in Table 1).
#[derive(Debug, Clone)]
pub struct PermutationEncoder {
    quantizer: Quantizer,
    levels: LevelMemory,
}

impl PermutationEncoder {
    /// Builds an encoder whose quantizer is fitted to `train` data with 64
    /// levels.
    ///
    /// # Errors
    ///
    /// Returns an error for empty data, ragged rows, or `dim == 0`.
    pub fn from_data(dim: usize, train: &[Vec<f64>], seed: u64) -> Result<Self, HdcError> {
        let quantizer = Quantizer::fit(train, DEFAULT_LEVELS)?;
        Self::with_quantizer(dim, quantizer, seed)
    }

    /// Builds an encoder around an existing quantizer.
    ///
    /// # Errors
    ///
    /// Returns an error if `dim == 0` or the quantizer has too many levels
    /// for `dim`.
    pub fn with_quantizer(dim: usize, quantizer: Quantizer, seed: u64) -> Result<Self, HdcError> {
        let levels = LevelMemory::new(dim, quantizer.n_levels(), seed)?;
        Ok(PermutationEncoder { quantizer, levels })
    }
}

impl Encoder for PermutationEncoder {
    fn dim(&self) -> usize {
        self.levels.dim()
    }

    fn n_features(&self) -> usize {
        self.quantizer.n_features()
    }

    fn encode(&self, sample: &[f64]) -> Result<IntHv, HdcError> {
        let bins = self.quantizer.bins(sample)?;
        let mut acc = IntHv::zeros(self.dim())?;
        for (m, &bin) in bins.iter().enumerate() {
            let rotated = self.levels.level(bin).rotated(m);
            acc.bundle_binary(&rotated)?;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Vec<Vec<f64>> {
        (0..16)
            .map(|i| (0..8).map(|j| ((i * 3 + j) % 11) as f64).collect())
            .collect()
    }

    #[test]
    fn order_matters() {
        // Use only the extreme bins so the two per-position levels are
        // quasi-orthogonal: the reversed sequence then shares nothing.
        let enc = PermutationEncoder::from_data(2048, &data(), 1).unwrap();
        let a = enc
            .encode(&[0.0, 10.0, 0.0, 10.0, 0.0, 10.0, 0.0, 10.0])
            .unwrap();
        let b = enc
            .encode(&[10.0, 0.0, 10.0, 0.0, 10.0, 0.0, 10.0, 0.0])
            .unwrap();
        let sim = a.cosine(&b).unwrap();
        assert!(
            sim < 0.3,
            "reversed sequence should not look similar: {sim}"
        );
    }

    #[test]
    fn identical_sequences_match() {
        let enc = PermutationEncoder::from_data(1024, &data(), 2).unwrap();
        let x = &data()[5];
        assert_eq!(enc.encode(x).unwrap(), enc.encode(x).unwrap());
    }

    #[test]
    fn component_magnitude_bounded() {
        let enc = PermutationEncoder::from_data(512, &data(), 3).unwrap();
        let hv = enc.encode(&data()[0]).unwrap();
        assert!(hv.values().iter().all(|&v| v.unsigned_abs() as usize <= 8));
    }
}
