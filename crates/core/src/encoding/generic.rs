//! The proposed GENERIC encoding (Eq. 1, Fig. 2d) and its id-free special
//! case, the ngram encoding.

use crate::encoding::level_id::DEFAULT_LEVELS;
use crate::encoding::Encoder;
use crate::{BinaryHv, BitSliceAccumulator, HdcError, IdMemory, IntHv, LevelMemory, Quantizer};

/// Configuration of a [`GenericEncoder`].
///
/// Defaults match the paper: 64 quantization levels, window length `n = 3`
/// (the best average over the benchmarks, §3.1), per-window id binding
/// enabled, and hardware-style seeded id generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenericEncoderSpec {
    dim: usize,
    n_features: usize,
    n_levels: usize,
    window: usize,
    id_binding: bool,
    seeded_ids: bool,
    seed: u64,
}

impl GenericEncoderSpec {
    /// Creates a spec for hypervectors of dimensionality `dim` over
    /// `n_features` raw features, with paper defaults for everything else.
    pub fn new(dim: usize, n_features: usize) -> Self {
        GenericEncoderSpec {
            dim,
            n_features,
            n_levels: DEFAULT_LEVELS,
            window: 3,
            id_binding: true,
            seeded_ids: true,
            seed: 0,
        }
    }

    /// Sets the number of quantization levels.
    pub fn with_levels(mut self, n_levels: usize) -> Self {
        self.n_levels = n_levels;
        self
    }

    /// Sets the sliding-window length *n*.
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Enables or disables the per-window id binding. Disabling it turns
    /// the encoding into plain ngram encoding (ids set to the identity,
    /// "id hypervectors are set to {0}^D" in the paper's notation).
    pub fn with_id_binding(mut self, id_binding: bool) -> Self {
        self.id_binding = id_binding;
        self
    }

    /// Chooses between hardware-style seed-rotation ids (`true`, default)
    /// and independent random ids (`false`).
    pub fn with_seeded_ids(mut self, seeded_ids: bool) -> Self {
        self.seeded_ids = seeded_ids;
        self
    }

    /// Sets the RNG seed for all item memories.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Target hypervector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Expected raw feature count.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Sliding-window length *n*.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Whether per-window id binding is enabled.
    pub fn id_binding(&self) -> bool {
        self.id_binding
    }

    /// Number of quantization levels.
    pub fn n_levels(&self) -> usize {
        self.n_levels
    }

    /// Whether ids are derived from a seed by rotation (hardware style).
    pub fn seeded_ids(&self) -> bool {
        self.seeded_ids
    }

    /// The item-memory seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn validate(&self) -> Result<(), HdcError> {
        if self.n_features == 0 {
            return Err(HdcError::invalid("n_features", "must be positive"));
        }
        if self.window == 0 {
            return Err(HdcError::invalid("window", "must be positive"));
        }
        if self.window > self.n_features {
            return Err(HdcError::invalid(
                "window",
                format!(
                    "window {} exceeds feature count {}",
                    self.window, self.n_features
                ),
            ));
        }
        Ok(())
    }
}

/// The GENERIC encoder of Eq. (1):
///
/// `H(X) = Σ_{i=1}^{d-n+1} id_i · ⊙_{j=0}^{n-1} ρ^(j)(ℓ(x_{i+j}))`
///
/// Every length-`n` sliding window is encoded with the permutation scheme
/// (rotating the `j`-th level in the window by `j`, capturing *local*
/// order, e.g. distinguishing "abc" from "bca"), and the window hypervector
/// is bound to a per-window id to restore *global* position information.
/// Disabling the id binding recovers ngram encoding.
#[derive(Debug, Clone)]
pub struct GenericEncoder {
    spec: GenericEncoderSpec,
    quantizer: Quantizer,
    /// `rotated_levels[j][bin]` = ρ^(j)(ℓ(bin)), precomputed for j < n.
    rotated_levels: Vec<Vec<BinaryHv>>,
    ids: Option<IdMemory>,
}

impl GenericEncoder {
    /// Builds an encoder whose quantizer is fitted to `train` data.
    ///
    /// # Errors
    ///
    /// Returns an error for empty/ragged data or an invalid spec
    /// (zero window, window larger than the feature count, ...).
    pub fn from_data(spec: GenericEncoderSpec, train: &[Vec<f64>]) -> Result<Self, HdcError> {
        let quantizer = Quantizer::fit(train, spec.n_levels)?;
        Self::with_quantizer(spec, quantizer)
    }

    /// Builds an encoder around an existing quantizer.
    ///
    /// # Errors
    ///
    /// Returns an error if the spec is invalid or disagrees with the
    /// quantizer's feature count.
    pub fn with_quantizer(
        spec: GenericEncoderSpec,
        quantizer: Quantizer,
    ) -> Result<Self, HdcError> {
        spec.validate()?;
        if quantizer.n_features() != spec.n_features {
            return Err(HdcError::FeatureCountMismatch {
                expected: spec.n_features,
                actual: quantizer.n_features(),
            });
        }
        let levels = LevelMemory::new(spec.dim, spec.n_levels, spec.seed)?;
        let mut rotated_levels = Vec::with_capacity(spec.window);
        for j in 0..spec.window {
            let row: Vec<BinaryHv> = levels.iter().map(|l| l.rotated(j)).collect();
            rotated_levels.push(row);
        }
        let n_windows = spec.n_features - spec.window + 1;
        let ids = if spec.id_binding {
            Some(if spec.seeded_ids {
                IdMemory::seeded(spec.dim, n_windows, spec.seed.wrapping_add(1))?
            } else {
                IdMemory::random_table(spec.dim, n_windows, spec.seed.wrapping_add(1))?
            })
        } else {
            None
        };
        Ok(GenericEncoder {
            spec,
            quantizer,
            rotated_levels,
            ids,
        })
    }

    /// The encoder's configuration.
    pub fn spec(&self) -> &GenericEncoderSpec {
        &self.spec
    }

    /// The fitted quantizer.
    pub fn quantizer(&self) -> &Quantizer {
        &self.quantizer
    }

    /// The id memory, if id binding is enabled.
    pub fn ids(&self) -> Option<&IdMemory> {
        self.ids.as_ref()
    }

    /// Encodes a sample that is already quantized into level bins —
    /// the exact operation the accelerator's encoder unit performs.
    ///
    /// The window hypervectors are bundled through a
    /// [`BitSliceAccumulator`], so the whole sample costs
    /// O(windows × dim/64) amortized word operations instead of
    /// O(windows × dim) scalar adds, with results bit-identical to the
    /// retained scalar path
    /// ([`encode_bins_scalar`](GenericEncoder::encode_bins_scalar)).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::FeatureCountMismatch`] on a wrong-length bin
    /// vector, or [`HdcError::InvalidParameter`] if any bin is out of range.
    pub fn encode_bins(&self, bins: &[usize]) -> Result<IntHv, HdcError> {
        self.validate_bins(bins)?;
        let n = self.spec.window;
        let n_windows = bins.len() - n + 1;
        let mut acc = BitSliceAccumulator::new(self.spec.dim)?;
        // The window hypervector is never materialized: the XOR binding of
        // the n levels (and the window id) is fused into the accumulator.
        let mut srcs: Vec<&BinaryHv> = Vec::with_capacity(n + 1);
        for i in 0..n_windows {
            srcs.clear();
            for j in 0..n {
                srcs.push(&self.rotated_levels[j][bins[i + j]]);
            }
            if let Some(ids) = &self.ids {
                srcs.push(ids.id(i));
            }
            acc.add_xor(&srcs)?;
        }
        Ok(acc.to_int_hv())
    }

    /// The retained scalar reference implementation of
    /// [`encode_bins`](GenericEncoder::encode_bins): bundles each window
    /// one dimension at a time. Kept for the kernel-equivalence property
    /// tests and the `hotpaths` perf-regression baseline; hot paths must
    /// use [`encode_bins`](GenericEncoder::encode_bins).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::FeatureCountMismatch`] on a wrong-length bin
    /// vector, or [`HdcError::InvalidParameter`] if any bin is out of range.
    pub fn encode_bins_scalar(&self, bins: &[usize]) -> Result<IntHv, HdcError> {
        self.validate_bins(bins)?;
        let n = self.spec.window;
        let n_windows = bins.len() - n + 1;
        let mut acc = IntHv::zeros(self.spec.dim)?;
        let mut window_hv = self.rotated_levels[0][bins[0]].clone();
        for i in 0..n_windows {
            if i > 0 {
                window_hv.clone_from(&self.rotated_levels[0][bins[i]]);
            }
            for j in 1..n {
                window_hv.xor_assign(&self.rotated_levels[j][bins[i + j]])?;
            }
            if let Some(ids) = &self.ids {
                window_hv.xor_assign(ids.id(i))?;
            }
            acc.bundle_binary(&window_hv)?;
        }
        Ok(acc)
    }

    fn validate_bins(&self, bins: &[usize]) -> Result<(), HdcError> {
        if bins.len() != self.spec.n_features {
            return Err(HdcError::FeatureCountMismatch {
                expected: self.spec.n_features,
                actual: bins.len(),
            });
        }
        if let Some(&bad) = bins.iter().find(|&&b| b >= self.quantizer.n_levels()) {
            return Err(HdcError::invalid(
                "bins",
                format!(
                    "bin {bad} out of range for {} levels",
                    self.quantizer.n_levels()
                ),
            ));
        }
        Ok(())
    }
}

impl Encoder for GenericEncoder {
    fn dim(&self) -> usize {
        self.spec.dim
    }

    fn n_features(&self) -> usize {
        self.spec.n_features
    }

    fn encode(&self, sample: &[f64]) -> Result<IntHv, HdcError> {
        let bins = self.quantizer.bins(sample)?;
        self.encode_bins(&bins)
    }
}

/// Ngram encoding: sliding windows encoded with local permutation but **no**
/// global id binding — it captures the *bag* of subsequences, ignoring
/// where each occurs (used by prior work for text-like data, §2.2).
///
/// Implemented as a [`GenericEncoder`] with id binding disabled, so the
/// two share one code path (and the ablation benches can toggle binding).
#[derive(Debug, Clone)]
pub struct NgramEncoder {
    inner: GenericEncoder,
}

impl NgramEncoder {
    /// Builds an ngram encoder with window length `n` fitted to `train`.
    ///
    /// # Errors
    ///
    /// Returns an error for empty/ragged data or an invalid window.
    pub fn from_data(
        dim: usize,
        train: &[Vec<f64>],
        n: usize,
        seed: u64,
    ) -> Result<Self, HdcError> {
        if train.is_empty() {
            return Err(HdcError::EmptyInput);
        }
        let spec = GenericEncoderSpec::new(dim, train[0].len())
            .with_window(n)
            .with_id_binding(false)
            .with_seed(seed);
        Ok(NgramEncoder {
            inner: GenericEncoder::from_data(spec, train)?,
        })
    }
}

impl Encoder for NgramEncoder {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn n_features(&self) -> usize {
        self.inner.n_features()
    }

    fn encode(&self, sample: &[f64]) -> Result<IntHv, HdcError> {
        self.inner.encode(sample)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n_features: usize) -> Vec<Vec<f64>> {
        (0..24)
            .map(|i| {
                (0..n_features)
                    .map(|j| ((i * 5 + j * 2) % 16) as f64)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn component_magnitude_bounded_by_window_count() {
        let spec = GenericEncoderSpec::new(1024, 10).with_seed(1);
        let enc = GenericEncoder::from_data(spec, &data(10)).unwrap();
        let hv = enc.encode(&data(10)[0]).unwrap();
        let max = 10 - 3 + 1; // windows
        assert!(hv
            .values()
            .iter()
            .all(|&v| v.unsigned_abs() as usize <= max));
    }

    #[test]
    fn local_order_within_window_matters() {
        // "abc" vs "bca" patterns: permutation within windows distinguishes.
        let train = data(6);
        let spec = GenericEncoderSpec::new(4096, 6).with_seed(2);
        let enc = GenericEncoder::from_data(spec, &train).unwrap();
        let abc = enc.encode(&[0.0, 7.0, 15.0, 0.0, 7.0, 15.0]).unwrap();
        let bca = enc.encode(&[7.0, 15.0, 0.0, 7.0, 15.0, 0.0]).unwrap();
        let sim = abc.cosine(&bca).unwrap();
        assert!(sim < 0.6, "sim = {sim}");
    }

    #[test]
    fn ngram_ignores_global_position_generic_does_not() {
        // A distinctive trigram at the start vs at the end: ngram sees the
        // same bag of windows (high similarity); GENERIC binds window ids
        // (lower similarity).
        let train = data(12);
        let mut a = vec![8.0; 12];
        a[0] = 0.0;
        a[1] = 15.0;
        a[2] = 0.0;
        let mut b = vec![8.0; 12];
        b[9] = 0.0;
        b[10] = 15.0;
        b[11] = 0.0;

        let ngram = NgramEncoder::from_data(4096, &train, 3, 3).unwrap();
        let na = ngram.encode(&a).unwrap();
        let nb = ngram.encode(&b).unwrap();
        let ngram_sim = na.cosine(&nb).unwrap();

        let spec = GenericEncoderSpec::new(4096, 12).with_seed(3);
        let generic = GenericEncoder::from_data(spec, &train).unwrap();
        let ga = generic.encode(&a).unwrap();
        let gb = generic.encode(&b).unwrap();
        let generic_sim = ga.cosine(&gb).unwrap();

        assert!(
            ngram_sim > generic_sim + 0.2,
            "ngram {ngram_sim} vs generic {generic_sim}"
        );
    }

    #[test]
    fn seeded_and_table_ids_give_comparable_statistics() {
        let train = data(10);
        let a = GenericEncoder::from_data(
            GenericEncoderSpec::new(2048, 10)
                .with_seed(4)
                .with_seeded_ids(true),
            &train,
        )
        .unwrap();
        let b = GenericEncoder::from_data(
            GenericEncoderSpec::new(2048, 10)
                .with_seed(4)
                .with_seeded_ids(false),
            &train,
        )
        .unwrap();
        // Same sample encodes to different vectors but with similar norms.
        let ha = a.encode(&train[0]).unwrap();
        let hb = b.encode(&train[0]).unwrap();
        let ratio = ha.norm2() / hb.norm2();
        assert!((0.5..2.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn window_must_fit_features() {
        let spec = GenericEncoderSpec::new(256, 4).with_window(5);
        assert!(GenericEncoder::from_data(spec, &data(4)).is_err());
        let spec = GenericEncoderSpec::new(256, 4).with_window(0);
        assert!(GenericEncoder::from_data(spec, &data(4)).is_err());
    }

    #[test]
    fn window_one_without_ids_is_plain_level_bundle() {
        let train = data(5);
        let spec = GenericEncoderSpec::new(512, 5)
            .with_window(1)
            .with_id_binding(false)
            .with_seed(5);
        let enc = GenericEncoder::from_data(spec, &train).unwrap();
        let hv = enc.encode(&train[0]).unwrap();
        assert_eq!(hv.dim(), 512);
        // n_windows == n_features when window == 1.
        assert!(hv.values().iter().all(|&v| v.unsigned_abs() <= 5));
    }

    #[test]
    fn encode_bins_rejects_bad_bins() {
        let spec = GenericEncoderSpec::new(256, 6).with_seed(6);
        let enc = GenericEncoder::from_data(spec, &data(6)).unwrap();
        assert!(enc.encode_bins(&[0, 1, 2]).is_err());
        assert!(enc.encode_bins(&[0, 1, 2, 3, 4, 64]).is_err());
        assert!(enc.encode_bins(&[0, 1, 2, 3, 4, 5]).is_ok());
    }

    #[test]
    fn bit_sliced_encoding_matches_scalar_reference() {
        let train = data(10);
        for (window, id_binding) in [(1usize, true), (2, false), (3, true), (5, false)] {
            let spec = GenericEncoderSpec::new(1000, 10)
                .with_window(window)
                .with_id_binding(id_binding)
                .with_seed(11);
            let enc = GenericEncoder::from_data(spec, &train).unwrap();
            for sample in train.iter().take(6) {
                let bins = enc.quantizer().bins(sample).unwrap();
                assert_eq!(
                    enc.encode_bins(&bins).unwrap(),
                    enc.encode_bins_scalar(&bins).unwrap(),
                    "window={window} id_binding={id_binding}"
                );
            }
        }
    }

    #[test]
    fn encode_matches_encode_bins() {
        let train = data(8);
        let spec = GenericEncoderSpec::new(512, 8).with_seed(7);
        let enc = GenericEncoder::from_data(spec, &train).unwrap();
        let sample = &train[2];
        let bins = enc.quantizer().bins(sample).unwrap();
        assert_eq!(enc.encode(sample).unwrap(), enc.encode_bins(&bins).unwrap());
    }
}
