//! Level-id encoding: quantized levels bound to per-feature ids.

use crate::encoding::Encoder;
use crate::{HdcError, IdMemory, IntHv, LevelMemory, Quantizer};

/// Default number of quantization levels (the accelerator's level memory
/// holds 64 bins, §5.1).
pub(crate) const DEFAULT_LEVELS: usize = 64;

/// Level-id encoder.
///
/// Each feature value is quantized to a level hypervector which is XORed
/// with that feature's random id, and the bound pairs are bundled:
/// `H = Σ_i ℓ(x_i) ⊕ id_i`.
///
/// This was the strongest baseline HDC encoding in the paper's comparison
/// (90.0 % mean accuracy in Table 1).
#[derive(Debug, Clone)]
pub struct LevelIdEncoder {
    quantizer: Quantizer,
    levels: LevelMemory,
    ids: IdMemory,
}

impl LevelIdEncoder {
    /// Builds an encoder whose quantizer is fitted to `train` data, with 64
    /// levels and independent random ids.
    ///
    /// # Errors
    ///
    /// Returns an error for empty data, ragged rows, or `dim == 0`.
    pub fn from_data(dim: usize, train: &[Vec<f64>], seed: u64) -> Result<Self, HdcError> {
        let quantizer = Quantizer::fit(train, DEFAULT_LEVELS)?;
        Self::with_quantizer(dim, quantizer, seed)
    }

    /// Builds an encoder around an existing quantizer.
    ///
    /// # Errors
    ///
    /// Returns an error if `dim == 0` or the quantizer has too many levels
    /// for `dim`.
    pub fn with_quantizer(dim: usize, quantizer: Quantizer, seed: u64) -> Result<Self, HdcError> {
        let levels = LevelMemory::new(dim, quantizer.n_levels(), seed)?;
        let ids = IdMemory::random_table(dim, quantizer.n_features(), seed.wrapping_add(1))?;
        Ok(LevelIdEncoder {
            quantizer,
            levels,
            ids,
        })
    }

    /// The fitted quantizer.
    pub fn quantizer(&self) -> &Quantizer {
        &self.quantizer
    }
}

impl Encoder for LevelIdEncoder {
    fn dim(&self) -> usize {
        self.levels.dim()
    }

    fn n_features(&self) -> usize {
        self.quantizer.n_features()
    }

    fn encode(&self, sample: &[f64]) -> Result<IntHv, HdcError> {
        let bins = self.quantizer.bins(sample)?;
        let mut acc = IntHv::zeros(self.dim())?;
        let mut scratch = self.levels.level(0).clone();
        for (i, &bin) in bins.iter().enumerate() {
            scratch.clone_from(self.levels.level(bin));
            scratch.xor_assign(self.ids.id(i))?;
            acc.bundle_binary(&scratch)?;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Vec<Vec<f64>> {
        (0..16)
            .map(|i| (0..6).map(|j| ((i + j) % 9) as f64).collect())
            .collect()
    }

    #[test]
    fn encoded_components_bounded_by_feature_count() {
        let enc = LevelIdEncoder::from_data(512, &data(), 1).unwrap();
        let hv = enc.encode(&data()[0]).unwrap();
        assert!(hv.values().iter().all(|&v| v.unsigned_abs() as usize <= 6));
    }

    #[test]
    fn permuted_features_encode_differently() {
        // level-id distinguishes *which* feature carries a value.
        let enc = LevelIdEncoder::from_data(2048, &data(), 2).unwrap();
        let a = enc.encode(&[0.0, 8.0, 0.0, 8.0, 0.0, 8.0]).unwrap();
        let b = enc.encode(&[8.0, 0.0, 8.0, 0.0, 8.0, 0.0]).unwrap();
        let sim = a.cosine(&b).unwrap();
        assert!(sim < 0.5, "sim = {sim}");
    }

    #[test]
    fn nearby_values_encode_similarly() {
        let enc = LevelIdEncoder::from_data(2048, &data(), 3).unwrap();
        let a = enc.encode(&[4.0, 4.0, 4.0, 4.0, 4.0, 4.0]).unwrap();
        let b = enc.encode(&[4.4, 4.4, 4.4, 4.4, 4.4, 4.4]).unwrap();
        let c = enc.encode(&[0.0, 0.0, 0.0, 0.0, 0.0, 0.0]).unwrap();
        assert!(a.cosine(&b).unwrap() > a.cosine(&c).unwrap());
    }
}
