//! HDC encodings: from raw feature vectors to encoded hypervectors.
//!
//! The paper evaluates five encodings (§2.2, §3.1, Table 1):
//!
//! | Encoder | Positional binding | Captures |
//! |---|---|---|
//! | [`RandomProjectionEncoder`] | random ±1 projection row per feature | global linear structure |
//! | [`LevelIdEncoder`] | XOR with a per-feature id | global feature identity |
//! | [`PermutationEncoder`] | rotation by feature index | strict global order |
//! | [`NgramEncoder`] | rotation within a window, no global id | local subsequences only |
//! | [`GenericEncoder`] | rotation within a window **and** per-window id | local + global (Eq. 1) |
//!
//! All encoders implement the object-safe [`Encoder`] trait and produce an
//! [`IntHv`] — the integer "encoded hypervector" the model trains on.

mod generic;
mod level_id;
mod permutation;
mod random_projection;

pub use generic::{GenericEncoder, GenericEncoderSpec, NgramEncoder};
pub use level_id::LevelIdEncoder;
pub use permutation::PermutationEncoder;
pub use random_projection::RandomProjectionEncoder;

use crate::{HdcError, IntHv};

/// A deterministic mapping from raw feature vectors to encoded
/// hypervectors.
///
/// Encoders are immutable once constructed: encoding the same sample twice
/// yields identical hypervectors, which is what makes HDC training (bundling
/// into class accumulators) and inference consistent.
pub trait Encoder {
    /// Dimensionality of the produced hypervectors.
    fn dim(&self) -> usize;

    /// Number of raw input features the encoder expects.
    fn n_features(&self) -> usize;

    /// Encodes one sample.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::FeatureCountMismatch`] if `sample.len()`
    /// differs from [`Encoder::n_features`].
    fn encode(&self, sample: &[f64]) -> Result<IntHv, HdcError>;

    /// Encodes a batch of samples.
    ///
    /// # Errors
    ///
    /// Returns the first per-sample error encountered.
    fn encode_batch(&self, samples: &[Vec<f64>]) -> Result<Vec<IntHv>, HdcError> {
        samples.iter().map(|s| self.encode(s)).collect()
    }
}

/// The five encodings of the paper's evaluation, for sweeping benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum EncodingKind {
    /// Random projection (Fig. 2c).
    RandomProjection,
    /// Level-id (random ids bound to levels).
    LevelId,
    /// Ngram: windowed permutation encoding without global ids.
    Ngram,
    /// Permutation: rotation by global feature index (Fig. 2b).
    Permutation,
    /// The proposed GENERIC encoding (Fig. 2d, Eq. 1).
    Generic,
}

impl EncodingKind {
    /// All kinds in the column order of Table 1.
    pub const ALL: [EncodingKind; 5] = [
        EncodingKind::RandomProjection,
        EncodingKind::LevelId,
        EncodingKind::Ngram,
        EncodingKind::Permutation,
        EncodingKind::Generic,
    ];

    /// Short lowercase name used in reports (matches the paper's headers).
    pub fn name(self) -> &'static str {
        match self {
            EncodingKind::RandomProjection => "RP",
            EncodingKind::LevelId => "level-id",
            EncodingKind::Ngram => "ngram",
            EncodingKind::Permutation => "permute",
            EncodingKind::Generic => "GENERIC",
        }
    }
}

impl std::fmt::Display for EncodingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Encodes a batch across `n_threads` scoped worker threads, preserving
/// input order. Falls back to the serial path for a single thread or a
/// tiny batch. Results are identical to [`Encoder::encode_batch`] —
/// encoders are pure functions of their construction state.
///
/// # Errors
///
/// Returns the first per-sample error encountered (in input order).
pub fn encode_batch_parallel(
    encoder: &(dyn Encoder + Sync),
    samples: &[Vec<f64>],
    n_threads: usize,
) -> Result<Vec<IntHv>, HdcError> {
    let n_threads = n_threads.max(1).min(samples.len().max(1));
    if n_threads == 1 || samples.len() < 2 {
        return encoder.encode_batch(samples);
    }
    let chunk = samples.len().div_ceil(n_threads);
    let mut results: Vec<Result<Vec<IntHv>, HdcError>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = samples
            .chunks(chunk)
            .map(|part| scope.spawn(move || encoder.encode_batch(part)))
            .collect();
        for handle in handles {
            results.push(handle.join().expect("encoder workers do not panic"));
        }
    });
    let mut out = Vec::with_capacity(samples.len());
    for part in results {
        out.extend(part?);
    }
    Ok(out)
}

/// Builds an encoder of the requested kind fitted to `train` data, using
/// the paper's defaults (64 levels, window n = 3 for windowed encoders).
///
/// # Errors
///
/// Propagates construction errors from the concrete encoder (empty data,
/// invalid dimensions, too few features for the window, ...).
pub fn build_encoder(
    kind: EncodingKind,
    dim: usize,
    train: &[Vec<f64>],
    seed: u64,
) -> Result<Box<dyn Encoder + Send + Sync>, HdcError> {
    if train.is_empty() {
        return Err(HdcError::EmptyInput);
    }
    let n_features = train[0].len();
    Ok(match kind {
        EncodingKind::RandomProjection => {
            Box::new(RandomProjectionEncoder::new(dim, n_features, seed)?)
        }
        EncodingKind::LevelId => Box::new(LevelIdEncoder::from_data(dim, train, seed)?),
        EncodingKind::Permutation => Box::new(PermutationEncoder::from_data(dim, train, seed)?),
        EncodingKind::Ngram => {
            let window = 3.min(n_features);
            Box::new(NgramEncoder::from_data(dim, train, window.max(1), seed)?)
        }
        EncodingKind::Generic => {
            let window = 3.min(n_features).max(1);
            let spec = GenericEncoderSpec::new(dim, n_features)
                .with_window(window)
                .with_seed(seed);
            Box::new(GenericEncoder::from_data(spec, train)?)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_data() -> Vec<Vec<f64>> {
        (0..20)
            .map(|i| (0..10).map(|j| ((i * 7 + j * 3) % 13) as f64).collect())
            .collect()
    }

    #[test]
    fn build_encoder_all_kinds() {
        let data = toy_data();
        for kind in EncodingKind::ALL {
            let enc = build_encoder(kind, 1024, &data, 5).unwrap();
            assert_eq!(enc.dim(), 1024, "{kind}");
            assert_eq!(enc.n_features(), 10, "{kind}");
            let hv = enc.encode(&data[0]).unwrap();
            assert_eq!(hv.dim(), 1024, "{kind}");
        }
    }

    #[test]
    fn encoders_are_deterministic() {
        let data = toy_data();
        for kind in EncodingKind::ALL {
            let a = build_encoder(kind, 512, &data, 11).unwrap();
            let b = build_encoder(kind, 512, &data, 11).unwrap();
            assert_eq!(
                a.encode(&data[3]).unwrap(),
                b.encode(&data[3]).unwrap(),
                "{kind}"
            );
        }
    }

    #[test]
    fn encode_batch_matches_single() {
        let data = toy_data();
        let enc = build_encoder(EncodingKind::Generic, 512, &data, 2).unwrap();
        let batch = enc.encode_batch(&data[..3]).unwrap();
        for (i, hv) in batch.iter().enumerate() {
            assert_eq!(*hv, enc.encode(&data[i]).unwrap());
        }
    }

    #[test]
    fn wrong_feature_count_is_rejected() {
        let data = toy_data();
        for kind in EncodingKind::ALL {
            let enc = build_encoder(kind, 256, &data, 3).unwrap();
            assert!(
                matches!(
                    enc.encode(&[1.0, 2.0]),
                    Err(HdcError::FeatureCountMismatch { .. })
                ),
                "{kind}"
            );
        }
    }

    #[test]
    fn parallel_batch_matches_serial() {
        let data = toy_data();
        let enc = build_encoder(EncodingKind::Generic, 512, &data, 4).unwrap();
        let serial = enc.encode_batch(&data).unwrap();
        for threads in [1usize, 2, 3, 8, 64] {
            let parallel = encode_batch_parallel(enc.as_ref(), &data, threads).unwrap();
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_batch_propagates_errors() {
        let data = toy_data();
        let enc = build_encoder(EncodingKind::Generic, 512, &data, 4).unwrap();
        let mut bad = data.clone();
        bad[7] = vec![1.0, 2.0]; // wrong width
        assert!(encode_batch_parallel(enc.as_ref(), &bad, 4).is_err());
    }

    #[test]
    fn kind_names_match_paper() {
        assert_eq!(EncodingKind::Generic.name(), "GENERIC");
        assert_eq!(EncodingKind::RandomProjection.to_string(), "RP");
    }
}
