//! Id item memory for positional binding.
//!
//! Each feature index (or window index, in the GENERIC encoding) is
//! associated with a random but constant binary *id* hypervector. The
//! GENERIC accelerator does not store all ids: it keeps a single seed id
//! and derives `id_k` by permuting (rotating) the seed by `k` positions,
//! shrinking the id memory by 1024× (§4.3.1). Rotation preserves
//! quasi-orthogonality, so the two construction styles are statistically
//! interchangeable; this module provides both so the simulator can be
//! validated bit-exactly against the seeded variant.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{BinaryHv, HdcError};

/// How id hypervectors are materialized.
#[derive(Debug, Clone, PartialEq, Eq)]
enum IdStore {
    /// Independent random ids, one per index (the software-reference style).
    Table(Vec<BinaryHv>),
    /// A single seed id; `id_k = rotate(seed, k)` (the hardware style).
    Seeded {
        seed: BinaryHv,
        cache: Vec<BinaryHv>,
    },
}

/// An id item memory producing one quasi-orthogonal hypervector per index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdMemory {
    store: IdStore,
}

impl IdMemory {
    /// Creates a table of `count` independent random ids.
    ///
    /// # Errors
    ///
    /// Returns an error if `dim == 0` or `count == 0`.
    pub fn random_table(dim: usize, count: usize, seed: u64) -> Result<Self, HdcError> {
        if count == 0 {
            return Err(HdcError::invalid("count", "must be positive"));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ids = Vec::with_capacity(count);
        for _ in 0..count {
            ids.push(BinaryHv::random(dim, &mut rng)?);
        }
        Ok(IdMemory {
            store: IdStore::Table(ids),
        })
    }

    /// Creates the hardware-style seeded id memory: `id_k` is the seed id
    /// rotated by `k` positions, precomputed for `count` indexes.
    ///
    /// # Errors
    ///
    /// Returns an error if `dim == 0` or `count == 0`.
    pub fn seeded(dim: usize, count: usize, seed: u64) -> Result<Self, HdcError> {
        if count == 0 {
            return Err(HdcError::invalid("count", "must be positive"));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let seed_hv = BinaryHv::random(dim, &mut rng)?;
        let mut cache = Vec::with_capacity(count);
        let mut current = seed_hv.clone();
        for _ in 0..count {
            cache.push(current.clone());
            current.rotate_one_in_place();
        }
        Ok(IdMemory {
            store: IdStore::Seeded {
                seed: seed_hv,
                cache,
            },
        })
    }

    /// Number of indexes this memory can serve.
    pub fn len(&self) -> usize {
        match &self.store {
            IdStore::Table(ids) => ids.len(),
            IdStore::Seeded { cache, .. } => cache.len(),
        }
    }

    /// Whether the memory serves zero indexes (never true for a
    /// successfully constructed memory).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimensionality of the id hypervectors.
    pub fn dim(&self) -> usize {
        match &self.store {
            IdStore::Table(ids) => ids[0].dim(),
            IdStore::Seeded { seed, .. } => seed.dim(),
        }
    }

    /// The id hypervector for index `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.len()`.
    pub fn id(&self, k: usize) -> &BinaryHv {
        match &self.store {
            IdStore::Table(ids) => &ids[k],
            IdStore::Seeded { cache, .. } => &cache[k],
        }
    }

    /// The seed id for seeded memories (what the 4-Kbit hardware id memory
    /// actually stores), or `None` for table memories.
    pub fn seed_id(&self) -> Option<&BinaryHv> {
        match &self.store {
            IdStore::Table(_) => None,
            IdStore::Seeded { seed, .. } => Some(seed),
        }
    }

    /// Whether this memory derives ids by seed rotation (hardware style).
    pub fn is_seeded(&self) -> bool {
        matches!(self.store, IdStore::Seeded { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ids_are_distinct_and_quasi_orthogonal() {
        let ids = IdMemory::random_table(4096, 8, 1).unwrap();
        for i in 0..8 {
            for j in (i + 1)..8 {
                let d = ids.id(i).hamming(ids.id(j)).unwrap();
                assert!((1850..=2250).contains(&d), "ids {i},{j}: d = {d}");
            }
        }
    }

    #[test]
    fn seeded_ids_are_rotations_of_seed() {
        let ids = IdMemory::seeded(512, 5, 2).unwrap();
        let seed = ids.seed_id().unwrap().clone();
        for k in 0..5 {
            assert_eq!(*ids.id(k), seed.rotated(k), "k = {k}");
        }
    }

    #[test]
    fn seeded_ids_stay_quasi_orthogonal() {
        let ids = IdMemory::seeded(4096, 16, 3).unwrap();
        for k in 1..16 {
            let d = ids.id(0).hamming(ids.id(k)).unwrap();
            assert!((1800..=2300).contains(&d), "k = {k}: d = {d}");
        }
    }

    #[test]
    fn id_zero_is_seed() {
        let ids = IdMemory::seeded(128, 3, 4).unwrap();
        assert_eq!(ids.id(0), ids.seed_id().unwrap());
        assert!(ids.is_seeded());
        assert!(!IdMemory::random_table(128, 3, 4).unwrap().is_seeded());
    }

    #[test]
    fn constructors_validate() {
        assert!(IdMemory::random_table(0, 4, 1).is_err());
        assert!(IdMemory::random_table(64, 0, 1).is_err());
        assert!(IdMemory::seeded(64, 0, 1).is_err());
    }

    #[test]
    fn len_reports_count() {
        let ids = IdMemory::seeded(64, 7, 5).unwrap();
        assert_eq!(ids.len(), 7);
        assert!(!ids.is_empty());
        assert_eq!(ids.dim(), 64);
    }
}
