//! Runtime-dispatched SIMD kernels for the bit-level hot primitives.
//!
//! The similarity and bundling hot loops spend their time in four tiny
//! primitives: XOR+popcount Hamming distance, the masked popcount at the
//! heart of [`dot_packed`](crate::BinaryHv::dot_packed), one carry-save
//! ripple step of the bit-sliced bundler, and the `i32 × i32 → i64` dot
//! product of blocked class scoring. This module provides vector-wide
//! implementations of each (AVX2 and AVX-512 VPOPCNTDQ on `x86_64`, NEON
//! on `aarch64`) behind a table of function pointers selected once per
//! process by runtime CPU-feature detection, with the existing word-wise
//! loops retained as the portable fallback.
//!
//! Every variant is *bit-identical* to the portable reference: the
//! primitives are pure integer reductions (XOR/AND/popcount and exact
//! 64-bit sums), so reassociating lanes cannot change the result. The
//! conformance harness re-proves this on every host by running each
//! available variant against the scalar oracle (see
//! [`crate::oracle::ORACLE_REGISTRY`]).
//!
//! Setting `GENERIC_FORCE_PORTABLE=1` in the environment pins the active
//! set to the portable kernels, reproducing pre-dispatch numbers.
//!
//! # Safety
//!
//! This is the only module in the crate allowed to contain `unsafe`
//! (the crate root denies it elsewhere). The `unsafe` surface is limited
//! to (a) calling `#[target_feature]` functions, which is sound only
//! after the matching `is_*_feature_detected!` check — enforced by
//! construction because the SIMD wrappers are private and only ever
//! installed into a [`KernelSet`] guarded by that check — and (b)
//! unaligned vector loads/stores through raw pointers derived from
//! in-bounds slice indices.

use std::sync::OnceLock;

/// Instruction-set families a [`KernelSet`] can be specialised for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Isa {
    /// The word-wise scalar loops; always available, and the oracle the
    /// other variants are differentially checked against.
    Portable,
    /// 256-bit AVX2 (`x86_64`), popcounts via the nibble-LUT `vpshufb`
    /// technique.
    Avx2,
    /// 512-bit AVX-512 with the VPOPCNTDQ extension (`x86_64`),
    /// popcounts via the native `vpopcntq` instruction.
    Avx512Vpopcnt,
    /// 128-bit NEON (`aarch64`), popcounts via `cnt` + horizontal add.
    Neon,
}

impl Isa {
    /// Stable lower-case name used in bench reports and logs.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Isa::Portable => "portable",
            Isa::Avx2 => "avx2",
            Isa::Avx512Vpopcnt => "avx512-vpopcntdq",
            Isa::Neon => "neon",
        }
    }
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One coherent set of kernel implementations for a single ISA.
///
/// The function pointers are plain safe `fn`s: each SIMD entry is a thin
/// wrapper whose body performs the (detection-guarded) `unsafe` call, so
/// holding a `KernelSet` is always safe — sets for unavailable ISAs are
/// unobtainable through the public constructors.
#[derive(Clone, Copy)]
pub struct KernelSet {
    isa: Isa,
    hamming: fn(&[u64], &[u64]) -> u64,
    masked_popcount: fn(&[u64], &[u64], &[u64]) -> i64,
    ripple_step: fn(&mut [u64], &mut [u64]) -> u64,
    dot_i32: fn(&[i32], &[i32]) -> i64,
}

impl std::fmt::Debug for KernelSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelSet").field("isa", &self.isa).finish()
    }
}

impl KernelSet {
    /// The ISA this set is specialised for.
    #[must_use]
    pub fn isa(&self) -> Isa {
        self.isa
    }

    /// Number of differing bits between two packed bit vectors
    /// (`Σ popcount(a[i] ^ b[i])` over the common prefix).
    #[must_use]
    pub fn hamming(&self, a: &[u64], b: &[u64]) -> u64 {
        (self.hamming)(a, b)
    }

    /// Masked disagreement count: `Σ popcount((q[i] ^ s[i]) & m[i])`
    /// over the common prefix — the inner reduction of the sign/magnitude
    /// packed dot product.
    #[must_use]
    pub fn masked_popcount(&self, q: &[u64], s: &[u64], m: &[u64]) -> i64 {
        (self.masked_popcount)(q, s, m)
    }

    /// One carry-save ripple step of the bit-sliced bundler: replaces
    /// `plane` with `plane ^ carry` and `carry` with `plane & carry`
    /// element-wise, returning the OR of all surviving carry words (zero
    /// means the ripple has terminated).
    pub fn ripple_step(&self, plane: &mut [u64], carry: &mut [u64]) -> u64 {
        (self.ripple_step)(plane, carry)
    }

    /// Exact widening dot product `Σ a[i] as i64 * b[i] as i64` over the
    /// common prefix.
    #[must_use]
    pub fn dot_i32(&self, a: &[i32], b: &[i32]) -> i64 {
        (self.dot_i32)(a, b)
    }
}

/// The portable (always available) kernel set — the scalar oracle.
static PORTABLE: KernelSet = KernelSet {
    isa: Isa::Portable,
    hamming: hamming_portable,
    masked_popcount: masked_popcount_portable,
    ripple_step: ripple_step_portable,
    dot_i32: dot_i32_portable,
};

#[cfg(target_arch = "x86_64")]
static AVX2: KernelSet = KernelSet {
    isa: Isa::Avx2,
    hamming: hamming_avx2,
    masked_popcount: masked_popcount_avx2,
    ripple_step: ripple_step_avx2,
    dot_i32: dot_i32_avx2,
};

#[cfg(target_arch = "x86_64")]
static AVX512: KernelSet = KernelSet {
    isa: Isa::Avx512Vpopcnt,
    hamming: hamming_avx512,
    masked_popcount: masked_popcount_avx512,
    ripple_step: ripple_step_avx512,
    dot_i32: dot_i32_avx512,
};

#[cfg(target_arch = "aarch64")]
static NEON: KernelSet = KernelSet {
    isa: Isa::Neon,
    hamming: hamming_neon,
    masked_popcount: masked_popcount_neon,
    ripple_step: ripple_step_neon,
    dot_i32: dot_i32_neon,
};

/// Whether `isa` is usable on the current host.
fn detected(isa: Isa) -> bool {
    match isa {
        Isa::Portable => true,
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512Vpopcnt => {
            std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512vpopcntdq")
        }
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => std::arch::is_aarch64_feature_detected!("neon"),
        #[allow(unreachable_patterns)] // ISAs of other architectures
        _ => false,
    }
}

/// Every ISA usable on the current host, portable first, fastest last.
#[must_use]
pub fn available() -> Vec<Isa> {
    let mut isas = vec![Isa::Portable];
    #[cfg(target_arch = "x86_64")]
    for isa in [Isa::Avx2, Isa::Avx512Vpopcnt] {
        if detected(isa) {
            isas.push(isa);
        }
    }
    #[cfg(target_arch = "aarch64")]
    if detected(Isa::Neon) {
        isas.push(Isa::Neon);
    }
    isas
}

/// The kernel set for `isa`, or `None` when the current host cannot
/// execute it. [`Isa::Portable`] always succeeds.
#[must_use]
pub fn for_isa(isa: Isa) -> Option<&'static KernelSet> {
    if !detected(isa) {
        return None;
    }
    match isa {
        Isa::Portable => Some(&PORTABLE),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => Some(&AVX2),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512Vpopcnt => Some(&AVX512),
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => Some(&NEON),
        #[allow(unreachable_patterns)] // ISAs of other architectures
        _ => None,
    }
}

/// The kernel set every hot path dispatches through: the widest ISA the
/// host supports, selected once per process. `GENERIC_FORCE_PORTABLE=1`
/// (any value but `0`) pins it to the portable set.
pub fn active() -> &'static KernelSet {
    static ACTIVE: OnceLock<&'static KernelSet> = OnceLock::new();
    ACTIVE.get_or_init(|| {
        if std::env::var_os("GENERIC_FORCE_PORTABLE").is_some_and(|v| v != *"0") {
            return &PORTABLE;
        }
        available()
            .last()
            .and_then(|&isa| for_isa(isa))
            .unwrap_or(&PORTABLE)
    })
}

// ---------------------------------------------------------------------
// Portable reference implementations (the scalar oracles).
// ---------------------------------------------------------------------

fn hamming_portable(a: &[u64], b: &[u64]) -> u64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| u64::from((x ^ y).count_ones()))
        .sum()
}

fn masked_popcount_portable(q: &[u64], s: &[u64], m: &[u64]) -> i64 {
    let mut disagree: i64 = 0;
    for ((&q, &s), &m) in q.iter().zip(s).zip(m) {
        disagree += i64::from(((q ^ s) & m).count_ones());
    }
    disagree
}

fn ripple_step_portable(plane: &mut [u64], carry: &mut [u64]) -> u64 {
    let mut surviving = 0u64;
    for (p, c) in plane.iter_mut().zip(carry.iter_mut()) {
        let sum = *p ^ *c;
        *c &= *p;
        *p = sum;
        surviving |= *c;
    }
    surviving
}

fn dot_i32_portable(a: &[i32], b: &[i32]) -> i64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| i64::from(x) * i64::from(y))
        .sum()
}

// ---------------------------------------------------------------------
// x86_64: AVX2 and AVX-512 VPOPCNTDQ.
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_add_epi8, _mm256_and_si256, _mm256_castsi256_si128,
        _mm256_extracti128_si256, _mm256_loadu_si256, _mm256_mul_epi32, _mm256_or_si256,
        _mm256_sad_epu8, _mm256_set1_epi8, _mm256_setr_epi8, _mm256_setzero_si256,
        _mm256_shuffle_epi8, _mm256_srli_epi64, _mm256_storeu_si256, _mm256_xor_si256,
        _mm512_add_epi64, _mm512_and_si512, _mm512_loadu_si512, _mm512_mul_epi32, _mm512_or_si512,
        _mm512_popcnt_epi64, _mm512_reduce_add_epi64, _mm512_reduce_or_epi64, _mm512_setzero_si512,
        _mm512_srli_epi64, _mm512_storeu_si512, _mm512_xor_si512, _mm_add_epi64, _mm_cvtsi128_si64,
        _mm_or_si128, _mm_srli_si128,
    };

    /// Sums the four 64-bit lanes of `v`.
    #[target_feature(enable = "avx2")]
    fn reduce_add_epi64(v: __m256i) -> i64 {
        let hi = _mm256_extracti128_si256::<1>(v);
        let lo = _mm256_castsi256_si128(v);
        let sum2 = _mm_add_epi64(lo, hi);
        let sum1 = _mm_add_epi64(sum2, _mm_srli_si128::<8>(sum2));
        _mm_cvtsi128_si64(sum1)
    }

    /// ORs the four 64-bit lanes of `v`.
    #[target_feature(enable = "avx2")]
    fn reduce_or_epi64(v: __m256i) -> i64 {
        let hi = _mm256_extracti128_si256::<1>(v);
        let lo = _mm256_castsi256_si128(v);
        let or2 = _mm_or_si128(lo, hi);
        let or1 = _mm_or_si128(or2, _mm_srli_si128::<8>(or2));
        _mm_cvtsi128_si64(or1)
    }

    /// Per-byte popcount of `v` via the nibble-LUT `vpshufb` technique.
    #[target_feature(enable = "avx2")]
    fn popcount_epi8(v: __m256i) -> __m256i {
        #[rustfmt::skip]
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi64::<4>(v), low_mask);
        _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi))
    }

    #[target_feature(enable = "avx2")]
    pub fn hamming_avx2(a: &[u64], b: &[u64]) -> u64 {
        let n = a.len().min(b.len());
        let chunks = n / 4;
        let mut acc = _mm256_setzero_si256();
        for i in 0..chunks {
            // SAFETY: `i * 4 + 3 < chunks * 4 <= n`, so both 32-byte
            // unaligned loads stay inside the slices.
            let (va, vb) = unsafe {
                (
                    _mm256_loadu_si256(a.as_ptr().add(i * 4).cast()),
                    _mm256_loadu_si256(b.as_ptr().add(i * 4).cast()),
                )
            };
            let counts = popcount_epi8(_mm256_xor_si256(va, vb));
            acc = _mm256_add_epi64(acc, _mm256_sad_epu8(counts, _mm256_setzero_si256()));
        }
        let mut total = reduce_add_epi64(acc) as u64;
        for (x, y) in a[chunks * 4..n].iter().zip(&b[chunks * 4..n]) {
            total += u64::from((x ^ y).count_ones());
        }
        total
    }

    #[target_feature(enable = "avx2")]
    pub fn masked_popcount_avx2(q: &[u64], s: &[u64], m: &[u64]) -> i64 {
        let n = q.len().min(s.len()).min(m.len());
        let chunks = n / 4;
        let mut acc = _mm256_setzero_si256();
        for i in 0..chunks {
            // SAFETY: `i * 4 + 3 < chunks * 4 <= n`, so all three
            // 32-byte unaligned loads stay inside the slices.
            let (vq, vs, vm) = unsafe {
                (
                    _mm256_loadu_si256(q.as_ptr().add(i * 4).cast()),
                    _mm256_loadu_si256(s.as_ptr().add(i * 4).cast()),
                    _mm256_loadu_si256(m.as_ptr().add(i * 4).cast()),
                )
            };
            let x = _mm256_and_si256(_mm256_xor_si256(vq, vs), vm);
            acc = _mm256_add_epi64(
                acc,
                _mm256_sad_epu8(popcount_epi8(x), _mm256_setzero_si256()),
            );
        }
        let mut total = reduce_add_epi64(acc);
        for ((&q, &s), &m) in q[chunks * 4..n]
            .iter()
            .zip(&s[chunks * 4..n])
            .zip(&m[chunks * 4..n])
        {
            total += i64::from(((q ^ s) & m).count_ones());
        }
        total
    }

    #[target_feature(enable = "avx2")]
    pub fn ripple_step_avx2(plane: &mut [u64], carry: &mut [u64]) -> u64 {
        let n = plane.len().min(carry.len());
        let chunks = n / 4;
        let mut surv = _mm256_setzero_si256();
        for i in 0..chunks {
            let pp = plane[i * 4..].as_mut_ptr();
            let cp = carry[i * 4..].as_mut_ptr();
            // SAFETY: `i * 4 + 3 < chunks * 4 <= n`, so the 32-byte
            // unaligned loads and stores stay inside the slices; `plane`
            // and `carry` are distinct `&mut` slices, so the pointers
            // cannot alias.
            unsafe {
                let vp = _mm256_loadu_si256(pp.cast());
                let vc = _mm256_loadu_si256(cp.cast());
                let sum = _mm256_xor_si256(vp, vc);
                let new_carry = _mm256_and_si256(vp, vc);
                _mm256_storeu_si256(pp.cast(), sum);
                _mm256_storeu_si256(cp.cast(), new_carry);
                surv = _mm256_or_si256(surv, new_carry);
            }
        }
        let mut surviving = reduce_or_epi64(surv) as u64;
        for (p, c) in plane[chunks * 4..n]
            .iter_mut()
            .zip(&mut carry[chunks * 4..n])
        {
            let sum = *p ^ *c;
            *c &= *p;
            *p = sum;
            surviving |= *c;
        }
        surviving
    }

    #[target_feature(enable = "avx2")]
    pub fn dot_i32_avx2(a: &[i32], b: &[i32]) -> i64 {
        let n = a.len().min(b.len());
        let chunks = n / 8;
        let mut acc_even = _mm256_setzero_si256();
        let mut acc_odd = _mm256_setzero_si256();
        for i in 0..chunks {
            // SAFETY: `i * 8 + 7 < chunks * 8 <= n`, so both 32-byte
            // unaligned loads stay inside the slices.
            let (va, vb) = unsafe {
                (
                    _mm256_loadu_si256(a.as_ptr().add(i * 8).cast()),
                    _mm256_loadu_si256(b.as_ptr().add(i * 8).cast()),
                )
            };
            // `vpmuldq` sign-extends the low 32 bits of each 64-bit lane
            // (elements 0,2,4,6); shifting right by 32 exposes elements
            // 1,3,5,7 for a second pass. Exact i64 products, no rounding.
            let even = _mm256_mul_epi32(va, vb);
            let odd = _mm256_mul_epi32(_mm256_srli_epi64::<32>(va), _mm256_srli_epi64::<32>(vb));
            acc_even = _mm256_add_epi64(acc_even, even);
            acc_odd = _mm256_add_epi64(acc_odd, odd);
        }
        let mut total = reduce_add_epi64(_mm256_add_epi64(acc_even, acc_odd));
        for (&x, &y) in a[chunks * 8..n].iter().zip(&b[chunks * 8..n]) {
            total += i64::from(x) * i64::from(y);
        }
        total
    }

    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    pub fn hamming_avx512(a: &[u64], b: &[u64]) -> u64 {
        let n = a.len().min(b.len());
        let chunks = n / 8;
        let mut acc = _mm512_setzero_si512();
        for i in 0..chunks {
            // SAFETY: `i * 8 + 7 < chunks * 8 <= n`, so both 64-byte
            // unaligned loads stay inside the slices.
            let (va, vb) = unsafe {
                (
                    _mm512_loadu_si512(a.as_ptr().add(i * 8).cast()),
                    _mm512_loadu_si512(b.as_ptr().add(i * 8).cast()),
                )
            };
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_xor_si512(va, vb)));
        }
        let mut total = _mm512_reduce_add_epi64(acc) as u64;
        for (x, y) in a[chunks * 8..n].iter().zip(&b[chunks * 8..n]) {
            total += u64::from((x ^ y).count_ones());
        }
        total
    }

    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    pub fn masked_popcount_avx512(q: &[u64], s: &[u64], m: &[u64]) -> i64 {
        let n = q.len().min(s.len()).min(m.len());
        let chunks = n / 8;
        let mut acc = _mm512_setzero_si512();
        for i in 0..chunks {
            // SAFETY: `i * 8 + 7 < chunks * 8 <= n`, so all three
            // 64-byte unaligned loads stay inside the slices.
            let (vq, vs, vm) = unsafe {
                (
                    _mm512_loadu_si512(q.as_ptr().add(i * 8).cast()),
                    _mm512_loadu_si512(s.as_ptr().add(i * 8).cast()),
                    _mm512_loadu_si512(m.as_ptr().add(i * 8).cast()),
                )
            };
            let x = _mm512_and_si512(_mm512_xor_si512(vq, vs), vm);
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
        }
        let mut total = _mm512_reduce_add_epi64(acc);
        for ((&q, &s), &m) in q[chunks * 8..n]
            .iter()
            .zip(&s[chunks * 8..n])
            .zip(&m[chunks * 8..n])
        {
            total += i64::from(((q ^ s) & m).count_ones());
        }
        total
    }

    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    pub fn ripple_step_avx512(plane: &mut [u64], carry: &mut [u64]) -> u64 {
        let n = plane.len().min(carry.len());
        let chunks = n / 8;
        let mut surv = _mm512_setzero_si512();
        for i in 0..chunks {
            let pp = plane[i * 8..].as_mut_ptr();
            let cp = carry[i * 8..].as_mut_ptr();
            // SAFETY: `i * 8 + 7 < chunks * 8 <= n`, so the 64-byte
            // unaligned loads and stores stay inside the slices; `plane`
            // and `carry` are distinct `&mut` slices, so the pointers
            // cannot alias.
            unsafe {
                let vp = _mm512_loadu_si512(pp.cast());
                let vc = _mm512_loadu_si512(cp.cast());
                let sum = _mm512_xor_si512(vp, vc);
                let new_carry = _mm512_and_si512(vp, vc);
                _mm512_storeu_si512(pp.cast(), sum);
                _mm512_storeu_si512(cp.cast(), new_carry);
                surv = _mm512_or_si512(surv, new_carry);
            }
        }
        let mut surviving = _mm512_reduce_or_epi64(surv) as u64;
        for (p, c) in plane[chunks * 8..n]
            .iter_mut()
            .zip(&mut carry[chunks * 8..n])
        {
            let sum = *p ^ *c;
            *c &= *p;
            *p = sum;
            surviving |= *c;
        }
        surviving
    }

    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    pub fn dot_i32_avx512(a: &[i32], b: &[i32]) -> i64 {
        let n = a.len().min(b.len());
        let chunks = n / 16;
        let mut acc_even = _mm512_setzero_si512();
        let mut acc_odd = _mm512_setzero_si512();
        for i in 0..chunks {
            // SAFETY: `i * 16 + 15 < chunks * 16 <= n`, so both 64-byte
            // unaligned loads stay inside the slices.
            let (va, vb) = unsafe {
                (
                    _mm512_loadu_si512(a.as_ptr().add(i * 16).cast()),
                    _mm512_loadu_si512(b.as_ptr().add(i * 16).cast()),
                )
            };
            // Same even/odd `vpmuldq` split as the AVX2 variant: exact
            // sign-extended 32×32→64 products in every lane.
            let even = _mm512_mul_epi32(va, vb);
            let odd = _mm512_mul_epi32(_mm512_srli_epi64::<32>(va), _mm512_srli_epi64::<32>(vb));
            acc_even = _mm512_add_epi64(acc_even, even);
            acc_odd = _mm512_add_epi64(acc_odd, odd);
        }
        let mut total = _mm512_reduce_add_epi64(_mm512_add_epi64(acc_even, acc_odd));
        for (&x, &y) in a[chunks * 16..n].iter().zip(&b[chunks * 16..n]) {
            total += i64::from(x) * i64::from(y);
        }
        total
    }
}

#[cfg(target_arch = "x86_64")]
fn hamming_avx2(a: &[u64], b: &[u64]) -> u64 {
    // SAFETY: this wrapper is only installed into the `AVX2` set, which
    // is only handed out after `is_x86_feature_detected!("avx2")`.
    unsafe { x86::hamming_avx2(a, b) }
}

#[cfg(target_arch = "x86_64")]
fn masked_popcount_avx2(q: &[u64], s: &[u64], m: &[u64]) -> i64 {
    // SAFETY: only reachable through the detection-guarded `AVX2` set.
    unsafe { x86::masked_popcount_avx2(q, s, m) }
}

#[cfg(target_arch = "x86_64")]
fn ripple_step_avx2(plane: &mut [u64], carry: &mut [u64]) -> u64 {
    // SAFETY: only reachable through the detection-guarded `AVX2` set.
    unsafe { x86::ripple_step_avx2(plane, carry) }
}

#[cfg(target_arch = "x86_64")]
fn dot_i32_avx2(a: &[i32], b: &[i32]) -> i64 {
    // SAFETY: only reachable through the detection-guarded `AVX2` set.
    unsafe { x86::dot_i32_avx2(a, b) }
}

#[cfg(target_arch = "x86_64")]
fn hamming_avx512(a: &[u64], b: &[u64]) -> u64 {
    // SAFETY: this wrapper is only installed into the `AVX512` set,
    // which is only handed out after `is_x86_feature_detected!` confirms
    // both `avx512f` and `avx512vpopcntdq`.
    unsafe { x86::hamming_avx512(a, b) }
}

#[cfg(target_arch = "x86_64")]
fn masked_popcount_avx512(q: &[u64], s: &[u64], m: &[u64]) -> i64 {
    // SAFETY: only reachable through the detection-guarded `AVX512` set.
    unsafe { x86::masked_popcount_avx512(q, s, m) }
}

#[cfg(target_arch = "x86_64")]
fn ripple_step_avx512(plane: &mut [u64], carry: &mut [u64]) -> u64 {
    // SAFETY: only reachable through the detection-guarded `AVX512` set.
    unsafe { x86::ripple_step_avx512(plane, carry) }
}

#[cfg(target_arch = "x86_64")]
fn dot_i32_avx512(a: &[i32], b: &[i32]) -> i64 {
    // SAFETY: only reachable through the detection-guarded `AVX512` set.
    unsafe { x86::dot_i32_avx512(a, b) }
}

// ---------------------------------------------------------------------
// aarch64: NEON.
// ---------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod arm {
    use core::arch::aarch64::{
        int64x2_t, uint64x2_t, vaddq_s64, vaddvq_s64, vaddvq_u8, vandq_u64, vcntq_u8, veorq_u64,
        vget_low_s32, vgetq_lane_u64, vld1q_s32, vld1q_u64, vmull_high_s32, vmull_s32, vorrq_u64,
        vreinterpretq_u8_u64, vst1q_u64,
    };

    #[target_feature(enable = "neon")]
    pub fn hamming_neon(a: &[u64], b: &[u64]) -> u64 {
        let n = a.len().min(b.len());
        let chunks = n / 2;
        let mut total: u64 = 0;
        for i in 0..chunks {
            // SAFETY: `i * 2 + 1 < chunks * 2 <= n`, so both 16-byte
            // loads stay inside the slices.
            let x: uint64x2_t = unsafe {
                veorq_u64(
                    vld1q_u64(a.as_ptr().add(i * 2)),
                    vld1q_u64(b.as_ptr().add(i * 2)),
                )
            };
            // 16 per-byte counts of at most 8 each: the horizontal sum
            // (≤ 128) fits the u8 returned by `vaddvq_u8`.
            total += u64::from(vaddvq_u8(vcntq_u8(vreinterpretq_u8_u64(x))));
        }
        for (x, y) in a[chunks * 2..n].iter().zip(&b[chunks * 2..n]) {
            total += u64::from((x ^ y).count_ones());
        }
        total
    }

    #[target_feature(enable = "neon")]
    pub fn masked_popcount_neon(q: &[u64], s: &[u64], m: &[u64]) -> i64 {
        let n = q.len().min(s.len()).min(m.len());
        let chunks = n / 2;
        let mut total: i64 = 0;
        for i in 0..chunks {
            // SAFETY: `i * 2 + 1 < chunks * 2 <= n`, so all three
            // 16-byte loads stay inside the slices.
            let x: uint64x2_t = unsafe {
                vandq_u64(
                    veorq_u64(
                        vld1q_u64(q.as_ptr().add(i * 2)),
                        vld1q_u64(s.as_ptr().add(i * 2)),
                    ),
                    vld1q_u64(m.as_ptr().add(i * 2)),
                )
            };
            total += i64::from(vaddvq_u8(vcntq_u8(vreinterpretq_u8_u64(x))));
        }
        for ((&q, &s), &m) in q[chunks * 2..n]
            .iter()
            .zip(&s[chunks * 2..n])
            .zip(&m[chunks * 2..n])
        {
            total += i64::from(((q ^ s) & m).count_ones());
        }
        total
    }

    #[target_feature(enable = "neon")]
    pub fn ripple_step_neon(plane: &mut [u64], carry: &mut [u64]) -> u64 {
        let n = plane.len().min(carry.len());
        let chunks = n / 2;
        let mut surviving: u64 = 0;
        for i in 0..chunks {
            let pp = plane[i * 2..].as_mut_ptr();
            let cp = carry[i * 2..].as_mut_ptr();
            // SAFETY: `i * 2 + 1 < chunks * 2 <= n`, so the 16-byte
            // loads and stores stay inside the slices; `plane` and
            // `carry` are distinct `&mut` slices, so no aliasing.
            unsafe {
                let vp = vld1q_u64(pp);
                let vc = vld1q_u64(cp);
                let sum = veorq_u64(vp, vc);
                let new_carry = vandq_u64(vp, vc);
                vst1q_u64(pp, sum);
                vst1q_u64(cp, new_carry);
                let surv = vorrq_u64(new_carry, new_carry);
                surviving |= vgetq_lane_u64::<0>(surv) | vgetq_lane_u64::<1>(surv);
            }
        }
        for (p, c) in plane[chunks * 2..n]
            .iter_mut()
            .zip(&mut carry[chunks * 2..n])
        {
            let sum = *p ^ *c;
            *c &= *p;
            *p = sum;
            surviving |= *c;
        }
        surviving
    }

    #[target_feature(enable = "neon")]
    pub fn dot_i32_neon(a: &[i32], b: &[i32]) -> i64 {
        let n = a.len().min(b.len());
        let chunks = n / 4;
        let mut acc: int64x2_t = unsafe { core::mem::zeroed() };
        for i in 0..chunks {
            // SAFETY: `i * 4 + 3 < chunks * 4 <= n`, so both 16-byte
            // loads stay inside the slices.
            unsafe {
                let va = vld1q_s32(a.as_ptr().add(i * 4));
                let vb = vld1q_s32(b.as_ptr().add(i * 4));
                // Widening 32×32→64 multiplies: exact, no rounding.
                let lo = vmull_s32(vget_low_s32(va), vget_low_s32(vb));
                let hi = vmull_high_s32(va, vb);
                acc = vaddq_s64(acc, vaddq_s64(lo, hi));
            }
        }
        let mut total = vaddvq_s64(acc);
        for (&x, &y) in a[chunks * 4..n].iter().zip(&b[chunks * 4..n]) {
            total += i64::from(x) * i64::from(y);
        }
        total
    }
}

#[cfg(target_arch = "aarch64")]
fn hamming_neon(a: &[u64], b: &[u64]) -> u64 {
    // SAFETY: this wrapper is only installed into the `NEON` set, which
    // is only handed out after `is_aarch64_feature_detected!("neon")`.
    unsafe { arm::hamming_neon(a, b) }
}

#[cfg(target_arch = "aarch64")]
fn masked_popcount_neon(q: &[u64], s: &[u64], m: &[u64]) -> i64 {
    // SAFETY: only reachable through the detection-guarded `NEON` set.
    unsafe { arm::masked_popcount_neon(q, s, m) }
}

#[cfg(target_arch = "aarch64")]
fn ripple_step_neon(plane: &mut [u64], carry: &mut [u64]) -> u64 {
    // SAFETY: only reachable through the detection-guarded `NEON` set.
    unsafe { arm::ripple_step_neon(plane, carry) }
}

#[cfg(target_arch = "aarch64")]
fn dot_i32_neon(a: &[i32], b: &[i32]) -> i64 {
    // SAFETY: only reachable through the detection-guarded `NEON` set.
    unsafe { arm::dot_i32_neon(a, b) }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic 64-bit generator (SplitMix64) so the differential
    /// sweeps below cover irregular bit patterns without a rand dep.
    struct Mix(u64);

    impl Mix {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    fn words(rng: &mut Mix, n: usize) -> Vec<u64> {
        (0..n).map(|_| rng.next()).collect()
    }

    fn ints(rng: &mut Mix, n: usize) -> Vec<i32> {
        (0..n).map(|_| (rng.next() as i32) % 10_000).collect()
    }

    /// Lengths chosen to hit empty inputs, pure tails, full vector
    /// blocks, and blocks-plus-tail for every lane width in play.
    const LENGTHS: [usize; 8] = [0, 1, 3, 7, 16, 31, 64, 129];

    #[test]
    fn portable_is_always_available_and_active_resolves() {
        assert!(available().contains(&Isa::Portable));
        assert!(for_isa(Isa::Portable).is_some());
        // `active` must be one of the available sets.
        assert!(available().contains(&active().isa()));
    }

    #[test]
    fn every_available_isa_matches_portable_on_hamming() {
        let mut rng = Mix(1);
        for &n in &LENGTHS {
            let a = words(&mut rng, n);
            let b = words(&mut rng, n);
            let want = PORTABLE.hamming(&a, &b);
            for isa in available() {
                let set = for_isa(isa).expect("available implies constructible");
                assert_eq!(set.hamming(&a, &b), want, "{isa} n={n}");
            }
        }
    }

    #[test]
    fn every_available_isa_matches_portable_on_masked_popcount() {
        let mut rng = Mix(2);
        for &n in &LENGTHS {
            let q = words(&mut rng, n);
            let s = words(&mut rng, n);
            let m = words(&mut rng, n);
            let want = PORTABLE.masked_popcount(&q, &s, &m);
            for isa in available() {
                let set = for_isa(isa).expect("available implies constructible");
                assert_eq!(set.masked_popcount(&q, &s, &m), want, "{isa} n={n}");
            }
        }
    }

    #[test]
    fn every_available_isa_matches_portable_on_ripple_step() {
        let mut rng = Mix(3);
        for &n in &LENGTHS {
            let plane = words(&mut rng, n);
            let carry = words(&mut rng, n);
            let mut want_plane = plane.clone();
            let mut want_carry = carry.clone();
            let want_surv = PORTABLE.ripple_step(&mut want_plane, &mut want_carry);
            for isa in available() {
                let set = for_isa(isa).expect("available implies constructible");
                let mut got_plane = plane.clone();
                let mut got_carry = carry.clone();
                let got_surv = set.ripple_step(&mut got_plane, &mut got_carry);
                assert_eq!(got_plane, want_plane, "{isa} n={n} plane");
                assert_eq!(got_carry, want_carry, "{isa} n={n} carry");
                assert_eq!(got_surv == 0, want_surv == 0, "{isa} n={n} surviving");
            }
        }
    }

    #[test]
    fn every_available_isa_matches_portable_on_dot_i32() {
        let mut rng = Mix(4);
        for &n in &LENGTHS {
            let a = ints(&mut rng, n);
            let b = ints(&mut rng, n);
            let want = PORTABLE.dot_i32(&a, &b);
            for isa in available() {
                let set = for_isa(isa).expect("available implies constructible");
                assert_eq!(set.dot_i32(&a, &b), want, "{isa} n={n}");
            }
        }
    }

    #[test]
    fn dot_i32_handles_extreme_magnitudes_exactly() {
        // Sign-extension bugs in the even/odd lane split show up at the
        // extremes, not in small random values.
        let a = vec![
            i32::MAX,
            i32::MIN + 1,
            -1,
            1,
            i32::MAX,
            i32::MIN + 1,
            -7,
            1 << 30,
        ];
        let b = vec![i32::MAX, i32::MAX, -1, i32::MIN + 1, -2, 3, 7, -(1 << 30)];
        let want = PORTABLE.dot_i32(&a, &b);
        for isa in available() {
            let set = for_isa(isa).expect("available implies constructible");
            assert_eq!(set.dot_i32(&a, &b), want, "{isa}");
        }
    }

    #[test]
    fn isa_names_are_stable() {
        assert_eq!(Isa::Portable.name(), "portable");
        assert_eq!(Isa::Avx2.name(), "avx2");
        assert_eq!(Isa::Avx512Vpopcnt.name(), "avx512-vpopcntdq");
        assert_eq!(Isa::Neon.name(), "neon");
    }
}
