//! Model quantization and bit-accurate fault injection.
//!
//! The accelerator stores class elements in 16-bit words; an input
//! parameter `bw` selects the *effective* bit-width and a mask unit zeroes
//! the unused bits (§4.3.4, Fig. 4 block 5). Narrow models both cut the
//! dot-product switching power and tolerate far more bit-flips, which is
//! what enables voltage over-scaling of the class memories (Fig. 6).

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::fault::flip_class_bits;
use crate::io::{PackedLayout, ReadModelError, PACKED_ALIGN};
use crate::kernels::{self, KernelSet};
use crate::{mapped, BinaryHv, HdcError, HdcModel, IntHv, PackedInts};

/// A quantized HDC model: class elements stored as `bit_width`-bit signed
/// integers (in 16-bit words, as in the accelerator).
///
/// ```
/// use generic_hdc::{BinaryHv, HdcModel, IntHv, QuantizedModel};
///
/// # fn main() -> Result<(), generic_hdc::HdcError> {
/// let a = IntHv::from(BinaryHv::random_seeded(512, 1)?);
/// let b = IntHv::from(BinaryHv::random_seeded(512, 2)?);
/// let model = HdcModel::fit(&[a.clone(), b], &[0, 1], 2)?;
///
/// // A 1-bit (sign-only) model still separates orthogonal classes...
/// let mut narrow = QuantizedModel::from_model(&model, 1)?;
/// assert_eq!(narrow.predict(&a), 0);
/// // ...even after injecting 2% bit errors (voltage over-scaling).
/// narrow.inject_bit_flips(0.02, 7)?;
/// assert_eq!(narrow.predict(&a), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedModel {
    dim: usize,
    bit_width: u8,
    classes: Vec<Vec<i16>>,
}

impl QuantizedModel {
    /// Quantizes a trained model to `bit_width` bits per class element
    /// (symmetric, per-class scaling; `bit_width = 1` keeps only the sign).
    ///
    /// # Errors
    ///
    /// Returns an error if `bit_width` is not in `1..=16`.
    pub fn from_model(model: &HdcModel, bit_width: u8) -> Result<Self, HdcError> {
        if !(1..=16).contains(&bit_width) {
            return Err(HdcError::invalid("bit_width", "must be in 1..=16"));
        }
        let classes = model
            .iter()
            .map(|class| quantize_class(class.values(), bit_width))
            .collect();
        Ok(QuantizedModel {
            dim: model.dim(),
            bit_width,
            classes,
        })
    }

    /// Reassembles a quantized model from raw parts (e.g. deserialized
    /// class rows).
    ///
    /// # Errors
    ///
    /// Returns an error if `bit_width` is out of range, `classes` is
    /// empty, rows are ragged, or any element exceeds the `bit_width`
    /// range.
    pub fn from_parts(dim: usize, bit_width: u8, classes: Vec<Vec<i16>>) -> Result<Self, HdcError> {
        if !(1..=16).contains(&bit_width) {
            return Err(HdcError::invalid("bit_width", "must be in 1..=16"));
        }
        if classes.is_empty() {
            return Err(HdcError::EmptyInput);
        }
        if let Some(bad) = classes.iter().find(|c| c.len() != dim) {
            return Err(HdcError::DimensionMismatch {
                expected: dim,
                actual: bad.len(),
            });
        }
        if bit_width < 16 {
            let lo = -(1i16 << (bit_width - 1));
            let hi = (1i16 << (bit_width - 1)) - 1;
            let (lo, hi) = if bit_width == 1 { (-1, 1) } else { (lo, hi) };
            for row in &classes {
                if let Some(&bad) = row.iter().find(|&&v| v < lo || v > hi) {
                    return Err(HdcError::invalid(
                        "classes",
                        format!("element {bad} exceeds the {bit_width}-bit range"),
                    ));
                }
            }
        }
        Ok(QuantizedModel {
            dim,
            bit_width,
            classes,
        })
    }

    /// Hypervector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Effective bit-width of the stored class elements.
    pub fn bit_width(&self) -> u8 {
        self.bit_width
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// The quantized elements of class `label`.
    ///
    /// # Panics
    ///
    /// Panics if `label >= self.n_classes()`.
    pub fn class(&self, label: usize) -> &[i16] {
        &self.classes[label]
    }

    /// Mutable access to the raw class rows, for in-crate fault injection.
    pub(crate) fn classes_mut(&mut self) -> &mut [Vec<i16>] {
        &mut self.classes
    }

    /// Total number of *effective* class-memory bits
    /// (`n_classes * dim * bit_width`) — the bits exposed to voltage
    /// over-scaling errors.
    pub fn storage_bits(&self) -> usize {
        self.classes.len() * self.dim * self.bit_width as usize
    }

    /// Cosine-ranked similarity scores of a query against all classes.
    ///
    /// # Panics
    ///
    /// Panics if `query.dim() != self.dim()`.
    pub fn scores(&self, query: &IntHv) -> Vec<f64> {
        assert_eq!(query.dim(), self.dim, "query dimension mismatch");
        self.classes
            .iter()
            .map(|class| {
                let mut dot: i64 = 0;
                let mut norm2: f64 = 0.0;
                for (&q, &c) in query.values().iter().zip(class) {
                    dot += i64::from(q) * i64::from(c);
                    norm2 += f64::from(c) * f64::from(c);
                }
                if norm2 == 0.0 {
                    0.0
                } else {
                    dot as f64 / norm2.sqrt()
                }
            })
            .collect()
    }

    /// True cosine similarities (`H·C / (‖H‖‖C‖)`) of a query against all
    /// classes over the first `dims` dimensions (on-demand dimension
    /// reduction, §4.3.3). Unlike [`scores`](QuantizedModel::scores) the
    /// query norm is included, so margins between the top scores are
    /// comparable across queries — what confidence-based escalation needs.
    ///
    /// # Panics
    ///
    /// Panics if `query.dim() != self.dim()` or `dims` is zero or exceeds
    /// the model dimensionality.
    pub fn cosine_scores(&self, query: &IntHv, dims: usize) -> Vec<f64> {
        let mut out = Vec::new();
        self.cosine_scores_into(query, dims, &mut out);
        out
    }

    /// [`cosine_scores`](QuantizedModel::cosine_scores) written into a
    /// reusable buffer — the allocation-free inner loop the resilient
    /// pipeline issues once per (possibly redundant) class-memory read.
    ///
    /// # Panics
    ///
    /// Panics if `query.dim() != self.dim()` or `dims` is zero or exceeds
    /// the model dimensionality.
    pub fn cosine_scores_into(&self, query: &IntHv, dims: usize, out: &mut Vec<f64>) {
        assert_eq!(query.dim(), self.dim, "query dimension mismatch");
        assert!(
            dims > 0 && dims <= self.dim,
            "dims {} out of range (1..={})",
            dims,
            self.dim
        );
        let q = &query.values()[..dims];
        let q_norm2: f64 = q.iter().map(|&v| f64::from(v) * f64::from(v)).sum();
        out.clear();
        out.reserve(self.classes.len());
        out.extend(self.classes.iter().map(|class| {
            let mut dot: i64 = 0;
            let mut c_norm2: f64 = 0.0;
            for (&qv, &cv) in q.iter().zip(&class[..dims]) {
                dot += i64::from(qv) * i64::from(cv);
                c_norm2 += f64::from(cv) * f64::from(cv);
            }
            let denom2 = q_norm2 * c_norm2;
            if denom2 == 0.0 {
                0.0
            } else {
                dot as f64 / denom2.sqrt()
            }
        }));
    }

    /// Decomposes every class row into sign/magnitude bit planes for
    /// word-parallel binary-query scoring
    /// ([`PackedQuantizedModel::scores`]).
    ///
    /// # Errors
    ///
    /// Returns an error if the model is degenerate (zero-dimensional
    /// rows from hand-built parts).
    pub fn pack(&self) -> Result<PackedQuantizedModel, HdcError> {
        let packed = self
            .classes
            .iter()
            .map(|c| PackedInts::from_i16(c))
            .collect::<Result<Vec<_>, _>>()?;
        // Same left-to-right fold as `scores`, so rankings agree exactly.
        let norms = self
            .classes
            .iter()
            .map(|class| {
                class
                    .iter()
                    .map(|&v| f64::from(v) * f64::from(v))
                    .sum::<f64>()
                    .sqrt()
            })
            .collect();
        Ok(PackedQuantizedModel {
            dim: self.dim,
            bit_width: self.bit_width,
            classes: packed,
            norms,
        })
    }

    /// Predicts the class of an encoded query.
    ///
    /// # Panics
    ///
    /// Panics if `query.dim() != self.dim()`.
    pub fn predict(&self, query: &IntHv) -> usize {
        self.scores(query)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("scores are finite"))
            .map(|(i, _)| i)
            .expect("model has at least one class")
    }

    /// Fraction of `encoded` samples predicted as their `labels`.
    ///
    /// # Panics
    ///
    /// Panics on mismatched lengths or dimensions.
    pub fn accuracy(&self, encoded: &[IntHv], labels: &[usize]) -> f64 {
        assert_eq!(
            encoded.len(),
            labels.len(),
            "samples/labels length mismatch"
        );
        if encoded.is_empty() {
            return 0.0;
        }
        let correct = encoded
            .iter()
            .zip(labels)
            .filter(|&(hv, &label)| self.predict(hv) == label)
            .count();
        correct as f64 / encoded.len() as f64
    }

    /// Flips each *effective* stored bit independently with probability
    /// `ber`, emulating SRAM read upsets under voltage over-scaling.
    /// Returns the number of bits flipped.
    ///
    /// Elements are interpreted as `bit_width`-bit two's-complement values;
    /// a flip of the top effective bit changes the sign, exactly as it
    /// would in the masked 16-bit hardware word.
    ///
    /// This is the transient special case of the general fault engine:
    /// identical to [`FaultModel::transient`](crate::FaultModel::transient)
    /// followed by a read-0
    /// [`corrupt_model`](crate::FaultModel::corrupt_model).
    ///
    /// # Errors
    ///
    /// Returns an error if `ber` is not a probability in `[0, 1]`.
    pub fn inject_bit_flips(&mut self, ber: f64, seed: u64) -> Result<usize, HdcError> {
        if !(0.0..=1.0).contains(&ber) || ber.is_nan() {
            return Err(HdcError::invalid("ber", "must be a probability in [0, 1]"));
        }
        if ber == 0.0 {
            return Ok(0);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let bw = u32::from(self.bit_width);
        Ok(flip_class_bits(&mut self.classes, bw, ber, &mut rng))
    }
}

/// A [`QuantizedModel`] re-laid-out as sign/magnitude bit planes for
/// word-parallel scoring of *binarized* queries.
///
/// Scoring a packed binary query against a packed class costs one
/// XOR + AND + popcount pass per magnitude plane (≤ `bit_width − 1`
/// planes) instead of `dim` scalar multiply-adds — the software analogue
/// of the accelerator's masked bit-serial dot product (§4.3.4). Scores
/// are bit-identical to [`QuantizedModel::scores`] on the same query
/// (`IntHv::from(binary)`): the dot product is exact integer arithmetic
/// and the class norms are folded in the same left-to-right order.
///
/// ```
/// use generic_hdc::{BinaryHv, HdcModel, IntHv, QuantizedModel};
///
/// # fn main() -> Result<(), generic_hdc::HdcError> {
/// let a = BinaryHv::random_seeded(512, 1)?;
/// let b = BinaryHv::random_seeded(512, 2)?;
/// let model = HdcModel::fit(
///     &[IntHv::from(a.clone()), IntHv::from(b)],
///     &[0, 1],
///     2,
/// )?;
/// let quantized = QuantizedModel::from_model(&model, 4)?;
/// let packed = quantized.pack()?;
/// assert_eq!(packed.predict(&a)?, quantized.predict(&IntHv::from(a)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PackedQuantizedModel {
    dim: usize,
    bit_width: u8,
    classes: Vec<PackedInts>,
    norms: Vec<f64>,
}

impl PackedQuantizedModel {
    /// Hypervector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Effective bit-width of the source model.
    pub fn bit_width(&self) -> u8 {
        self.bit_width
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// Similarity scores of a packed binary query against all classes
    /// (`H·C / ‖C‖`, the same ranking as [`QuantizedModel::scores`]).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] on a wrong-width query.
    pub fn scores(&self, query: &BinaryHv) -> Result<Vec<f64>, HdcError> {
        let mut out = Vec::new();
        self.scores_into(query, &mut out)?;
        Ok(out)
    }

    /// [`scores`](PackedQuantizedModel::scores) written into a reusable
    /// buffer.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] on a wrong-width query.
    pub fn scores_into(&self, query: &BinaryHv, out: &mut Vec<f64>) -> Result<(), HdcError> {
        if query.dim() != self.dim {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim,
                actual: query.dim(),
            });
        }
        out.clear();
        out.reserve(self.classes.len());
        for (class, &norm) in self.classes.iter().zip(&self.norms) {
            let dot = query.dot_packed(class)?;
            out.push(if norm == 0.0 { 0.0 } else { dot as f64 / norm });
        }
        Ok(())
    }

    /// Predicts the class of a packed binary query (last class wins score
    /// ties, matching [`QuantizedModel::predict`]).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] on a wrong-width query.
    pub fn predict(&self, query: &BinaryHv) -> Result<usize, HdcError> {
        let scores = self.scores(query)?;
        Ok(scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("scores are finite"))
            .map(|(i, _)| i)
            .expect("model has at least one class"))
    }
}

/// A borrowed, zero-copy view of a GHDC v3 packed stream: the mapped
/// bytes of a model file reinterpreted as a servable model.
///
/// The view carries no per-class `Vec`s — every plane is a sub-slice of
/// the mapped region, scored in place through the same dispatched
/// [`KernelSet`] the heap path uses, so scores are **bit-identical** to
/// [`PackedQuantizedModel::scores`] on the same query (identical dot
/// arithmetic: v3 pads every class to a uniform plane count with
/// explicit all-zero planes, whose masked popcount and hoisted popcount
/// are both zero).
///
/// Construction performs the full typed-error gauntlet *before* any
/// reinterpretation: magic/version/kind, header plausibility, exact
/// length, base alignment, then the CRC32 footer. No view exists over
/// bytes that failed any check.
///
/// ```
/// use generic_hdc::io::write_packed;
/// use generic_hdc::{BinaryHv, HdcModel, IntHv, PackedModelView, QuantizedModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = BinaryHv::random_seeded(512, 1)?;
/// let b = BinaryHv::random_seeded(512, 2)?;
/// let model = HdcModel::fit(&[IntHv::from(a.clone()), IntHv::from(b)], &[0, 1], 2)?;
/// let quantized = QuantizedModel::from_model(&model, 4)?;
///
/// let mut bytes = Vec::new();
/// write_packed(&quantized, &mut bytes)?;
/// let mapping = generic_hdc::mapped::Mapping::from_bytes(&bytes)?;
/// let view = PackedModelView::new(&mapping)?;
/// assert_eq!(view.predict(&a)?, quantized.pack()?.predict(&a)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PackedModelView<'a> {
    bytes: &'a [u8],
    /// One aligned `u64` reinterpretation of the whole planes region;
    /// individual planes are sub-slices at word offsets.
    words: &'a [u64],
    /// Aligned reinterpretation of the support-mask words (empty for a
    /// full-support stream).
    support: &'a [u64],
    layout: PackedLayout,
}

impl<'a> PackedModelView<'a> {
    /// Validates `bytes` (structure, length, alignment, CRC) and builds
    /// the view. This is the cold-load entry point; reuse the parsed
    /// [`PackedLayout`] via [`PackedModelView::with_layout`] to rebuild
    /// views over already-validated bytes without re-hashing.
    ///
    /// # Errors
    ///
    /// Every [`ReadModelError`] the validation gauntlet produces; in
    /// particular [`ReadModelError::Misaligned`] when the buffer base is
    /// not [`PACKED_ALIGN`]-aligned (map the file, or stage it through
    /// [`mapped::Mapping::from_bytes`]).
    pub fn new(bytes: &'a [u8]) -> Result<Self, ReadModelError> {
        let layout = PackedLayout::validate(bytes)?;
        Self::over_validated(bytes, layout)
    }

    /// Rebuilds a view over bytes already validated by
    /// [`PackedLayout::validate`], re-checking only the cheap structural
    /// invariants (length and alignment) — not the checksum. The
    /// registry uses this on its per-request hot path.
    ///
    /// # Errors
    ///
    /// [`ReadModelError::Truncated`] or [`ReadModelError::Misaligned`]
    /// if `bytes` is not the buffer `layout` was validated against.
    pub fn with_layout(bytes: &'a [u8], layout: PackedLayout) -> Result<Self, ReadModelError> {
        if bytes.len() != layout.total_len() {
            return Err(ReadModelError::Truncated {
                expected: layout.total_len() as u64,
                actual: bytes.len() as u64,
            });
        }
        Self::over_validated(bytes, layout)
    }

    fn over_validated(bytes: &'a [u8], layout: PackedLayout) -> Result<Self, ReadModelError> {
        let offset = bytes.as_ptr() as usize % PACKED_ALIGN;
        if offset != 0 {
            return Err(ReadModelError::Misaligned {
                required: PACKED_ALIGN,
                offset,
            });
        }
        // A pruned view must never exist over a mask whose population
        // disagrees with the stored model — re-checked here so the
        // `with_layout` fast path keeps the same guarantee as the full
        // validation gauntlet.
        layout.check_support(bytes)?;
        let planes_region = &bytes[layout.planes_offset()..layout.support_offset()];
        let words = mapped::as_u64_slice(planes_region).ok_or(ReadModelError::Misaligned {
            required: PACKED_ALIGN,
            offset: planes_region.as_ptr() as usize % PACKED_ALIGN,
        })?;
        let mask_region =
            &bytes[layout.support_offset()..layout.support_offset() + layout.support_words() * 8];
        let support = mapped::as_u64_slice(mask_region).ok_or(ReadModelError::Misaligned {
            required: PACKED_ALIGN,
            offset: mask_region.as_ptr() as usize % PACKED_ALIGN,
        })?;
        Ok(PackedModelView {
            bytes,
            words,
            support,
            layout,
        })
    }

    /// Hypervector dimensionality.
    pub fn dim(&self) -> usize {
        self.layout.dim()
    }

    /// Effective bit-width of the source model.
    pub fn bit_width(&self) -> u8 {
        self.layout.bit_width()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.layout.n_classes()
    }

    /// Whether the stream stores a pruned model with a support mask.
    pub fn is_pruned(&self) -> bool {
        self.layout.is_pruned()
    }

    /// Parent-space dimensionality queries may arrive at
    /// ([`PackedModelView::dim`] for a full-support stream).
    pub fn parent_dim(&self) -> usize {
        self.layout.parent_dim()
    }

    /// The support-mask words of a pruned stream (`None` when
    /// full-support): bit `i` set ⇔ parent dimension `i` survives
    /// pruning.
    pub fn support(&self) -> Option<&'a [u64]> {
        if self.layout.is_pruned() {
            Some(self.support)
        } else {
            None
        }
    }

    /// The layout this view was constructed over.
    pub fn layout(&self) -> PackedLayout {
        self.layout
    }

    /// Class `c`'s plane `p` (0 = signs, `1 + k` = magnitude plane `k`)
    /// as an aligned word slice of the mapped region.
    fn plane(&self, c: usize, p: usize) -> &'a [u64] {
        let stride_words = self.layout.plane_stride() / 8;
        let base = (c * (1 + self.layout.n_planes()) + p) * stride_words;
        &self.words[base..base + self.layout.n_words()]
    }

    /// Similarity scores of a packed binary query against all classes —
    /// same contract (and bits) as [`PackedQuantizedModel::scores`].
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] on a wrong-width query.
    pub fn scores(&self, query: &BinaryHv) -> Result<Vec<f64>, HdcError> {
        let mut out = Vec::new();
        self.scores_into(query, &mut out)?;
        Ok(out)
    }

    /// [`scores`](PackedModelView::scores) written into a reusable
    /// buffer; allocation-free once `out` has capacity.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] on a wrong-width query.
    pub fn scores_into(&self, query: &BinaryHv, out: &mut Vec<f64>) -> Result<(), HdcError> {
        self.scores_into_with(query, kernels::active(), out)
    }

    /// [`scores_into`](PackedModelView::scores_into) through an explicit
    /// kernel set — the hook the differential harness uses to pin every
    /// dispatched ISA against the heap oracle bit-for-bit.
    ///
    /// On a pruned view, queries may arrive at either dimensionality:
    /// support-sized queries score directly, parent-sized queries are
    /// first compacted through the support mask (a bit gather that keeps
    /// padding bits zero), then scored through the same kernel fold —
    /// bit-identical to compacting the query by hand and scoring the
    /// support-sized model.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] on a wrong-width query.
    pub fn scores_into_with(
        &self,
        query: &BinaryHv,
        kernels: &KernelSet,
        out: &mut Vec<f64>,
    ) -> Result<(), HdcError> {
        let compacted: Vec<u64>;
        let q: &[u64] = if query.dim() == self.layout.dim() {
            query.words()
        } else if self.layout.is_pruned() && query.dim() == self.layout.parent_dim() {
            let mut gathered = vec![0u64; self.layout.dim().div_ceil(64)];
            compact_query_words(query.words(), self.support, &mut gathered);
            compacted = gathered;
            &compacted
        } else {
            return Err(HdcError::DimensionMismatch {
                expected: self.layout.parent_dim(),
                actual: query.dim(),
            });
        };
        out.clear();
        out.reserve(self.layout.n_classes());
        for c in 0..self.layout.n_classes() {
            let signs = self.plane(c, 0);
            // The same per-plane fold as `BinaryHv::dot_packed_with`,
            // over mapped slices instead of heap `Vec`s.
            let mut dot: i64 = 0;
            for k in 0..self.layout.n_planes() {
                let disagree = kernels.masked_popcount(q, signs, self.plane(c, 1 + k));
                dot += (self.layout.plane_pop(self.bytes, c, k) - 2 * disagree) << k;
            }
            let norm = self.layout.norm(self.bytes, c);
            out.push(if norm == 0.0 { 0.0 } else { dot as f64 / norm });
        }
        Ok(())
    }

    /// Predicts the class of a packed binary query (last class wins
    /// score ties, matching [`PackedQuantizedModel::predict`]).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] on a wrong-width query.
    pub fn predict(&self, query: &BinaryHv) -> Result<usize, HdcError> {
        let scores = self.scores(query)?;
        Ok(scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("scores are finite"))
            .map(|(i, _)| i)
            .expect("model has at least one class"))
    }

    /// Reconstructs the heap [`QuantizedModel`] this stream encodes —
    /// the scalar oracle mapped scoring is differentially replayed
    /// against.
    ///
    /// # Errors
    ///
    /// Returns [`ReadModelError::Corrupt`] if the planes encode values
    /// outside the element range.
    pub fn to_quantized(&self) -> Result<QuantizedModel, ReadModelError> {
        crate::io::read_packed(self.bytes)
    }
}

/// Gathers the support-masked bits of `src` (parent-space words) into a
/// densely packed prefix of `out` (support-space words): output bit `j`
/// is input bit `i` where `i` is the `j`-th set bit of `support`. `out`
/// must arrive zeroed and sized for the compacted dimensionality; bits
/// past the last support position are never written, so the packed-
/// padding invariant of [`BinaryHv`] is preserved and no kernel ever
/// reads a padding bit as signal.
pub(crate) fn compact_query_words(src: &[u64], support: &[u64], out: &mut [u64]) {
    let mut pos = 0usize;
    for (&s, &m) in src.iter().zip(support) {
        let mut m = m;
        while m != 0 {
            let b = m.trailing_zeros() as usize;
            if (s >> b) & 1 == 1 {
                out[pos / 64] |= 1 << (pos % 64);
            }
            pos += 1;
            m &= m - 1;
        }
    }
}

pub(crate) fn mask(bw: u32) -> u16 {
    if bw >= 16 {
        u16::MAX
    } else {
        (1u16 << bw) - 1
    }
}

pub(crate) fn sign_extend(bits: u16, bw: u32) -> i16 {
    if bw >= 16 {
        bits as i16
    } else if bits & (1 << (bw - 1)) != 0 {
        (bits | !mask(bw)) as i16
    } else {
        bits as i16
    }
}

/// Packs one stored class element into its `bw` effective memory bits.
///
/// For `bw >= 2` this is plain two's-complement truncation. 1-bit models
/// are sign-only (they store `+1` / `-1`, never `0`), so the single
/// memory bit is `1` for negative elements and `0` otherwise; naive
/// two's-complement truncation would pack `+1` as bit `1`, which
/// [`unpack_bits`] — and the hardware's sign-extending read port — would
/// then read back as `-1`, silently negating every positive element that
/// crossed the memory boundary. All in-crate bit-level fault injection
/// goes through this pair, so pack∘unpack is the identity on every
/// representable value at every width.
///
/// # Panics
///
/// Panics if `bw` is not in `1..=16`.
pub fn pack_bits(value: i16, bw: u32) -> u16 {
    assert!((1..=16).contains(&bw), "bit width {bw} out of range 1..=16");
    if bw == 1 {
        u16::from(value < 0)
    } else {
        (value as u16) & mask(bw)
    }
}

/// Unpacks `bw` effective memory bits into a stored class element — the
/// exact inverse of [`pack_bits`] on every representable value
/// (`{-1, +1}` at one bit, the two's-complement range otherwise).
///
/// At `bw == 1` the decode is sign-only: bit `1` reads as `-1`, bit `0`
/// as `+1`. A hand-built zero element (allowed by
/// [`QuantizedModel::from_parts`] but never produced by quantization) is
/// not representable in one bit and reads back as `+1` after a memory
/// round-trip.
///
/// # Panics
///
/// Panics if `bw` is not in `1..=16`.
pub fn unpack_bits(bits: u16, bw: u32) -> i16 {
    assert!((1..=16).contains(&bw), "bit width {bw} out of range 1..=16");
    if bw == 1 {
        if bits & 1 != 0 {
            -1
        } else {
            1
        }
    } else {
        sign_extend(bits, bw)
    }
}

fn quantize_class(values: &[i32], bit_width: u8) -> Vec<i16> {
    if bit_width == 1 {
        // Sign-only model: +1 / -1 (0 maps to +1).
        return values.iter().map(|&v| if v < 0 { -1 } else { 1 }).collect();
    }
    let n = values.len() as f64;
    if bit_width == 2 {
        // Ternary quantization: zero inside a dead-zone of 0.7 · mean|v|,
        // sign outside — the standard ternary-weight rule; a plain
        // round-to-nearest 2-bit grid would zero out concentrated
        // magnitude distributions entirely.
        let mean_abs = values.iter().map(|&v| f64::from(v).abs()).sum::<f64>() / n;
        let tau = 0.7 * mean_abs;
        return values
            .iter()
            .map(|&v| {
                if f64::from(v).abs() <= tau {
                    0
                } else if v < 0 {
                    -1
                } else {
                    1
                }
            })
            .collect();
    }
    // Clipped symmetric quantization: scale by ~2.5 standard deviations
    // rather than the maximum so heavy-tailed outliers do not waste the
    // narrow ranges (with max-abs scaling a 4-bit model would map almost
    // every element to zero).
    let var = values
        .iter()
        .map(|&v| f64::from(v) * f64::from(v))
        .sum::<f64>()
        / n;
    let clip = (2.5 * var.sqrt()).max(1.0);
    let q_max = (1i32 << (bit_width - 1)) - 1;
    values
        .iter()
        .map(|&v| {
            let scaled = (f64::from(v) / clip * f64::from(q_max)).round() as i32;
            scaled.clamp(-q_max, q_max) as i16
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BinaryHv;

    fn trained_model(dim: usize) -> (HdcModel, Vec<IntHv>, Vec<usize>) {
        let proto0 = BinaryHv::random_seeded(dim, 50).unwrap();
        let proto1 = BinaryHv::random_seeded(dim, 60).unwrap();
        let mut encoded = Vec::new();
        let mut labels = Vec::new();
        for i in 0..12 {
            for (label, proto) in [(0usize, &proto0), (1usize, &proto1)] {
                let mut hv = proto.clone();
                for k in 0..dim / 12 {
                    hv.flip_bit((k * 11 + i * 3) % dim);
                }
                encoded.push(IntHv::from(hv));
                labels.push(label);
            }
        }
        let model = HdcModel::fit(&encoded, &labels, 2).unwrap();
        (model, encoded, labels)
    }

    #[test]
    fn sixteen_bit_quantization_preserves_predictions() {
        let (model, encoded, labels) = trained_model(1024);
        let q = QuantizedModel::from_model(&model, 16).unwrap();
        for (hv, &label) in encoded.iter().zip(&labels) {
            assert_eq!(q.predict(hv), label, "model predicts {}", model.predict(hv));
        }
    }

    #[test]
    fn narrow_widths_remain_accurate_on_separable_data() {
        let (model, encoded, labels) = trained_model(2048);
        for bw in [8, 4, 2, 1] {
            let q = QuantizedModel::from_model(&model, bw).unwrap();
            let acc = q.accuracy(&encoded, &labels);
            assert!(acc >= 0.95, "bw={bw}: acc={acc}");
        }
    }

    #[test]
    fn quantized_range_respected() {
        let (model, _, _) = trained_model(512);
        for bw in [2u8, 4, 8] {
            let q = QuantizedModel::from_model(&model, bw).unwrap();
            let q_max = (1i16 << (bw - 1)) - 1;
            for c in 0..q.n_classes() {
                assert!(q.class(c).iter().all(|&v| (-q_max..=q_max).contains(&v)));
            }
        }
    }

    #[test]
    fn one_bit_model_is_sign() {
        let (model, _, _) = trained_model(256);
        let q = QuantizedModel::from_model(&model, 1).unwrap();
        for c in 0..2 {
            for (&qv, &mv) in q.class(c).iter().zip(model.class(c).values()) {
                assert_eq!(qv, if mv < 0 { -1 } else { 1 });
            }
        }
    }

    #[test]
    fn zero_ber_flips_nothing() {
        let (model, encoded, _) = trained_model(512);
        let mut q = QuantizedModel::from_model(&model, 4).unwrap();
        let before = q.clone();
        assert_eq!(q.inject_bit_flips(0.0, 1).unwrap(), 0);
        assert_eq!(q, before);
        let _ = q.predict(&encoded[0]);
    }

    #[test]
    fn flip_count_tracks_ber() {
        let (model, _, _) = trained_model(1024);
        let mut q = QuantizedModel::from_model(&model, 8).unwrap();
        let total_bits = q.storage_bits();
        let flipped = q.inject_bit_flips(0.05, 7).unwrap();
        let expected = total_bits as f64 * 0.05;
        assert!(
            (flipped as f64) > expected * 0.6 && (flipped as f64) < expected * 1.4,
            "flipped {flipped} of {total_bits} (expected ~{expected})"
        );
    }

    #[test]
    fn small_ber_degrades_gracefully() {
        let (model, encoded, labels) = trained_model(2048);
        let mut q = QuantizedModel::from_model(&model, 1).unwrap();
        q.inject_bit_flips(0.02, 3).unwrap();
        let acc = q.accuracy(&encoded, &labels);
        assert!(acc >= 0.9, "1-bit model at 2% BER should hold up: {acc}");
    }

    #[test]
    fn sign_extension_is_correct() {
        assert_eq!(sign_extend(0b1111, 4), -1);
        assert_eq!(sign_extend(0b1000, 4), -8);
        assert_eq!(sign_extend(0b0111, 4), 7);
        assert_eq!(sign_extend(0b1, 1), -1);
        assert_eq!(sign_extend(0b0, 1), 0);
        assert_eq!(sign_extend(0xFFFF, 16), -1);
    }

    #[test]
    fn pack_unpack_round_trips_every_representable_value() {
        for bw in 1..=16u32 {
            let representable: Vec<i16> = if bw == 1 {
                vec![-1, 1]
            } else {
                (0..1u32 << bw)
                    .map(|bits| sign_extend(bits as u16, bw))
                    .collect()
            };
            for v in representable {
                let bits = pack_bits(v, bw);
                assert_eq!(bits & !mask(bw), 0, "bw={bw}: packed bits exceed the mask");
                assert_eq!(unpack_bits(bits, bw), v, "bw={bw} v={v}");
            }
            // Every effective bit pattern decodes and re-encodes to itself,
            // so XOR fault masks act on a closed set of states.
            let patterns: u32 = if bw == 1 { 2 } else { 1u32 << bw };
            for bits in 0..patterns {
                let bits = bits as u16;
                assert_eq!(
                    pack_bits(unpack_bits(bits, bw), bw),
                    bits,
                    "bw={bw} bits={bits:#b}"
                );
            }
        }
    }

    #[test]
    fn one_bit_pack_boundary_keeps_positive_signs() {
        // The regression this pair exists for: +1 must survive a memory
        // round-trip (two's-complement truncation would read it back
        // as -1).
        assert_eq!(pack_bits(1, 1), 0);
        assert_eq!(pack_bits(-1, 1), 1);
        assert_eq!(unpack_bits(pack_bits(1, 1), 1), 1);
        assert_eq!(unpack_bits(pack_bits(-1, 1), 1), -1);
        // Hand-built zeros are not representable and normalize to +1.
        assert_eq!(unpack_bits(pack_bits(0, 1), 1), 1);
    }

    #[test]
    fn one_bit_round_trip_matches_unquantized_model_exhaustively() {
        use crate::FaultModel;
        // Every 8-dim sign pattern, quantized to one bit, must survive the
        // pack/unpack boundary with its signs intact and score queries
        // exactly like a scalar sign oracle over the unquantized model.
        for pattern in 0u32..256 {
            let row: Vec<i32> = (0..8)
                .map(|i| {
                    let magnitude = i + 1;
                    if pattern >> i & 1 == 1 {
                        -magnitude
                    } else {
                        magnitude
                    }
                })
                .collect();
            let classes = vec![
                IntHv::from_values(row.clone()).unwrap(),
                IntHv::from_values(row.iter().map(|v| -v).collect()).unwrap(),
            ];
            let model = HdcModel::from_class_vectors(classes).unwrap();
            let q = QuantizedModel::from_model(&model, 1).unwrap();

            // Elementwise: quantized class = sign of the unquantized class,
            // unchanged by a pack/unpack memory round-trip.
            for c in 0..2 {
                for (&qv, &mv) in q.class(c).iter().zip(model.class(c).values()) {
                    let expected = if mv < 0 { -1 } else { 1 };
                    assert_eq!(qv, expected, "pattern={pattern:#010b} class={c}");
                    assert_eq!(unpack_bits(pack_bits(qv, 1), 1), qv);
                }
            }

            // Scoring: the 1-bit model must agree exactly with the scalar
            // sign oracle (all class norms are sqrt(8), folded in the same
            // left-to-right order as `scores`).
            let query = IntHv::from_values((0..8).map(|i| i - 3).collect()).unwrap();
            let scores = q.scores(&query);
            for (c, &score) in scores.iter().enumerate() {
                let dot: i64 = query
                    .values()
                    .iter()
                    .zip(q.class(c))
                    .map(|(&a, &b)| i64::from(a) * i64::from(b))
                    .sum();
                let norm2: f64 = (0..8).map(|_| 1.0f64).sum();
                assert_eq!(score, dot as f64 / norm2.sqrt(), "pattern={pattern:#010b}");
            }

            // A full defect flip is an involution through the boundary:
            // flipping every stored bit twice restores the model exactly.
            let full_flip = FaultModel::persistent(1.0, 3).unwrap();
            let map = full_flip.defect_map(2, 8, 1).unwrap();
            let mut flipped = q.clone();
            map.apply(&mut flipped).unwrap();
            for c in 0..2 {
                for (&fv, &qv) in flipped.class(c).iter().zip(q.class(c)) {
                    assert_eq!(fv, -qv, "full flip negates every 1-bit element");
                }
            }
            map.apply(&mut flipped).unwrap();
            assert_eq!(
                flipped, q,
                "double flip must round-trip, pattern={pattern:#010b}"
            );
        }
    }

    #[test]
    fn defect_involution_round_trips_every_width() {
        use crate::FaultModel;
        for bw in [1u8, 2, 4, 8, 16] {
            let (model, _, _) = trained_model(256);
            let q = QuantizedModel::from_model(&model, bw).unwrap();
            let map = FaultModel::persistent(1.0, 17)
                .unwrap()
                .defect_map(q.n_classes(), q.dim(), bw)
                .unwrap();
            let mut m = q.clone();
            map.apply(&mut m).unwrap();
            assert_ne!(m, q, "bw={bw}: a full flip must change the model");
            map.apply(&mut m).unwrap();
            assert_eq!(m, q, "bw={bw}: XOR defects must be an involution");
        }
    }

    #[test]
    fn packed_model_matches_scalar_scores_on_binary_queries() {
        let (model, encoded, _) = trained_model(1000); // not a multiple of 64
        for bw in [1u8, 2, 4, 8, 16] {
            let q = QuantizedModel::from_model(&model, bw).unwrap();
            let packed = q.pack().unwrap();
            assert_eq!(packed.dim(), q.dim());
            assert_eq!(packed.bit_width(), bw);
            assert_eq!(packed.n_classes(), q.n_classes());
            for hv in &encoded {
                let binary = hv.to_binary();
                let fast = packed.scores(&binary).unwrap();
                let slow = q.scores(&IntHv::from(binary.clone()));
                assert_eq!(fast, slow, "bw={bw}: packed scores must be bit-identical");
                assert_eq!(
                    packed.predict(&binary).unwrap(),
                    q.predict(&IntHv::from(binary)),
                    "bw={bw}"
                );
            }
        }
    }

    #[test]
    fn packed_model_rejects_wrong_width_queries() {
        let (model, _, _) = trained_model(256);
        let packed = QuantizedModel::from_model(&model, 4)
            .unwrap()
            .pack()
            .unwrap();
        let wrong = BinaryHv::random_seeded(128, 5).unwrap();
        assert!(packed.scores(&wrong).is_err());
        assert!(packed.predict(&wrong).is_err());
    }

    #[test]
    fn invalid_parameters_rejected() {
        let (model, _, _) = trained_model(128);
        assert!(QuantizedModel::from_model(&model, 0).is_err());
        assert!(QuantizedModel::from_model(&model, 17).is_err());
        let mut q = QuantizedModel::from_model(&model, 4).unwrap();
        assert!(q.inject_bit_flips(1.5, 1).is_err());
        assert!(q.inject_bit_flips(-0.1, 1).is_err());
    }

    /// A deterministic pruned fixture: keep all but every 7th dimension
    /// of a 300-dim parent space (neither dim is word-aligned).
    fn pruned_fixture(
        bw: u8,
    ) -> (
        usize,
        Vec<usize>,
        Vec<u64>,
        QuantizedModel,
        Vec<IntHv>,
        Vec<u8>,
    ) {
        let parent_dim = 300usize;
        let keep: Vec<usize> = (0..parent_dim).filter(|i| i % 7 != 3).collect();
        let dim = keep.len();
        let mut mask_words = vec![0u64; parent_dim.div_ceil(64)];
        for &i in &keep {
            mask_words[i / 64] |= 1 << (i % 64);
        }
        let (model, encoded, _) = trained_model(parent_dim);
        let q_full = QuantizedModel::from_model(&model, bw).unwrap();
        let classes: Vec<Vec<i16>> = (0..q_full.n_classes())
            .map(|c| keep.iter().map(|&i| q_full.class(c)[i]).collect())
            .collect();
        let pruned = QuantizedModel::from_parts(dim, bw, classes).unwrap();
        let bytes = crate::io::packed_bytes_pruned(&pruned, parent_dim, &mask_words).unwrap();
        (parent_dim, keep, mask_words, pruned, encoded, bytes)
    }

    #[test]
    fn pruned_view_scores_match_hand_compacted_oracle_on_every_kernel_set() {
        for bw in [1u8, 2, 4, 8, 16] {
            let (parent_dim, keep, _, pruned, encoded, bytes) = pruned_fixture(bw);
            let mapping = crate::Mapping::from_bytes(&bytes).unwrap();
            let view = PackedModelView::new(&mapping).unwrap();
            assert!(view.is_pruned());
            assert_eq!(view.parent_dim(), parent_dim);
            assert_eq!(view.dim(), keep.len());
            assert_eq!(view.support().unwrap().len(), parent_dim.div_ceil(64));
            for hv in encoded.iter().take(4) {
                let parent_query = hv.to_binary();
                // Scalar pruned oracle: compact the query by hand, score
                // the compacted heap model.
                let bits: Vec<bool> = keep.iter().map(|&i| parent_query.bit(i)).collect();
                let compacted = BinaryHv::from_bits(&bits).unwrap();
                let oracle = pruned.scores(&IntHv::from(compacted.clone()));
                for isa in crate::kernels::available() {
                    let ks = crate::kernels::for_isa(isa).unwrap();
                    let mut fast = Vec::new();
                    view.scores_into_with(&parent_query, ks, &mut fast).unwrap();
                    assert_eq!(fast, oracle, "bw={bw}: parent-dim query");
                    let mut direct = Vec::new();
                    view.scores_into_with(&compacted, ks, &mut direct).unwrap();
                    assert_eq!(direct, oracle, "bw={bw}: support-dim query");
                }
            }
            // Any other query width is a typed mismatch naming the
            // logical (parent) dimensionality.
            let wrong = BinaryHv::random_seeded(parent_dim + 1, 9).unwrap();
            let mut out = Vec::new();
            match view.scores_into_with(&wrong, crate::kernels::active(), &mut out) {
                Err(HdcError::DimensionMismatch { expected, .. }) => {
                    assert_eq!(expected, parent_dim)
                }
                other => panic!("expected a dimension mismatch, got {other:?}"),
            }
        }
    }

    #[test]
    fn tampered_support_mask_is_rejected_before_view_construction() {
        let (_, _, _, _, _, mut bytes) = pruned_fixture(4);
        let layout = PackedLayout::validate(&bytes).unwrap();
        // Clear one support bit and reseal the CRC: only the semantic
        // support check stands between these bytes and a view.
        bytes[layout.support_offset()] &= !1u8;
        let body = bytes.len() - 4;
        let crc = crate::io::crc32(&bytes[..body]);
        bytes[body..].copy_from_slice(&crc.to_le_bytes());
        let mapping = crate::Mapping::from_bytes(&bytes).unwrap();
        assert!(matches!(
            PackedModelView::new(&mapping),
            Err(ReadModelError::SupportMismatch { .. })
        ));
        // The pre-validated-layout fast path must uphold the same gate.
        assert!(matches!(
            PackedModelView::with_layout(&mapping, layout),
            Err(ReadModelError::SupportMismatch { .. })
        ));
    }
}
