//! Crash-safe streaming online-learning runtime (§1, §4.3): consume
//! samples one at a time, answer inference requests under per-request
//! deadlines, and fold labeled samples into the model incrementally —
//! without ever losing more than one checkpoint interval of learning to
//! a crash, and without ever panicking on hostile input.
//!
//! Three pillars:
//!
//! 1. **Crash-safe persistence** — [`CheckpointStore`] writes
//!    generation-numbered checkpoints through the GHDC v2 envelope
//!    (write to temp file → `fsync` → atomic rename → directory
//!    `fsync`). Startup recovery scans the generations newest-first,
//!    rejects corrupt or truncated files via the CRC32 footer, and
//!    falls back to the newest intact one.
//! 2. **Graceful degradation under load** — each request carries a time
//!    budget; the [`DegradationLadder`] built on the per-128-dimension
//!    sub-norm reduction tiers (§4.3.3) picks the widest tier whose
//!    EWMA-estimated latency fits the budget, escalating back to full
//!    dimensionality when slack allows. Transient checkpoint I/O
//!    failures are retried with bounded exponential backoff
//!    ([`RetryPolicy`]).
//! 3. **Guarded online updates** — inputs are sanitized (NaN/Inf,
//!    wrong width, out-of-range features, bad labels are quarantined
//!    into a bounded dead-letter buffer, never a panic), drift triggers
//!    bounded retraining through
//!    [`retrain_epoch_parallel`](crate::HdcModel::retrain_epoch_parallel), and
//!    held-out accuracy regressions roll the model back to the previous
//!    checkpoint generation.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use crate::io::ReadModelError;
use crate::{HdcError, HdcPipeline, IntHv, NormMode, PredictOptions, ScoreBatch, SUB_NORM_CHUNK};

/// Checkpoint files are GHDC v2 envelopes with this `kind` byte: a
/// runtime header (generation, samples seen, held-out accuracy) wrapping
/// a nested — itself sealed — pipeline stream.
const CKPT_KIND: u8 = 3;

/// Checkpoint file name prefix; the zero-padded generation number keeps
/// lexical and numeric order identical.
const CKPT_PREFIX: &str = "ckpt-";
const CKPT_SUFFIX: &str = ".ghdc";
const CKPT_TMP_SUFFIX: &str = ".tmp";

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why the sanitizer refused a sample.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RejectReason {
    /// The sample had the wrong number of features.
    WrongWidth {
        /// Feature count the pipeline expects.
        expected: usize,
        /// Feature count of the offending sample.
        actual: usize,
    },
    /// A feature was NaN or infinite.
    NonFinite {
        /// Zero-based feature index.
        column: usize,
    },
    /// A feature fell far outside the range the quantizer was fitted on.
    OutOfRange {
        /// Zero-based feature index.
        column: usize,
        /// The offending value.
        value: f64,
    },
    /// A label was outside `0..n_classes`.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// Number of classes the model serves.
        n_classes: usize,
    },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::WrongWidth { expected, actual } => {
                write!(
                    f,
                    "sample has {actual} features, pipeline expects {expected}"
                )
            }
            RejectReason::NonFinite { column } => {
                write!(f, "non-finite feature at column {column}")
            }
            RejectReason::OutOfRange { column, value } => {
                write!(
                    f,
                    "feature {value} at column {column} outside the trained range"
                )
            }
            RejectReason::LabelOutOfRange { label, n_classes } => {
                write!(f, "label {label} out of range for {n_classes} classes")
            }
        }
    }
}

/// Errors surfaced by the runtime. Everything a caller can trigger is
/// typed; nothing panics.
#[derive(Debug)]
#[non_exhaustive]
pub enum RuntimeError {
    /// Underlying checkpoint I/O failure (after retries, for writes).
    Io(io::Error),
    /// A model-level failure (dimension mismatch, bad label, …).
    Model(HdcError),
    /// A checkpoint stream failed to decode.
    Checkpoint(ReadModelError),
    /// Recovery found no intact checkpoint in the store.
    NoCheckpoint,
    /// The requested generation does not exist in the store.
    NoSuchGeneration(u64),
    /// The sanitizer quarantined the sample instead of processing it.
    Rejected(RejectReason),
    /// The request was shed: even the narrowest degradation tier is
    /// estimated to blow the deadline (only with
    /// [`RuntimeConfig::shed_hopeless`]).
    DeadlineShed {
        /// The budget the request carried.
        budget: Duration,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Io(e) => write!(f, "checkpoint i/o failure: {e}"),
            RuntimeError::Model(e) => write!(f, "model failure: {e}"),
            RuntimeError::Checkpoint(e) => write!(f, "checkpoint decode failure: {e}"),
            RuntimeError::NoCheckpoint => write!(f, "no intact checkpoint found"),
            RuntimeError::NoSuchGeneration(g) => write!(f, "no checkpoint generation {g}"),
            RuntimeError::Rejected(r) => write!(f, "sample quarantined: {r}"),
            RuntimeError::DeadlineShed { budget } => {
                write!(
                    f,
                    "request shed: {budget:?} budget below the degradation floor"
                )
            }
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Io(e) => Some(e),
            RuntimeError::Model(e) => Some(e),
            RuntimeError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for RuntimeError {
    fn from(e: io::Error) -> Self {
        RuntimeError::Io(e)
    }
}

impl From<HdcError> for RuntimeError {
    fn from(e: HdcError) -> Self {
        RuntimeError::Model(e)
    }
}

impl From<ReadModelError> for RuntimeError {
    fn from(e: ReadModelError) -> Self {
        RuntimeError::Checkpoint(e)
    }
}

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

/// Bounded retry with capped, jittered exponential backoff for transient
/// checkpoint I/O failures (a busy SD card, a momentary `EAGAIN`, …).
///
/// The nominal delay before retry `i` is `base_delay * 2^i`, capped at
/// `max_delay`; with `jitter` enabled each sleep is scaled into
/// `[50%, 100%]` of nominal so a fleet of writers retrying the same
/// shared medium does not retry in lockstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (≥ 1); 1 disables retrying.
    pub attempts: u32,
    /// Delay before the first retry; doubles per subsequent retry.
    pub base_delay: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_delay: Duration,
    /// Randomize each sleep into `[50%, 100%]` of its nominal value.
    pub jitter: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            jitter: true,
        }
    }
}

/// Process-wide jitter state: a splitmix64 walk, advanced per sleep.
/// Determinism across *runs* is irrelevant here (sleeps are wall-clock);
/// what matters is that concurrent writers decorrelate.
static JITTER_STATE: std::sync::atomic::AtomicU64 =
    std::sync::atomic::AtomicU64::new(0x243F_6A88_85A3_08D3);

fn jitter_fraction() -> f64 {
    use std::sync::atomic::Ordering;
    let mut x = JITTER_STATE.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    // Uniform in [0.5, 1.0).
    0.5 + (x >> 11) as f64 / (1u64 << 53) as f64 / 2.0
}

impl RetryPolicy {
    /// Runs `op` until it succeeds or the attempt budget is exhausted,
    /// sleeping the capped, jittered backoff between attempts. Returns
    /// the last error on exhaustion.
    pub fn run<T>(&self, op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        self.run_counted(op).0
    }

    /// Like [`run`](RetryPolicy::run), but also reports how many retries
    /// (attempts beyond the first) were consumed — the quantity
    /// [`RuntimeStats::checkpoint_retries`] accumulates.
    pub fn run_counted<T>(&self, mut op: impl FnMut() -> io::Result<T>) -> (io::Result<T>, u32) {
        let attempts = self.attempts.max(1);
        let mut delay = self.base_delay;
        let mut last_err = None;
        for attempt in 0..attempts {
            match op() {
                Ok(v) => return (Ok(v), attempt),
                Err(e) => last_err = Some(e),
            }
            if attempt + 1 < attempts && !delay.is_zero() {
                let capped = delay.min(self.max_delay.max(self.base_delay));
                let sleep = if self.jitter {
                    capped.mul_f64(jitter_fraction())
                } else {
                    capped
                };
                std::thread::sleep(sleep);
                delay = delay.saturating_mul(2);
            }
        }
        (
            Err(last_err.unwrap_or_else(|| io::Error::other("retry budget empty"))),
            attempts - 1,
        )
    }
}

// ---------------------------------------------------------------------------
// Checkpoint store
// ---------------------------------------------------------------------------

/// A checkpoint loaded back from disk.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// The restored pipeline.
    pub pipeline: HdcPipeline,
    /// Generation number (monotonically increasing per save).
    pub generation: u64,
    /// Labeled samples that had been folded into the model when the
    /// checkpoint was written.
    pub seen: u64,
    /// Held-out accuracy recorded at checkpoint time (NaN-free; 0 when
    /// no held-out data existed yet).
    pub holdout_accuracy: f64,
}

/// What startup recovery found.
#[derive(Debug)]
pub struct RecoveryReport {
    /// The newest intact checkpoint, if any survived.
    pub checkpoint: Option<Checkpoint>,
    /// Generations present on disk (intact or not).
    pub scanned: usize,
    /// Generations that failed to load, newest first, with the reason —
    /// corrupt and truncated files land here instead of aborting
    /// recovery.
    pub rejected: Vec<(u64, String)>,
    /// Wall-clock time recovery took.
    pub elapsed: Duration,
}

/// Generation-numbered, atomically-replaced checkpoints in a directory.
///
/// Every write goes to `ckpt-<gen>.ghdc.tmp`, is flushed with
/// `fsync`, then atomically renamed to `ckpt-<gen>.ghdc`, and the
/// directory entry is flushed too — a `kill -9` at any instant leaves
/// either the old generation set or the old set plus the complete new
/// file, never a half-written visible checkpoint. Stray `.tmp` files
/// are ignored (and garbage-collected on the next save).
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
    retry: RetryPolicy,
    /// Write retries consumed since the last [`take_retries`]
    /// (shared across clones so the runtime can drain it into stats).
    retries: Arc<std::sync::atomic::AtomicU64>,
    /// Chaos/test hook: how many upcoming write *attempts* fail with an
    /// injected I/O error before reaching the filesystem.
    injected_failures: Arc<std::sync::atomic::AtomicU32>,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory, keeping at
    /// most `keep` generations on disk (≥ 1; older ones are pruned
    /// after each successful save).
    ///
    /// # Errors
    ///
    /// Returns an error if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>, keep: usize, retry: RetryPolicy) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(CheckpointStore {
            dir,
            keep: keep.max(1),
            retry,
            retries: Arc::new(std::sync::atomic::AtomicU64::new(0)),
            injected_failures: Arc::new(std::sync::atomic::AtomicU32::new(0)),
        })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Drains the write-retry counter: returns how many retries the
    /// store's [`RetryPolicy`] consumed since the last call. The counter
    /// is shared across clones of this store.
    pub fn take_retries(&self) -> u64 {
        self.retries.swap(0, std::sync::atomic::Ordering::Relaxed)
    }

    /// Chaos/test hook: makes the next `n` write *attempts* fail with an
    /// injected transient I/O error before touching the filesystem —
    /// exercising the retry + degraded-serving paths exactly as a flaky
    /// medium would. Cumulative with any previously injected budget.
    pub fn inject_write_failures(&self, n: u32) {
        self.injected_failures
            .fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    }

    /// Consumes one injected failure if armed.
    fn injected_failure(&self) -> Option<io::Error> {
        use std::sync::atomic::Ordering;
        let mut left = self.injected_failures.load(Ordering::Relaxed);
        while left > 0 {
            match self.injected_failures.compare_exchange_weak(
                left,
                left - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(io::Error::other("injected checkpoint write failure")),
                Err(now) => left = now,
            }
        }
        None
    }

    /// Serializes `pipeline` as generation `generation` and atomically
    /// publishes it, retrying transient failures per the store's
    /// [`RetryPolicy`]. Returns the published path.
    ///
    /// # Errors
    ///
    /// Returns the last I/O error once the retry budget is exhausted.
    pub fn save(
        &self,
        pipeline: &HdcPipeline,
        generation: u64,
        seen: u64,
        holdout_accuracy: f64,
    ) -> Result<PathBuf, RuntimeError> {
        let bytes = encode_checkpoint(pipeline, generation, seen, holdout_accuracy)?;
        let final_path = self.dir.join(file_name(generation));
        let tmp_path = self
            .dir
            .join(format!("{}{}", file_name(generation), CKPT_TMP_SUFFIX));
        let (result, retries) = self.retry.run_counted(|| {
            if let Some(e) = self.injected_failure() {
                return Err(e);
            }
            let mut file = std::fs::File::create(&tmp_path)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
            drop(file);
            std::fs::rename(&tmp_path, &final_path)?;
            sync_dir(&self.dir)
        });
        self.retries
            .fetch_add(u64::from(retries), std::sync::atomic::Ordering::Relaxed);
        result?;
        self.prune();
        Ok(final_path)
    }

    /// Scans the store newest-generation-first and loads the first
    /// intact checkpoint; corrupt or truncated files are recorded in the
    /// report and skipped, never fatal.
    ///
    /// # Errors
    ///
    /// Returns an error only when the directory itself cannot be read.
    pub fn recover(&self) -> Result<RecoveryReport, RuntimeError> {
        let start = Instant::now();
        let generations = self.generations()?;
        let scanned = generations.len();
        let mut rejected = Vec::new();
        let mut checkpoint = None;
        for gen in generations {
            match self.load_generation(gen) {
                Ok(c) => {
                    checkpoint = Some(c);
                    break;
                }
                Err(e) => rejected.push((gen, e.to_string())),
            }
        }
        Ok(RecoveryReport {
            checkpoint,
            scanned,
            rejected,
            elapsed: start.elapsed(),
        })
    }

    /// Loads one specific generation, validating the full envelope.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::NoSuchGeneration`] when absent, a
    /// [`RuntimeError::Checkpoint`] when the file fails validation.
    pub fn load_generation(&self, generation: u64) -> Result<Checkpoint, RuntimeError> {
        let path = self.dir.join(file_name(generation));
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Err(RuntimeError::NoSuchGeneration(generation))
            }
            Err(e) => return Err(RuntimeError::Io(e)),
        };
        let ckpt = decode_checkpoint(&bytes)?;
        if ckpt.generation != generation {
            return Err(RuntimeError::Checkpoint(ReadModelError::Corrupt(
                HdcError::invalid(
                    "generation",
                    format!(
                        "file named {generation} contains generation {}",
                        ckpt.generation
                    ),
                ),
            )));
        }
        Ok(ckpt)
    }

    /// Generation numbers currently on disk, newest first. Stray temp
    /// files and foreign names are ignored.
    ///
    /// # Errors
    ///
    /// Returns an error when the directory cannot be read.
    pub fn generations(&self) -> Result<Vec<u64>, RuntimeError> {
        let mut gens = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if let Some(gen) = parse_file_name(&entry.file_name().to_string_lossy()) {
                gens.push(gen);
            }
        }
        gens.sort_unstable_by(|a, b| b.cmp(a));
        Ok(gens)
    }

    /// Removes generations beyond the keep limit and stray temp files.
    /// Best-effort: removal failures are ignored (they only cost disk).
    fn prune(&self) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        let mut gens = Vec::new();
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with(CKPT_PREFIX) && name.ends_with(CKPT_TMP_SUFFIX) {
                let _ = std::fs::remove_file(entry.path());
            } else if let Some(gen) = parse_file_name(&name) {
                gens.push(gen);
            }
        }
        gens.sort_unstable_by(|a, b| b.cmp(a));
        for &gen in gens.iter().skip(self.keep) {
            let _ = std::fs::remove_file(self.dir.join(file_name(gen)));
        }
    }
}

fn file_name(generation: u64) -> String {
    format!("{CKPT_PREFIX}{generation:020}{CKPT_SUFFIX}")
}

fn parse_file_name(name: &str) -> Option<u64> {
    name.strip_prefix(CKPT_PREFIX)?
        .strip_suffix(CKPT_SUFFIX)?
        .parse()
        .ok()
}

/// Flushes directory metadata so a just-renamed checkpoint survives
/// power loss. Directory handles are only flushable on Unix; elsewhere
/// the rename alone is the best the platform offers. (Shared with the
/// registry's tenant hot-swap, which uses the same atomic-rename path.)
pub(crate) fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    std::fs::File::open(dir)?.sync_all()?;
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

fn encode_checkpoint(
    pipeline: &HdcPipeline,
    generation: u64,
    seen: u64,
    holdout_accuracy: f64,
) -> io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    buf.extend_from_slice(b"GHDC");
    buf.extend_from_slice(&[2, CKPT_KIND, 0, 0]);
    buf.extend_from_slice(&generation.to_le_bytes());
    buf.extend_from_slice(&seen.to_le_bytes());
    buf.extend_from_slice(&holdout_accuracy.to_le_bytes());
    pipeline.write_to(&mut buf)?;
    crate::io::seal(&mut buf);
    Ok(buf)
}

fn read_u64(bytes: &[u8]) -> u64 {
    let mut word = [0u8; 8];
    word.copy_from_slice(&bytes[..8]);
    u64::from_le_bytes(word)
}

fn decode_checkpoint(bytes: &[u8]) -> Result<Checkpoint, ReadModelError> {
    let body = crate::io::read_envelope(bytes)?;
    if body.len() < 32 {
        return Err(ReadModelError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "checkpoint shorter than its header",
        )));
    }
    if body[5] != CKPT_KIND {
        return Err(ReadModelError::WrongKind {
            found: body[5],
            expected: CKPT_KIND,
        });
    }
    let generation = read_u64(&body[8..16]);
    let seen = read_u64(&body[16..24]);
    let holdout_accuracy = f64::from_le_bytes({
        let mut word = [0u8; 8];
        word.copy_from_slice(&body[24..32]);
        word
    });
    if !holdout_accuracy.is_finite() || !(0.0..=1.0).contains(&holdout_accuracy) {
        return Err(ReadModelError::Corrupt(HdcError::invalid(
            "holdout_accuracy",
            "not a probability",
        )));
    }
    let pipeline = HdcPipeline::read_from(&body[32..])?;
    Ok(Checkpoint {
        pipeline,
        generation,
        seen,
        holdout_accuracy,
    })
}

// ---------------------------------------------------------------------------
// Degradation ladder
// ---------------------------------------------------------------------------

/// Deadline-aware tier selection over the on-demand dimension-reduction
/// axis (§4.3.3).
///
/// Tiers are multiples of [`SUB_NORM_CHUNK`] doubling up to the full
/// dimensionality, so every tier's norms come straight from the
/// accelerator's per-chunk norm2 memory. Each tier keeps an EWMA of its
/// observed serving latency; [`choose`](DegradationLadder::choose) picks
/// the widest tier whose estimate fits the request budget, falling back
/// to the narrowest tier (serve degraded rather than drop). A tier with
/// no observations yet borrows the widest observed tier's estimate
/// scaled by the dimension ratio; with no observations at all the
/// ladder is optimistic and serves full-dimensional.
#[derive(Debug, Clone)]
pub struct DegradationLadder {
    tiers: Vec<usize>,
    ewma_ns: Vec<f64>,
    observed: Vec<bool>,
    hits: Vec<u64>,
    alpha: f64,
}

impl DegradationLadder {
    /// Builds the ladder for a model of dimensionality `dim`; `alpha` is
    /// the EWMA smoothing factor in `(0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns an error when `dim == 0` or `alpha` is outside `(0, 1]`.
    pub fn new(dim: usize, alpha: f64) -> Result<Self, HdcError> {
        if dim == 0 {
            return Err(HdcError::invalid("dim", "must be positive"));
        }
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(HdcError::invalid("alpha", "must be in (0, 1]"));
        }
        let mut tiers = Vec::new();
        let mut d = SUB_NORM_CHUNK;
        while d < dim {
            tiers.push(d);
            d *= 2;
        }
        tiers.push(dim);
        let n = tiers.len();
        Ok(DegradationLadder {
            tiers,
            ewma_ns: vec![0.0; n],
            observed: vec![false; n],
            hits: vec![0; n],
            alpha,
        })
    }

    /// Number of tiers (≥ 1; the last is full-dimensional).
    pub fn n_tiers(&self) -> usize {
        self.tiers.len()
    }

    /// Dimensions served by tier `tier`.
    ///
    /// # Panics
    ///
    /// Panics if `tier >= self.n_tiers()`.
    pub fn dims(&self, tier: usize) -> usize {
        self.tiers[tier]
    }

    /// The full-dimensional tier index.
    pub fn full_tier(&self) -> usize {
        self.tiers.len() - 1
    }

    /// Per-tier serve counters (how often each tier was chosen and
    /// observed), widest last.
    pub fn hits(&self) -> &[u64] {
        &self.hits
    }

    /// All tier widths, narrowest first.
    pub fn tier_dims(&self) -> &[usize] {
        &self.tiers
    }

    /// Estimated latency of `tier` in nanoseconds, or `None` before any
    /// tier has been observed.
    pub fn estimate_ns(&self, tier: usize) -> Option<f64> {
        if self.observed[tier] {
            return Some(self.ewma_ns[tier]);
        }
        // Borrow the widest observed tier's estimate, scaled by the
        // dimension ratio (scoring cost is linear in dims).
        self.observed
            .iter()
            .rposition(|&o| o)
            .map(|t| self.ewma_ns[t] * self.tiers[tier] as f64 / self.tiers[t] as f64)
    }

    /// The widest tier whose latency estimate fits `budget_ns`; `None`
    /// budget means no deadline (full dimensionality). Falls back to
    /// tier 0 when nothing fits.
    pub fn choose(&self, budget_ns: Option<u64>) -> usize {
        let Some(budget) = budget_ns else {
            return self.full_tier();
        };
        for tier in (0..self.tiers.len()).rev() {
            match self.estimate_ns(tier) {
                Some(est) if est > budget as f64 => continue,
                _ => return tier,
            }
        }
        0
    }

    /// True when even the narrowest tier's estimate exceeds
    /// `budget_ns` — the request is hopeless and may be shed.
    pub fn hopeless(&self, budget_ns: u64) -> bool {
        matches!(self.estimate_ns(0), Some(est) if est > budget_ns as f64)
    }

    /// Folds one observed serve (`elapsed` at `tier`) into the tier's
    /// EWMA and bumps its counter.
    ///
    /// # Panics
    ///
    /// Panics if `tier >= self.n_tiers()`.
    pub fn observe(&mut self, tier: usize, elapsed: Duration) {
        let ns = elapsed.as_nanos() as f64;
        if self.observed[tier] {
            self.ewma_ns[tier] += self.alpha * (ns - self.ewma_ns[tier]);
        } else {
            self.ewma_ns[tier] = ns;
            self.observed[tier] = true;
        }
        self.hits[tier] += 1;
    }
}

// ---------------------------------------------------------------------------
// RCU model snapshots
// ---------------------------------------------------------------------------

/// An immutable, versioned copy of the serving pipeline, published by the
/// learning writer and shared with concurrent scoring readers.
#[derive(Debug)]
pub struct ModelSnapshot {
    pipeline: HdcPipeline,
    version: u64,
}

impl ModelSnapshot {
    /// The frozen pipeline (encoder + model) of this snapshot.
    pub fn pipeline(&self) -> &HdcPipeline {
        &self.pipeline
    }

    /// Monotonic publication counter (0 = the initial snapshot).
    pub fn version(&self) -> u64 {
        self.version
    }
}

/// RCU-style snapshot cell: readers [`load`](SnapshotCell::load) an
/// `Arc` to the current [`ModelSnapshot`] and score against it for as
/// long as they like; the writer [`publish`](SnapshotCell::publish)es a
/// fresh snapshot by swapping the `Arc`. Neither side ever waits on the
/// other beyond the nanoseconds of the pointer swap — online updates
/// never block in-flight scoring, and scoring never delays learning.
///
/// The cell is deliberately not a mutex around the model: readers hold
/// no lock while scoring (they own an `Arc` clone), so a snapshot a
/// reader is mid-scoring survives unchanged even as newer versions are
/// published; its memory is reclaimed when the last reader drops it.
#[derive(Debug)]
pub struct SnapshotCell {
    inner: RwLock<Arc<ModelSnapshot>>,
}

impl SnapshotCell {
    fn new(snapshot: ModelSnapshot) -> Self {
        SnapshotCell {
            inner: RwLock::new(Arc::new(snapshot)),
        }
    }

    /// The current snapshot. The read lock is held only for the `Arc`
    /// clone — scoring happens entirely outside it.
    pub fn load(&self) -> Arc<ModelSnapshot> {
        // A poisoned lock only means a panicking thread died mid-swap;
        // the Arc inside is always a complete snapshot, so serving
        // continues (the runtime never panics while holding the lock).
        match self.inner.read() {
            Ok(guard) => Arc::clone(&guard),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    /// Atomically replaces the current snapshot.
    fn publish(&self, snapshot: ModelSnapshot) {
        let next = Arc::new(snapshot);
        match self.inner.write() {
            Ok(mut guard) => *guard = next,
            Err(poisoned) => *poisoned.into_inner() = next,
        }
    }
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

/// Tunables of the online-learning runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Labeled samples between automatic checkpoints (0 = manual only).
    pub checkpoint_every: u64,
    /// EWMA smoothing factor of the ladder's latency estimates.
    pub ladder_alpha: f64,
    /// Shed requests whose budget is below even the narrowest tier's
    /// estimate instead of serving them late. Off by default: answer
    /// degraded and count the deadline miss.
    pub shed_hopeless: bool,
    /// Replay-buffer capacity (recent clean labeled samples, encoded;
    /// the corpus drift-triggered retraining runs on).
    pub replay_capacity: usize,
    /// Held-out buffer capacity (clean labeled samples diverted from
    /// learning; the accuracy yardstick for rollback decisions).
    pub holdout_capacity: usize,
    /// Every k-th clean labeled sample goes to the held-out buffer
    /// instead of being learned (≥ 2; e.g. 10 = 10% held out).
    pub holdout_every: u64,
    /// Dead-letter buffer capacity (quarantined samples; oldest are
    /// evicted on overflow).
    pub dead_letter_capacity: usize,
    /// Feature-range slack: a feature at column `j` is accepted within
    /// `[min_j - slack·extent_j, min_j + (1 + slack)·extent_j]` where
    /// `extent_j` is the trained span (1.0 for constant features).
    /// `f64::INFINITY` disables range checks.
    pub range_slack: f64,
    /// EWMA mispredict rate that triggers drift retraining.
    pub drift_threshold: f64,
    /// EWMA smoothing factor of the mispredict-rate estimate.
    pub drift_alpha: f64,
    /// Minimum labeled samples between drift retrains.
    pub drift_min_updates: u64,
    /// Maximum epochs per drift retrain (bounded work per trigger).
    pub retrain_epochs: usize,
    /// Worker threads for drift retraining
    /// ([`retrain_epoch_parallel`](crate::HdcModel::retrain_epoch_parallel)).
    pub retrain_threads: usize,
    /// Roll back to the previous checkpoint generation when held-out
    /// accuracy drops more than this below the last checkpoint's.
    pub rollback_threshold: f64,
    /// Retry policy for checkpoint writes.
    pub retry: RetryPolicy,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            checkpoint_every: 256,
            ladder_alpha: 0.2,
            shed_hopeless: false,
            replay_capacity: 1024,
            holdout_capacity: 256,
            holdout_every: 10,
            dead_letter_capacity: 128,
            range_slack: 3.0,
            drift_threshold: 0.35,
            drift_alpha: 0.05,
            drift_min_updates: 64,
            retrain_epochs: 3,
            retrain_threads: 1,
            rollback_threshold: 0.05,
            retry: RetryPolicy::default(),
        }
    }
}

/// Counters of everything the runtime did, the basis for the soak
/// harness's acceptance gates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Inference requests received (valid or not).
    pub infer_requests: u64,
    /// Requests answered with a prediction.
    pub answered: u64,
    /// Answers served below full dimensionality.
    pub degraded: u64,
    /// Answers that still blew their budget.
    pub deadline_misses: u64,
    /// Requests shed without an answer (only with `shed_hopeless`).
    pub shed: u64,
    /// Malformed inference requests rejected by the sanitizer.
    pub rejected: u64,
    /// Labeled samples folded into the model.
    pub learned: u64,
    /// Labeled samples diverted to the held-out buffer.
    pub held_out: u64,
    /// Learned samples the model had mispredicted (corrections).
    pub corrected: u64,
    /// Samples quarantined into the dead-letter buffer.
    pub quarantined: u64,
    /// Drift-triggered retrains.
    pub retrains: u64,
    /// Rollbacks to a previous checkpoint generation.
    pub rollbacks: u64,
    /// Checkpoints successfully written.
    pub checkpoints: u64,
    /// Checkpoint writes that failed even after retries.
    pub checkpoint_failures: u64,
    /// Checkpoint write retries consumed by the store's [`RetryPolicy`]
    /// (transient failures that were absorbed, not surfaced).
    pub checkpoint_retries: u64,
    /// Requests a serving worker stole from a sibling shard's queue
    /// (work-stealing; always 0 outside the sharded server).
    pub steals: u64,
}

impl RuntimeStats {
    /// Folds another counter set into this one, field by field — the
    /// aggregation the sharded serving runtime uses to sum per-shard
    /// stats on drain. Every counter is a plain sum, so merging is
    /// associative and commutative regardless of shard interleaving.
    pub fn merge(&mut self, other: &RuntimeStats) {
        let RuntimeStats {
            infer_requests,
            answered,
            degraded,
            deadline_misses,
            shed,
            rejected,
            learned,
            held_out,
            corrected,
            quarantined,
            retrains,
            rollbacks,
            checkpoints,
            checkpoint_failures,
            checkpoint_retries,
            steals,
        } = other;
        self.infer_requests += infer_requests;
        self.answered += answered;
        self.degraded += degraded;
        self.deadline_misses += deadline_misses;
        self.shed += shed;
        self.rejected += rejected;
        self.learned += learned;
        self.held_out += held_out;
        self.corrected += corrected;
        self.quarantined += quarantined;
        self.retrains += retrains;
        self.rollbacks += rollbacks;
        self.checkpoints += checkpoints;
        self.checkpoint_failures += checkpoint_failures;
        self.checkpoint_retries += checkpoint_retries;
        self.steals += steals;
    }
}

/// A quarantined sample in the dead-letter buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadLetter {
    /// The raw features as received.
    pub features: Vec<f64>,
    /// The label, for learning samples.
    pub label: Option<usize>,
    /// Why the sanitizer refused it.
    pub reason: RejectReason,
}

impl RejectReason {
    /// Compact machine-readable code (`kind:param[:param]`), the first
    /// CSV cell of a dead-letter export row.
    pub fn code(&self) -> String {
        match self {
            RejectReason::WrongWidth { expected, actual } => {
                format!("wrong_width:{expected}:{actual}")
            }
            RejectReason::NonFinite { column } => format!("non_finite:{column}"),
            RejectReason::OutOfRange { column, value } => format!("out_of_range:{column}:{value}"),
            RejectReason::LabelOutOfRange { label, n_classes } => {
                format!("label_out_of_range:{label}:{n_classes}")
            }
        }
    }

    /// Parses a code produced by [`code`](RejectReason::code).
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed code.
    pub fn from_code(code: &str) -> Result<Self, String> {
        let mut parts = code.split(':');
        let kind = parts.next().unwrap_or_default();
        let mut int = |name: &str| -> Result<usize, String> {
            parts
                .next()
                .ok_or_else(|| format!("reason `{code}` is missing its {name} field"))?
                .parse()
                .map_err(|_| format!("reason `{code}` has a non-integer {name} field"))
        };
        match kind {
            "wrong_width" => Ok(RejectReason::WrongWidth {
                expected: int("expected")?,
                actual: int("actual")?,
            }),
            "non_finite" => Ok(RejectReason::NonFinite {
                column: int("column")?,
            }),
            "out_of_range" => {
                let column = int("column")?;
                let value = parts
                    .next()
                    .ok_or_else(|| format!("reason `{code}` is missing its value field"))?
                    .parse()
                    .map_err(|_| format!("reason `{code}` has a non-numeric value field"))?;
                Ok(RejectReason::OutOfRange { column, value })
            }
            "label_out_of_range" => Ok(RejectReason::LabelOutOfRange {
                label: int("label")?,
                n_classes: int("n_classes")?,
            }),
            other => Err(format!("unknown reject-reason kind `{other}`")),
        }
    }
}

impl DeadLetter {
    /// One CSV row: `reason,label,f0,f1,…` (empty label cell for
    /// inference rows). Feature cells use Rust's shortest round-trip
    /// `f64` formatting, so [`parse_csv_row`](DeadLetter::parse_csv_row)
    /// restores them losslessly (non-finite values canonicalize to
    /// `NaN`/`inf`/`-inf`).
    pub fn to_csv_row(&self) -> String {
        let mut row = self.reason.code();
        row.push(',');
        if let Some(label) = self.label {
            row.push_str(&label.to_string());
        }
        for v in &self.features {
            row.push(',');
            row.push_str(&v.to_string());
        }
        row
    }

    /// Parses a row produced by [`to_csv_row`](DeadLetter::to_csv_row).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed cell.
    pub fn parse_csv_row(row: &str) -> Result<Self, String> {
        let mut cells = row.split(',');
        let reason = RejectReason::from_code(cells.next().unwrap_or_default())?;
        let label_cell = cells
            .next()
            .ok_or_else(|| "row is missing its label cell".to_string())?;
        let label = if label_cell.is_empty() {
            None
        } else {
            Some(
                label_cell
                    .parse()
                    .map_err(|_| format!("label `{label_cell}` is not a non-negative integer"))?,
            )
        };
        let features = cells
            .map(|cell| {
                cell.parse()
                    .map_err(|_| format!("feature `{cell}` is not a number"))
            })
            .collect::<Result<Vec<f64>, String>>()?;
        Ok(DeadLetter {
            features,
            label,
            reason,
        })
    }
}

/// Header comment line of a dead-letter CSV export.
pub const DEAD_LETTER_CSV_HEADER: &str = "# dead-letters v1: reason,label,features...";

/// Writes the dead-letter buffer as CSV (header comment + one row per
/// letter, oldest first); returns the number of rows written.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_dead_letters_csv<'a, W: Write>(
    mut out: W,
    letters: impl IntoIterator<Item = &'a DeadLetter>,
) -> io::Result<usize> {
    writeln!(out, "{DEAD_LETTER_CSV_HEADER}")?;
    let mut n = 0;
    for letter in letters {
        writeln!(out, "{}", letter.to_csv_row())?;
        n += 1;
    }
    Ok(n)
}

/// Parses a dead-letter CSV export (comment lines and blank lines are
/// ignored) back into letters, oldest first.
///
/// # Errors
///
/// Returns `line number (1-based) + description` for the first malformed
/// row.
pub fn read_dead_letters_csv(text: &str) -> Result<Vec<DeadLetter>, String> {
    let mut letters = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        letters.push(DeadLetter::parse_csv_row(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(letters)
}

/// One answered inference request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferOutcome {
    /// The predicted class.
    pub label: usize,
    /// Dimensions actually scored.
    pub dims_used: usize,
    /// Ladder tier index that served the request.
    pub tier: usize,
    /// Whether the request was served below full dimensionality.
    pub degraded: bool,
    /// Wall-clock serving time.
    pub elapsed: Duration,
    /// Whether the answer landed within its budget (always true without
    /// a budget).
    pub deadline_met: bool,
}

/// What an automatic or manual checkpoint did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointAction {
    /// A new generation was written.
    Saved {
        /// The generation just published.
        generation: u64,
    },
    /// Held-out accuracy had regressed past the threshold: the model
    /// was rolled back instead of checkpointed.
    RolledBack {
        /// The generation restored from disk.
        to_generation: u64,
    },
    /// The write failed even after retries (recorded in
    /// [`RuntimeStats::checkpoint_failures`]; learning continues).
    Failed,
}

/// One processed labeled sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearnOutcome {
    /// Whether the model already predicted the label (no update needed).
    pub was_correct: bool,
    /// Whether the sample was diverted to the held-out buffer.
    pub held_out: bool,
    /// Whether this sample triggered a drift retrain.
    pub retrained: bool,
    /// The automatic checkpoint this sample triggered, if any.
    pub checkpoint: Option<CheckpointAction>,
}

/// The crash-safe streaming engine: an [`HdcPipeline`] plus checkpoint
/// store, degradation ladder, drift detector, and quarantine buffer.
///
/// ```no_run
/// use generic_hdc::encoding::GenericEncoderSpec;
/// use generic_hdc::runtime::{CheckpointStore, OnlineRuntime, RetryPolicy, RuntimeConfig};
/// use generic_hdc::HdcPipeline;
/// use std::time::Duration;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let features: Vec<Vec<f64>> = (0..40)
///     .map(|i| vec![if i % 2 == 0 { 1.0 } else { 9.0 }; 8])
///     .collect();
/// let labels: Vec<usize> = (0..40).map(|i| i % 2).collect();
/// let spec = GenericEncoderSpec::new(1024, 8).with_seed(7);
/// let pipeline = HdcPipeline::train(spec, &features, &labels, 2, 10)?;
///
/// let store = CheckpointStore::open("ckpts", 3, RetryPolicy::default())?;
/// let mut rt = OnlineRuntime::new(pipeline, store, RuntimeConfig::default())?;
/// rt.checkpoint()?; // durable generation 1
/// let answer = rt.infer(&[1.0; 8], Some(Duration::from_millis(2)))?;
/// rt.learn(&[9.0; 8], 1)?;
/// assert_eq!(answer.label, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct OnlineRuntime {
    pipeline: HdcPipeline,
    store: CheckpointStore,
    ladder: DegradationLadder,
    config: RuntimeConfig,
    stats: RuntimeStats,
    replay: VecDeque<(IntHv, usize)>,
    holdout: VecDeque<(IntHv, usize)>,
    dead_letters: VecDeque<DeadLetter>,
    err_ewma: f64,
    since_retrain: u64,
    generation: u64,
    seen: u64,
    last_ckpt_seen: u64,
    last_ckpt_acc: f64,
    labeled_counter: u64,
    /// RCU cell concurrent readers score against; the writer republishes
    /// at every durability boundary (checkpoint, retrain, rollback).
    snapshots: Arc<SnapshotCell>,
    snapshot_version: u64,
    /// Reusable batched-scoring engine and scratch for
    /// [`infer_batch`](OnlineRuntime::infer_batch) — no steady-state
    /// allocation in the scoring loop.
    batch_engine: ScoreBatch,
    batch_encoded: Vec<IntHv>,
    batch_preds: Vec<usize>,
}

impl OnlineRuntime {
    /// Wraps a freshly trained pipeline at generation 0 (nothing durable
    /// yet — call [`checkpoint`](OnlineRuntime::checkpoint) to publish
    /// generation 1).
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid configuration.
    pub fn new(
        pipeline: HdcPipeline,
        store: CheckpointStore,
        config: RuntimeConfig,
    ) -> Result<Self, RuntimeError> {
        let ladder = DegradationLadder::new(pipeline.model().dim(), config.ladder_alpha)?;
        if config.holdout_every < 2 {
            return Err(RuntimeError::Model(HdcError::invalid(
                "holdout_every",
                "must be at least 2 (1 would hold out every sample)",
            )));
        }
        let snapshots = Arc::new(SnapshotCell::new(ModelSnapshot {
            pipeline: pipeline.clone(),
            version: 0,
        }));
        Ok(OnlineRuntime {
            pipeline,
            store,
            ladder,
            config,
            stats: RuntimeStats::default(),
            replay: VecDeque::new(),
            holdout: VecDeque::new(),
            dead_letters: VecDeque::new(),
            err_ewma: 0.0,
            since_retrain: 0,
            generation: 0,
            seen: 0,
            last_ckpt_seen: 0,
            last_ckpt_acc: 0.0,
            labeled_counter: 0,
            snapshots,
            snapshot_version: 0,
            batch_engine: ScoreBatch::new(),
            batch_encoded: Vec::new(),
            batch_preds: Vec::new(),
        })
    }

    /// Recovers the newest intact checkpoint from `store` and resumes
    /// from it. The report says which generations were scanned and
    /// which were rejected as corrupt.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::NoCheckpoint`] when no generation
    /// survives validation.
    pub fn recover(
        store: CheckpointStore,
        config: RuntimeConfig,
    ) -> Result<(Self, RecoveryReport), RuntimeError> {
        let report = store.recover()?;
        let Some(ckpt) = report.checkpoint.clone() else {
            return Err(RuntimeError::NoCheckpoint);
        };
        let mut rt = OnlineRuntime::new(ckpt.pipeline, store, config)?;
        rt.generation = ckpt.generation;
        rt.seen = ckpt.seen;
        rt.last_ckpt_seen = ckpt.seen;
        rt.last_ckpt_acc = ckpt.holdout_accuracy;
        Ok((rt, report))
    }

    /// The pipeline being served.
    pub fn pipeline(&self) -> &HdcPipeline {
        &self.pipeline
    }

    /// Work counters so far.
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }

    /// The degradation ladder (tier widths, estimates, counters).
    pub fn ladder(&self) -> &DegradationLadder {
        &self.ladder
    }

    /// A handle to the RCU snapshot cell. Hand clones of this to reader
    /// threads: each [`SnapshotCell::load`] yields an immutable pipeline
    /// they can score indefinitely while this runtime keeps learning —
    /// updates never block in-flight scoring.
    ///
    /// Snapshots are republished at every durability boundary
    /// ([`checkpoint`](OnlineRuntime::checkpoint), drift retrains, and
    /// rollbacks) and on explicit
    /// [`publish_snapshot`](OnlineRuntime::publish_snapshot) calls;
    /// between boundaries readers serve the last published version.
    pub fn snapshots(&self) -> Arc<SnapshotCell> {
        Arc::clone(&self.snapshots)
    }

    /// Publishes the current in-memory pipeline as a new snapshot
    /// version and returns that version.
    pub fn publish_snapshot(&mut self) -> u64 {
        self.snapshot_version += 1;
        self.snapshots.publish(ModelSnapshot {
            pipeline: self.pipeline.clone(),
            version: self.snapshot_version,
        });
        self.snapshot_version
    }

    /// The newest durable generation (0 before the first checkpoint).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Labeled samples folded into the current in-memory model.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Labeled samples folded in when the last checkpoint was written —
    /// everything after this is lost to a crash.
    pub fn last_checkpoint_seen(&self) -> u64 {
        self.last_ckpt_seen
    }

    /// The quarantined samples currently buffered (oldest first).
    pub fn dead_letters(&self) -> impl Iterator<Item = &DeadLetter> {
        self.dead_letters.iter()
    }

    /// Accuracy of the current model on the held-out buffer, or `None`
    /// while the buffer is empty.
    pub fn holdout_accuracy(&self) -> Option<f64> {
        if self.holdout.is_empty() {
            return None;
        }
        let model = self.pipeline.model();
        let opts = PredictOptions::full(model.dim());
        let mut correct = 0usize;
        for (hv, label) in &self.holdout {
            if model.try_predict_with(hv, opts).ok() == Some(*label) {
                correct += 1;
            }
        }
        Some(correct as f64 / self.holdout.len() as f64)
    }

    /// Serves one inference request under an optional time budget.
    ///
    /// The ladder picks the widest dimension tier whose latency
    /// estimate fits the budget; the answer reports the tier, whether
    /// it was degraded, and whether the deadline was met. Malformed
    /// inputs are rejected (and counted), never panic.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Rejected`] for malformed input;
    /// [`RuntimeError::DeadlineShed`] when shedding is enabled and even
    /// the narrowest tier cannot meet the budget.
    pub fn infer(
        &mut self,
        features: &[f64],
        budget: Option<Duration>,
    ) -> Result<InferOutcome, RuntimeError> {
        self.stats.infer_requests += 1;
        if let Err(reason) = self.sanitize(features, None) {
            self.stats.rejected += 1;
            return Err(RuntimeError::Rejected(reason));
        }
        let budget_ns = budget.map(|b| u64::try_from(b.as_nanos()).unwrap_or(u64::MAX));
        if self.config.shed_hopeless {
            if let Some(b) = budget_ns {
                if self.ladder.hopeless(b) {
                    self.stats.shed += 1;
                    return Err(RuntimeError::DeadlineShed {
                        budget: budget.unwrap_or_default(),
                    });
                }
            }
        }
        let tier = self.ladder.choose(budget_ns);
        let dims = self.ladder.dims(tier);
        let opts = PredictOptions::reduced(dims, NormMode::Updated);
        let start = Instant::now();
        let label = self.pipeline.predict_reduced(features, opts)?;
        let elapsed = start.elapsed();
        self.ladder.observe(tier, elapsed);
        let degraded = tier < self.ladder.full_tier();
        let deadline_met = budget.is_none_or(|b| elapsed <= b);
        self.stats.answered += 1;
        if degraded {
            self.stats.degraded += 1;
        }
        if !deadline_met {
            self.stats.deadline_misses += 1;
        }
        Ok(InferOutcome {
            label,
            dims_used: dims,
            tier,
            degraded,
            elapsed,
            deadline_met,
        })
    }

    /// Serves a micro-batch of inference requests under one shared time
    /// budget, scoring every clean row in a single cache-blocked
    /// [`ScoreBatch`] pass.
    ///
    /// One ladder tier is chosen for the whole batch (the budget is
    /// per-request, and batching only lowers per-request cost), so every
    /// answered row reports the same tier. Results are per-row:
    /// malformed rows are rejected exactly as [`infer`](OnlineRuntime::infer)
    /// rejects them without failing their neighbours. Per-row `elapsed`
    /// is the batch wall-clock divided by the rows scored — the quantity
    /// the deadline and the ladder's EWMA are calibrated against.
    /// Predictions are bit-identical to serving each row through
    /// [`infer`](OnlineRuntime::infer) at the same tier.
    pub fn infer_batch(
        &mut self,
        batch: &[Vec<f64>],
        budget: Option<Duration>,
    ) -> Vec<Result<InferOutcome, RuntimeError>> {
        let mut out: Vec<Result<InferOutcome, RuntimeError>> = Vec::with_capacity(batch.len());
        if batch.is_empty() {
            return out;
        }
        self.stats.infer_requests += batch.len() as u64;
        let budget_ns = budget.map(|b| u64::try_from(b.as_nanos()).unwrap_or(u64::MAX));
        let shed_all =
            self.config.shed_hopeless && budget_ns.is_some_and(|b| self.ladder.hopeless(b));
        let tier = self.ladder.choose(budget_ns);
        let dims = self.ladder.dims(tier);
        let opts = PredictOptions::reduced(dims, NormMode::Updated);

        // Pass 1: sanitize and encode. `out` gets a placeholder error
        // per row; clean rows are queued in encounter order.
        let start = Instant::now();
        self.batch_encoded.clear();
        for features in batch {
            if let Err(reason) = self.sanitize(features, None) {
                self.stats.rejected += 1;
                out.push(Err(RuntimeError::Rejected(reason)));
                continue;
            }
            if shed_all {
                self.stats.shed += 1;
                out.push(Err(RuntimeError::DeadlineShed {
                    budget: budget.unwrap_or_default(),
                }));
                continue;
            }
            match self.pipeline.encode(features) {
                Ok(hv) => {
                    // Marker replaced by the real outcome in pass 2.
                    out.push(Err(RuntimeError::NoCheckpoint));
                    self.batch_encoded.push(hv);
                }
                Err(e) => out.push(Err(RuntimeError::Model(e))),
            }
        }
        if self.batch_encoded.is_empty() {
            return out;
        }

        // Pass 2: one blocked scoring sweep over every clean row.
        self.batch_engine.predict_into(
            self.pipeline.model(),
            &self.batch_encoded,
            opts,
            &mut self.batch_preds,
        );
        let scored = self.batch_preds.len() as u32;
        let elapsed = start.elapsed() / scored.max(1);
        self.ladder.observe(tier, elapsed);
        let degraded = tier < self.ladder.full_tier();
        let deadline_met = budget.is_none_or(|b| elapsed <= b);
        let mut preds = self.batch_preds.iter();
        for slot in out.iter_mut() {
            if !matches!(slot, Err(RuntimeError::NoCheckpoint)) {
                continue;
            }
            let Some(&label) = preds.next() else { break };
            self.stats.answered += 1;
            if degraded {
                self.stats.degraded += 1;
            }
            if !deadline_met {
                self.stats.deadline_misses += 1;
            }
            *slot = Ok(InferOutcome {
                label,
                dims_used: dims,
                tier,
                degraded,
                elapsed,
                deadline_met,
            });
        }
        out
    }

    /// Folds one labeled sample into the model (or the held-out
    /// buffer), running the full guarded-update path: sanitize →
    /// online update → drift check → bounded retrain → automatic
    /// checkpoint/rollback.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Rejected`] when the sample is quarantined; model
    /// errors cannot occur for sanitized input.
    pub fn learn(&mut self, features: &[f64], label: usize) -> Result<LearnOutcome, RuntimeError> {
        if let Err(reason) = self.sanitize(features, Some(label)) {
            self.stats.quarantined += 1;
            self.quarantine(features, Some(label), reason.clone());
            return Err(RuntimeError::Rejected(reason));
        }
        let encoded = self.pipeline.encode(features)?;
        self.labeled_counter += 1;

        // Divert every k-th clean sample to the held-out yardstick.
        if self
            .labeled_counter
            .is_multiple_of(self.config.holdout_every)
        {
            push_bounded(
                &mut self.holdout,
                (encoded, label),
                self.config.holdout_capacity,
            );
            self.stats.held_out += 1;
            return Ok(LearnOutcome {
                was_correct: true,
                held_out: true,
                retrained: false,
                checkpoint: None,
            });
        }

        let was_correct = self.pipeline.model_mut().update(&encoded, label)?;
        self.seen += 1;
        self.stats.learned += 1;
        self.since_retrain += 1;
        if !was_correct {
            self.stats.corrected += 1;
        }
        let err = if was_correct { 0.0 } else { 1.0 };
        self.err_ewma += self.config.drift_alpha * (err - self.err_ewma);
        push_bounded(
            &mut self.replay,
            (encoded, label),
            self.config.replay_capacity,
        );

        let retrained = self.maybe_retrain()?;

        let mut checkpoint = None;
        if self.config.checkpoint_every > 0
            && self.seen.saturating_sub(self.last_ckpt_seen) >= self.config.checkpoint_every
        {
            checkpoint = Some(match self.checkpoint() {
                Ok(action) => action,
                Err(RuntimeError::Io(_)) => CheckpointAction::Failed,
                Err(other) => return Err(other),
            });
        }

        Ok(LearnOutcome {
            was_correct,
            held_out: false,
            retrained,
            checkpoint,
        })
    }

    /// Writes the next checkpoint generation — unless held-out accuracy
    /// has regressed past the rollback threshold since the last
    /// checkpoint, in which case the model is rolled back to the newest
    /// durable generation instead.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the write (after retries)
    /// or a rollback load fails. On write failure
    /// [`RuntimeStats::checkpoint_failures`] is bumped and the runtime
    /// stays serviceable.
    pub fn checkpoint(&mut self) -> Result<CheckpointAction, RuntimeError> {
        let acc = self.holdout_accuracy();
        if self.generation > 0 {
            if let Some(a) = acc {
                if a + self.config.rollback_threshold < self.last_ckpt_acc {
                    let to = self.rollback()?;
                    return Ok(CheckpointAction::RolledBack { to_generation: to });
                }
            }
        }
        let acc = acc.unwrap_or(self.last_ckpt_acc);
        let generation = self.generation + 1;
        let saved = self.store.save(&self.pipeline, generation, self.seen, acc);
        self.stats.checkpoint_retries += self.store.take_retries();
        match saved {
            Ok(_) => {
                self.generation = generation;
                self.last_ckpt_seen = self.seen;
                self.last_ckpt_acc = acc;
                self.stats.checkpoints += 1;
                self.publish_snapshot();
                Ok(CheckpointAction::Saved { generation })
            }
            Err(e) => {
                self.stats.checkpoint_failures += 1;
                Err(e)
            }
        }
    }

    /// Restores the newest intact checkpoint generation, discarding the
    /// in-memory model state. Returns the restored generation.
    fn rollback(&mut self) -> Result<u64, RuntimeError> {
        let report = self.store.recover()?;
        let Some(ckpt) = report.checkpoint else {
            return Err(RuntimeError::NoCheckpoint);
        };
        self.pipeline = ckpt.pipeline;
        self.generation = ckpt.generation;
        self.seen = ckpt.seen;
        self.last_ckpt_seen = ckpt.seen;
        self.last_ckpt_acc = ckpt.holdout_accuracy;
        self.err_ewma = 0.0;
        self.since_retrain = 0;
        self.stats.rollbacks += 1;
        self.publish_snapshot();
        Ok(ckpt.generation)
    }

    /// Runs a bounded retrain over the replay buffer when the
    /// mispredict-rate EWMA says the stream has drifted; rolls back to
    /// the previous checkpoint generation if the retrain made held-out
    /// accuracy regress past the threshold.
    fn maybe_retrain(&mut self) -> Result<bool, RuntimeError> {
        if self.err_ewma <= self.config.drift_threshold
            || self.since_retrain < self.config.drift_min_updates
            || self.replay.len() < 16
        {
            return Ok(false);
        }
        let before = self.holdout_accuracy();
        let (encoded, labels): (Vec<IntHv>, Vec<usize>) = self.replay.iter().cloned().unzip();
        let threads = self.config.retrain_threads.max(1);
        let model = self.pipeline.model_mut();
        for _ in 0..self.config.retrain_epochs {
            if model.retrain_epoch_parallel(&encoded, &labels, threads)? == 0 {
                break;
            }
        }
        self.stats.retrains += 1;
        self.since_retrain = 0;
        // The corrective action is taken; let the estimate re-form.
        self.err_ewma /= 2.0;
        if self.generation > 0 {
            if let (Some(b), Some(a)) = (before, self.holdout_accuracy()) {
                if a + self.config.rollback_threshold < b {
                    self.rollback()?;
                    return Ok(true); // rollback already republished
                }
            }
        }
        self.publish_snapshot();
        Ok(true)
    }

    /// Validates one raw sample against the serving contract; never
    /// panics.
    fn sanitize(&self, features: &[f64], label: Option<usize>) -> Result<(), RejectReason> {
        let expected = self.pipeline.encoder().spec().n_features();
        if features.len() != expected {
            return Err(RejectReason::WrongWidth {
                expected,
                actual: features.len(),
            });
        }
        for (column, &v) in features.iter().enumerate() {
            if !v.is_finite() {
                return Err(RejectReason::NonFinite { column });
            }
        }
        let slack = self.config.range_slack;
        if slack.is_finite() {
            let quantizer = self.pipeline.encoder().quantizer();
            let mins = quantizer.mins();
            let spans = quantizer.spans();
            for (column, &v) in features.iter().enumerate() {
                let extent = if spans[column] > 0.0 {
                    spans[column]
                } else {
                    1.0
                };
                let lo = mins[column] - slack * extent;
                let hi = mins[column] + (1.0 + slack) * extent;
                if v < lo || v > hi {
                    return Err(RejectReason::OutOfRange { column, value: v });
                }
            }
        }
        if let Some(label) = label {
            let n_classes = self.pipeline.model().n_classes();
            if label >= n_classes {
                return Err(RejectReason::LabelOutOfRange { label, n_classes });
            }
        }
        Ok(())
    }

    /// Buffers a refused sample in the bounded dead-letter queue.
    fn quarantine(&mut self, features: &[f64], label: Option<usize>, reason: RejectReason) {
        push_bounded(
            &mut self.dead_letters,
            DeadLetter {
                features: features.to_vec(),
                label,
                reason,
            },
            self.config.dead_letter_capacity,
        );
    }
}

// ---------------------------------------------------------------------------
// Micro-batch scheduler
// ---------------------------------------------------------------------------

/// Coalesces queued serve requests into micro-batches for
/// [`OnlineRuntime::infer_batch`].
///
/// The serve loop [`push`](MicroBatcher::push)es inference rows as they
/// arrive and [`flush`](MicroBatcher::flush)es when `push` reports the
/// batch is full, when stream order demands it (a learning row must
/// observe every prediction before it — flush first), or at end of
/// stream. With `batch_max == 1` (the default in the CLI) every row
/// flushes immediately and serving is byte-for-byte what per-row
/// [`OnlineRuntime::infer`] produced.
#[derive(Debug, Clone, Default)]
pub struct MicroBatcher {
    queue: Vec<Vec<f64>>,
    batch_max: usize,
}

impl MicroBatcher {
    /// Creates a scheduler that coalesces up to `batch_max` requests
    /// (clamped to ≥ 1) per flush.
    pub fn new(batch_max: usize) -> Self {
        MicroBatcher {
            queue: Vec::new(),
            batch_max: batch_max.max(1),
        }
    }

    /// The configured coalescing limit.
    pub fn batch_max(&self) -> usize {
        self.batch_max.max(1)
    }

    /// Requests currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Queues one inference request; returns `true` when the batch has
    /// reached `batch_max` and should be flushed now.
    pub fn push(&mut self, features: Vec<f64>) -> bool {
        self.queue.push(features);
        self.queue.len() >= self.batch_max()
    }

    /// Serves everything queued through one
    /// [`OnlineRuntime::infer_batch`] call (empty queue → no work, empty
    /// result) and clears the queue. Results are in push order.
    pub fn flush(
        &mut self,
        runtime: &mut OnlineRuntime,
        budget: Option<Duration>,
    ) -> Vec<Result<InferOutcome, RuntimeError>> {
        if self.queue.is_empty() {
            return Vec::new();
        }
        let results = runtime.infer_batch(&self.queue, budget);
        self.queue.clear();
        results
    }
}

/// Pushes into a bounded FIFO, evicting the oldest entry on overflow.
fn push_bounded<T>(buf: &mut VecDeque<T>, item: T, capacity: usize) {
    if capacity == 0 {
        return;
    }
    while buf.len() >= capacity {
        buf.pop_front();
    }
    buf.push_back(item);
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::encoding::GenericEncoderSpec;
    use std::sync::atomic::{AtomicU64, Ordering};

    static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

    /// A unique scratch directory, removed on drop.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let path = std::env::temp_dir().join(format!(
                "ghdc-runtime-{tag}-{}-{}",
                std::process::id(),
                TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn toy_pipeline() -> HdcPipeline {
        let features: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![if i % 2 == 0 { 1.0 } else { 9.0 }; 8])
            .collect();
        let labels: Vec<usize> = (0..40).map(|i| i % 2).collect();
        let spec = GenericEncoderSpec::new(512, 8).with_seed(7);
        HdcPipeline::train(spec, &features, &labels, 2, 5).unwrap()
    }

    fn store_in(dir: &Path) -> CheckpointStore {
        CheckpointStore::open(dir, 3, RetryPolicy::default()).unwrap()
    }

    #[test]
    fn ladder_tiers_cover_chunk_multiples_up_to_dim() {
        let ladder = DegradationLadder::new(1000, 0.2).unwrap();
        assert_eq!(ladder.tier_dims(), &[128, 256, 512, 1000]);
        let tiny = DegradationLadder::new(64, 0.2).unwrap();
        assert_eq!(tiny.tier_dims(), &[64]);
        assert!(DegradationLadder::new(0, 0.2).is_err());
        assert!(DegradationLadder::new(512, 0.0).is_err());
    }

    #[test]
    fn ladder_unobserved_is_optimistic_then_learns() {
        let mut ladder = DegradationLadder::new(1024, 0.5).unwrap();
        // Nothing observed: any budget gets full dimensionality.
        assert_eq!(ladder.choose(Some(1)), ladder.full_tier());
        // Teach it that full dim costs 8000 ns.
        ladder.observe(ladder.full_tier(), Duration::from_nanos(8000));
        // A 1500 ns budget now fits only the 128-dim tier (est. 1000 ns).
        assert_eq!(ladder.choose(Some(1500)), 0);
        // A huge budget escalates back to full dimensionality.
        assert_eq!(ladder.choose(Some(1_000_000)), ladder.full_tier());
        // No budget means no deadline.
        assert_eq!(ladder.choose(None), ladder.full_tier());
        assert!(ladder.hopeless(10));
        assert!(!ladder.hopeless(2000));
    }

    #[test]
    fn checkpoint_round_trips_through_the_store() {
        let dir = TempDir::new("roundtrip");
        let store = store_in(dir.path());
        let pipeline = toy_pipeline();
        store.save(&pipeline, 1, 17, 0.75).unwrap();
        let report = store.recover().unwrap();
        let ckpt = report.checkpoint.unwrap();
        assert_eq!(ckpt.generation, 1);
        assert_eq!(ckpt.seen, 17);
        assert!((ckpt.holdout_accuracy - 0.75).abs() < 1e-12);
        for x in [[1.0; 8], [9.0; 8]] {
            assert_eq!(
                ckpt.pipeline.predict(&x).unwrap(),
                pipeline.predict(&x).unwrap()
            );
        }
    }

    #[test]
    fn recovery_skips_corrupt_newest_generation() {
        let dir = TempDir::new("fallback");
        let store = store_in(dir.path());
        let pipeline = toy_pipeline();
        store.save(&pipeline, 1, 10, 0.5).unwrap();
        let path2 = store.save(&pipeline, 2, 20, 0.5).unwrap();
        // Corrupt generation 2 with a single flipped byte.
        let mut bytes = std::fs::read(&path2).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path2, &bytes).unwrap();
        let report = store.recover().unwrap();
        assert_eq!(report.rejected.len(), 1);
        assert_eq!(report.rejected[0].0, 2);
        assert_eq!(report.checkpoint.unwrap().generation, 1);
    }

    #[test]
    fn recovery_ignores_stray_tmp_files() {
        let dir = TempDir::new("tmpfiles");
        let store = store_in(dir.path());
        let pipeline = toy_pipeline();
        store.save(&pipeline, 1, 5, 0.0).unwrap();
        // A crash mid-write leaves a half-written temp file behind.
        std::fs::write(
            dir.path().join("ckpt-00000000000000000002.ghdc.tmp"),
            b"half-written garbage",
        )
        .unwrap();
        let report = store.recover().unwrap();
        assert_eq!(report.checkpoint.unwrap().generation, 1);
        assert!(report.rejected.is_empty());
    }

    #[test]
    fn prune_keeps_only_the_newest_generations() {
        let dir = TempDir::new("prune");
        let store = store_in(dir.path());
        let pipeline = toy_pipeline();
        for gen in 1..=5 {
            store.save(&pipeline, gen, gen * 10, 0.5).unwrap();
        }
        assert_eq!(store.generations().unwrap(), vec![5, 4, 3]);
    }

    #[test]
    fn runtime_survives_a_simulated_kill() {
        let dir = TempDir::new("kill");
        let pipeline = toy_pipeline();
        let config = RuntimeConfig {
            checkpoint_every: 8,
            holdout_every: 100,
            ..RuntimeConfig::default()
        };
        let mut rt = OnlineRuntime::new(pipeline, store_in(dir.path()), config).unwrap();
        rt.checkpoint().unwrap();
        for i in 0..20u64 {
            let x = if i % 2 == 0 { [1.0; 8] } else { [9.0; 8] };
            rt.learn(&x, (i % 2) as usize).unwrap();
        }
        let seen_at_kill = rt.seen();
        let last_ckpt = rt.last_checkpoint_seen();
        drop(rt); // the "kill": in-memory state vanishes

        let (recovered, report) = OnlineRuntime::recover(store_in(dir.path()), config).unwrap();
        assert!(report.checkpoint.is_some());
        assert_eq!(recovered.seen(), last_ckpt);
        // At most one checkpoint interval of samples is lost.
        assert!(seen_at_kill - recovered.seen() <= config.checkpoint_every);
        assert_eq!(recovered.pipeline().predict(&[1.0; 8]).unwrap(), 0);
    }

    #[test]
    fn malformed_samples_are_quarantined_not_panicking() {
        let dir = TempDir::new("quarantine");
        let mut rt = OnlineRuntime::new(
            toy_pipeline(),
            store_in(dir.path()),
            RuntimeConfig::default(),
        )
        .unwrap();
        let bad: Vec<(Vec<f64>, usize)> = vec![
            (vec![f64::NAN; 8], 0),
            (vec![f64::INFINITY; 8], 1),
            (vec![1.0; 3], 0),  // wrong width
            (vec![1e9; 8], 0),  // far out of range
            (vec![1.0; 8], 99), // label out of range
        ];
        for (x, y) in &bad {
            assert!(matches!(rt.learn(x, *y), Err(RuntimeError::Rejected(_))));
        }
        assert_eq!(rt.stats().quarantined, bad.len() as u64);
        assert_eq!(rt.dead_letters().count(), bad.len());
        assert_eq!(rt.stats().learned, 0);
        // The model still serves.
        assert_eq!(rt.infer(&[1.0; 8], None).unwrap().label, 0);
        // Malformed inference input is rejected and counted.
        assert!(rt.infer(&[f64::NAN; 8], None).is_err());
        assert_eq!(rt.stats().rejected, 1);
    }

    #[test]
    fn degraded_tier_serves_under_tight_budget() {
        let dir = TempDir::new("degrade");
        let mut rt = OnlineRuntime::new(
            toy_pipeline(),
            store_in(dir.path()),
            RuntimeConfig::default(),
        )
        .unwrap();
        // Warm the full tier's estimate.
        for _ in 0..5 {
            rt.infer(&[1.0; 8], None).unwrap();
        }
        // A 1 ns budget cannot fit the full tier; the ladder degrades
        // but still answers.
        let out = rt.infer(&[1.0; 8], Some(Duration::from_nanos(1))).unwrap();
        assert!(out.degraded);
        assert!(out.dims_used < 512);
        assert_eq!(out.label, 0);
        assert!(rt.stats().degraded >= 1);
    }

    #[test]
    fn rollback_restores_the_previous_generation_on_regression() {
        let dir = TempDir::new("rollback");
        let pipeline = toy_pipeline();
        let config = RuntimeConfig {
            checkpoint_every: 0, // manual
            holdout_every: 2,    // fill the holdout buffer fast
            rollback_threshold: 0.05,
            ..RuntimeConfig::default()
        };
        let mut rt = OnlineRuntime::new(pipeline, store_in(dir.path()), config).unwrap();
        // Build a held-out yardstick and a durable generation.
        for i in 0..40u64 {
            let x = if i % 2 == 0 { [1.0; 8] } else { [9.0; 8] };
            let _ = rt.learn(&x, (i % 2) as usize);
        }
        rt.checkpoint().unwrap();
        assert_eq!(rt.generation(), 1);
        let good_acc = rt.holdout_accuracy().unwrap();
        assert!(good_acc > 0.9);
        // Poison the model: stream label-flipped samples (adversarial
        // drift) so held-out accuracy collapses.
        for i in 0..60u64 {
            let x = if i % 2 == 0 { [1.0; 8] } else { [9.0; 8] };
            let _ = rt.learn(&x, 1 - (i % 2) as usize);
        }
        assert!(rt.holdout_accuracy().unwrap() < good_acc);
        let action = rt.checkpoint().unwrap();
        assert!(matches!(
            action,
            CheckpointAction::RolledBack { to_generation: 1 }
        ));
        assert_eq!(rt.stats().rollbacks, 1);
        // The restored model predicts cleanly again.
        assert_eq!(rt.pipeline().predict(&[1.0; 8]).unwrap(), 0);
        assert_eq!(rt.pipeline().predict(&[9.0; 8]).unwrap(), 1);
    }

    #[test]
    fn batched_inference_matches_per_row_serving() {
        let dir = TempDir::new("batch");
        let mut per_row = OnlineRuntime::new(
            toy_pipeline(),
            store_in(dir.path()),
            RuntimeConfig::default(),
        )
        .unwrap();
        let mut batched = OnlineRuntime::new(
            toy_pipeline(),
            store_in(dir.path()),
            RuntimeConfig::default(),
        )
        .unwrap();
        let rows: Vec<Vec<f64>> = (0..13)
            .map(|i| vec![if i % 2 == 0 { 1.0 } else { 9.0 }; 8])
            .collect();
        // No budget → both serve the full tier; labels must agree.
        let expect: Vec<usize> = rows
            .iter()
            .map(|r| per_row.infer(r, None).unwrap().label)
            .collect();
        let results = batched.infer_batch(&rows, None);
        assert_eq!(results.len(), rows.len());
        for (r, &want) in results.iter().zip(&expect) {
            let out = r.as_ref().unwrap();
            assert_eq!(out.label, want);
            assert_eq!(out.tier, batched.ladder().full_tier());
            assert!(!out.degraded);
        }
        assert_eq!(batched.stats().answered, rows.len() as u64);
        assert_eq!(batched.stats().infer_requests, rows.len() as u64);
    }

    #[test]
    fn batched_inference_rejects_bad_rows_without_failing_neighbours() {
        let dir = TempDir::new("batch-reject");
        let mut rt = OnlineRuntime::new(
            toy_pipeline(),
            store_in(dir.path()),
            RuntimeConfig::default(),
        )
        .unwrap();
        let rows = vec![
            vec![1.0; 8],
            vec![f64::NAN; 8], // rejected
            vec![9.0; 8],
            vec![1.0; 3], // wrong width
        ];
        let results = rt.infer_batch(&rows, None);
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].as_ref().unwrap().label, 0);
        assert!(matches!(results[1], Err(RuntimeError::Rejected(_))));
        assert_eq!(results[2].as_ref().unwrap().label, 1);
        assert!(matches!(results[3], Err(RuntimeError::Rejected(_))));
        assert_eq!(rt.stats().answered, 2);
        assert_eq!(rt.stats().rejected, 2);
    }

    #[test]
    fn micro_batcher_coalesces_and_flushes_in_order() {
        let dir = TempDir::new("microbatch");
        let mut rt = OnlineRuntime::new(
            toy_pipeline(),
            store_in(dir.path()),
            RuntimeConfig::default(),
        )
        .unwrap();
        let mut batcher = MicroBatcher::new(3);
        assert!(batcher.is_empty());
        assert!(!batcher.push(vec![1.0; 8]));
        assert!(!batcher.push(vec![9.0; 8]));
        assert!(batcher.push(vec![1.0; 8])); // full at 3
        let results = batcher.flush(&mut rt, None);
        assert!(batcher.is_empty());
        let labels: Vec<usize> = results.iter().map(|r| r.as_ref().unwrap().label).collect();
        assert_eq!(labels, [0, 1, 0]);
        // Flushing an empty queue is a no-op, not a runtime call.
        let before = rt.stats().infer_requests;
        assert!(batcher.flush(&mut rt, None).is_empty());
        assert_eq!(rt.stats().infer_requests, before);
        // batch_max is clamped to at least 1.
        let mut degenerate = MicroBatcher::new(0);
        assert!(degenerate.push(vec![1.0; 8]));
    }

    #[test]
    fn snapshot_readers_score_while_the_writer_learns() {
        let dir = TempDir::new("rcu");
        let config = RuntimeConfig {
            checkpoint_every: 8,
            holdout_every: 100,
            ..RuntimeConfig::default()
        };
        let mut rt = OnlineRuntime::new(toy_pipeline(), store_in(dir.path()), config).unwrap();
        let cell = rt.snapshots();
        assert_eq!(cell.load().version(), 0);

        // A reader thread scores continuously from whatever snapshot is
        // current while the writer learns and checkpoints.
        let reader_cell = rt.snapshots();
        let reader = std::thread::spawn(move || {
            let mut served = 0u32;
            let mut newest = 0u64;
            for _ in 0..200 {
                let snap = reader_cell.load();
                let label = snap.pipeline().predict(&[1.0; 8]).unwrap();
                assert_eq!(label, 0);
                newest = newest.max(snap.version());
                served += 1;
            }
            (served, newest)
        });
        for i in 0..32u64 {
            let x = if i % 2 == 0 { [1.0; 8] } else { [9.0; 8] };
            rt.learn(&x, (i % 2) as usize).unwrap();
        }
        let (served, _) = reader.join().unwrap();
        assert_eq!(served, 200);

        // Automatic checkpoints republished along the way; a held
        // snapshot keeps serving even after newer versions supersede it.
        let held = cell.load();
        let v = rt.publish_snapshot();
        assert!(v > held.version());
        assert_eq!(cell.load().version(), v);
        assert_eq!(held.pipeline().predict(&[9.0; 8]).unwrap(), 1);
    }

    #[test]
    fn retry_policy_retries_transient_failures() {
        let mut failures_left = 2;
        let policy = RetryPolicy {
            attempts: 3,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter: false,
        };
        let result = policy.run(|| {
            if failures_left > 0 {
                failures_left -= 1;
                Err(io::Error::other("transient"))
            } else {
                Ok(7)
            }
        });
        assert_eq!(result.unwrap(), 7);
        let exhausted: io::Result<()> = policy.run(|| Err(io::Error::other("always")));
        assert!(exhausted.is_err());
    }

    #[test]
    fn retry_counts_and_injected_failures_are_observable() {
        let mut failures_left = 2;
        let policy = RetryPolicy {
            attempts: 5,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter: false,
        };
        let (result, retries) = policy.run_counted(|| {
            if failures_left > 0 {
                failures_left -= 1;
                Err(io::Error::other("transient"))
            } else {
                Ok(11)
            }
        });
        assert_eq!(result.unwrap(), 11);
        assert_eq!(retries, 2);
        let (exhausted, retries): (io::Result<()>, u32) =
            policy.run_counted(|| Err(io::Error::other("always")));
        assert!(exhausted.is_err());
        assert_eq!(retries, 4);
    }

    #[test]
    fn checkpoint_store_retries_injected_write_failures() {
        let dir = TempDir::new("inject");
        let policy = RetryPolicy {
            attempts: 3,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter: false,
        };
        let store = CheckpointStore::open(dir.path(), 2, policy).unwrap();
        let pipeline = toy_pipeline();

        // Two injected failures fit inside the 3-attempt budget: the save
        // succeeds and the retries are visible through `take_retries`.
        store.inject_write_failures(2);
        store.save(&pipeline, 1, 10, 0.5).unwrap();
        assert_eq!(store.take_retries(), 2);
        assert_eq!(store.take_retries(), 0);

        // Three injected failures exhaust the budget: the save fails but the
        // consumed retries are still counted.
        store.inject_write_failures(3);
        assert!(store.save(&pipeline, 2, 20, 0.5).is_err());
        assert_eq!(store.take_retries(), 2);
        // The failed generation must not be loadable.
        assert_eq!(store.generations().unwrap(), vec![1]);
    }

    #[test]
    fn dead_letters_round_trip_through_csv() {
        let letters = vec![
            DeadLetter {
                features: vec![0.1, f64::NAN, -0.0, 3.5e-9],
                label: None,
                reason: RejectReason::NonFinite { column: 1 },
            },
            DeadLetter {
                features: vec![1.0, 2.0],
                label: Some(3),
                reason: RejectReason::WrongWidth {
                    expected: 4,
                    actual: 2,
                },
            },
            DeadLetter {
                features: vec![0.25, 1.0e12, std::f64::consts::PI],
                label: Some(0),
                reason: RejectReason::OutOfRange {
                    column: 1,
                    value: 1.0e12,
                },
            },
            DeadLetter {
                features: vec![],
                label: Some(99),
                reason: RejectReason::LabelOutOfRange {
                    label: 99,
                    n_classes: 3,
                },
            },
        ];
        let mut buf = Vec::new();
        let written = write_dead_letters_csv(&mut buf, &letters).unwrap();
        assert_eq!(written, letters.len());
        let text = String::from_utf8(buf).unwrap();
        let parsed = read_dead_letters_csv(&text).unwrap();
        assert_eq!(parsed.len(), letters.len());
        for (orig, round) in letters.iter().zip(&parsed) {
            assert_eq!(orig.label, round.label);
            assert_eq!(orig.reason, round.reason);
            assert_eq!(orig.features.len(), round.features.len());
            for (a, b) in orig.features.iter().zip(&round.features) {
                // Bit-exact for every value except NaN payloads, which
                // canonicalize; -0.0 must survive with its sign.
                if a.is_nan() {
                    assert!(b.is_nan());
                } else {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
        assert!(read_dead_letters_csv("bogus_kind:1,,1.0").is_err());
        assert!(read_dead_letters_csv("non_finite:0,x,1.0").is_err());
        assert!(read_dead_letters_csv("non_finite:0,,abc").is_err());
    }

    #[test]
    fn truncated_checkpoint_never_loads_silently() {
        let dir = TempDir::new("truncate");
        let store = store_in(dir.path());
        let pipeline = toy_pipeline();
        let path = store.save(&pipeline, 1, 3, 0.5).unwrap();
        let clean = std::fs::read(&path).unwrap();
        // A handful of representative cuts (the exhaustive sweep lives
        // in tests/runtime_recovery.rs).
        for cut in [0, 1, 7, 11, 31, clean.len() / 2, clean.len() - 1] {
            std::fs::write(&path, &clean[..cut]).unwrap();
            assert!(
                store.load_generation(1).is_err(),
                "cut at {cut} must not load"
            );
        }
    }
}
