//! Resilient inference under fault injection: confidence-gated dimension
//! escalation, majority voting over redundant reads, and periodic class
//! memory scrubbing.
//!
//! The GENERIC accelerator already pays for two mechanisms this module
//! exploits. On-demand dimension reduction (§4.3.3) lets a query run over
//! only the leading dimensions — a cheap first pass. The norm2 memory
//! keeps per-chunk class norms, so an escalated full-dimension pass costs
//! exactly one more inference. [`ResilientPipeline`] combines them into a
//! two-tier scheme: classify at reduced dimensions, and only when the
//! top-2 cosine margin falls below a threshold re-run at full
//! dimensionality — optionally as a best-of-N majority vote, which under
//! *transient* (voltage over-scaling) faults sees fresh noise per read and
//! averages it away. Persistent stuck-cell faults defeat voting (every
//! read is wrong the same way), which the fault campaign quantifies.
//!
//! The wrapper never hides cost: every reduced pass, full pass, and scrub
//! is counted in [`ResilienceStats`], which `generic-sim`'s mitigation
//! hooks convert into cycles and energy.

use crate::fault::{FaultKind, FaultModel};
use crate::{HdcError, HdcPipeline, IntHv, QuantizedModel};

/// Knobs of the resilient inference scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceConfig {
    /// Dimensions of the cheap first pass (1..=dim). Equal to the model
    /// dimensionality disables the two-tier scheme.
    pub reduced_dims: usize,
    /// Escalate to full dimensions when the top-2 cosine margin of the
    /// first pass is below this (0 never escalates; cosine scale, so
    /// values around 0.01–0.10 are typical).
    pub margin_threshold: f64,
    /// Redundant full-dimension reads per escalated query, decided by
    /// majority (ties to the lowest label). Use an odd count; 1 disables
    /// voting.
    pub votes: u32,
    /// Queries between class-memory scrubs (re-write from the golden
    /// copy); 0 never scrubs. Only matters under accumulating faults —
    /// transient noise leaves no damage and persistent defects re-assert.
    pub scrub_period: u64,
}

impl ResilienceConfig {
    /// The unmitigated baseline: single full-dimension read per query, no
    /// escalation, no voting, no scrubbing. `reduced_dims` is resolved to
    /// the model dimensionality at construction.
    pub fn baseline() -> Self {
        ResilienceConfig {
            reduced_dims: usize::MAX,
            margin_threshold: 0.0,
            votes: 1,
            scrub_period: 0,
        }
    }
}

/// Work counters of a [`ResilientPipeline`], the basis for charging
/// mitigation cost through the simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Queries served.
    pub queries: u64,
    /// First passes at reduced dimensions (one per query when the
    /// two-tier scheme is active).
    pub reduced_passes: u64,
    /// Full-dimension passes (escalations × votes, plus every pass when
    /// `reduced_dims == dim`).
    pub full_passes: u64,
    /// Queries whose first-pass margin fell below the threshold.
    pub escalations: u64,
    /// Class-memory scrubs performed.
    pub scrubs: u64,
}

/// An [`HdcPipeline`] hardened for operation under memory faults.
///
/// Holds a golden copy of the quantized class memory, the stored (possibly
/// damaged) state, and a scratch buffer for per-read transient noise.
///
/// ```
/// use generic_hdc::encoding::GenericEncoderSpec;
/// use generic_hdc::{FaultModel, HdcPipeline, ResilienceConfig, ResilientPipeline};
///
/// # fn main() -> Result<(), generic_hdc::HdcError> {
/// let features: Vec<Vec<f64>> = (0..40)
///     .map(|i| vec![if i % 2 == 0 { 1.0 } else { 9.0 }; 8])
///     .collect();
/// let labels: Vec<usize> = (0..40).map(|i| i % 2).collect();
/// let spec = GenericEncoderSpec::new(1024, 8).with_seed(7);
/// let pipeline = HdcPipeline::train(spec, &features, &labels, 2, 10)?;
///
/// let config = ResilienceConfig {
///     reduced_dims: 256,
///     margin_threshold: 0.05,
///     votes: 3,
///     scrub_period: 0,
/// };
/// let mut resilient = ResilientPipeline::new(pipeline, 1, config)?;
/// resilient.set_fault_model(Some(FaultModel::transient(0.05, 11)?));
/// assert_eq!(resilient.predict(&[1.0; 8])?, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ResilientPipeline {
    pipeline: HdcPipeline,
    golden: QuantizedModel,
    stored: QuantizedModel,
    scratch: QuantizedModel,
    fault: Option<FaultModel>,
    config: ResilienceConfig,
    stats: ResilienceStats,
    reads: u64,
    scores_buf: Vec<f64>,
}

impl ResilientPipeline {
    /// Quantizes the pipeline's model to `bit_width` bits and wraps it.
    ///
    /// # Errors
    ///
    /// Returns an error if `bit_width` is out of range, `reduced_dims` is
    /// zero or (unless `usize::MAX`, meaning "full") exceeds the model
    /// dimensionality, `votes` is zero, or `margin_threshold` is negative
    /// or non-finite.
    pub fn new(
        pipeline: HdcPipeline,
        bit_width: u8,
        mut config: ResilienceConfig,
    ) -> Result<Self, HdcError> {
        let golden = QuantizedModel::from_model(pipeline.model(), bit_width)?;
        if config.reduced_dims == usize::MAX {
            config.reduced_dims = golden.dim();
        }
        if config.reduced_dims == 0 || config.reduced_dims > golden.dim() {
            return Err(HdcError::invalid(
                "reduced_dims",
                format!("must be in 1..={}", golden.dim()),
            ));
        }
        if config.votes == 0 {
            return Err(HdcError::invalid("votes", "must be at least 1"));
        }
        if !config.margin_threshold.is_finite() || config.margin_threshold < 0.0 {
            return Err(HdcError::invalid(
                "margin_threshold",
                "must be finite and non-negative",
            ));
        }
        let stored = golden.clone();
        let scratch = golden.clone();
        Ok(ResilientPipeline {
            pipeline,
            golden,
            stored,
            scratch,
            fault: None,
            config,
            stats: ResilienceStats::default(),
            reads: 0,
            scores_buf: Vec::new(),
        })
    }

    /// Installs (or clears) the fault model. Persistent defects are
    /// applied to the stored memory immediately; any accumulated damage
    /// from a previous model is scrubbed away first.
    pub fn set_fault_model(&mut self, fault: Option<FaultModel>) {
        self.fault = fault;
        self.rewrite_stored();
    }

    /// The wrapped pipeline (encoder + float model).
    pub fn pipeline(&self) -> &HdcPipeline {
        &self.pipeline
    }

    /// The golden (fault-free) quantized model.
    pub fn golden(&self) -> &QuantizedModel {
        &self.golden
    }

    /// The active configuration (with `reduced_dims` resolved).
    pub fn config(&self) -> &ResilienceConfig {
        &self.config
    }

    /// Work counters accumulated since construction or the last
    /// [`reset_stats`](ResilientPipeline::reset_stats).
    pub fn stats(&self) -> &ResilienceStats {
        &self.stats
    }

    /// Clears the work counters.
    pub fn reset_stats(&mut self) {
        self.stats = ResilienceStats::default();
    }

    /// Re-writes the class memory from the golden copy, then re-applies
    /// persistent defects (stuck cells do not heal). Counted in
    /// [`ResilienceStats::scrubs`].
    pub fn scrub(&mut self) {
        self.rewrite_stored();
        self.stats.scrubs += 1;
    }

    /// Encodes and classifies one raw sample resiliently.
    ///
    /// # Errors
    ///
    /// Returns an error on a wrong-width sample.
    pub fn predict(&mut self, sample: &[f64]) -> Result<usize, HdcError> {
        let query = self.pipeline.encode(sample)?;
        Ok(self.predict_encoded(&query))
    }

    /// Classifies one encoded query resiliently.
    ///
    /// # Panics
    ///
    /// Panics if `query.dim()` differs from the model dimensionality.
    pub fn predict_encoded(&mut self, query: &IntHv) -> usize {
        self.stats.queries += 1;
        if self.config.scrub_period > 0
            && self.stats.queries.is_multiple_of(self.config.scrub_period)
        {
            self.scrub();
        }

        let dim = self.golden.dim();
        let reduced = self.config.reduced_dims;
        let first_is_full = reduced == dim;
        self.read_scores(query, reduced);
        if first_is_full {
            self.stats.full_passes += 1;
        } else {
            self.stats.reduced_passes += 1;
        }
        let (best, margin) = top2_margin(&self.scores_buf);
        if self.config.margin_threshold == 0.0 || margin >= self.config.margin_threshold {
            return best;
        }

        // Low confidence: escalate to `votes` independent full reads.
        self.stats.escalations += 1;
        let mut tally = vec![0u32; self.golden.n_classes()];
        for _ in 0..self.config.votes {
            self.read_scores(query, dim);
            self.stats.full_passes += 1;
            let (vote, _) = top2_margin(&self.scores_buf);
            tally[vote] += 1;
        }
        tally
            .iter()
            .enumerate()
            .max_by_key(|&(i, &count)| (count, std::cmp::Reverse(i)))
            .map(|(i, _)| i)
            .expect("model has at least one class")
    }

    /// Fraction of encoded samples classified as their labels.
    ///
    /// # Panics
    ///
    /// Panics on mismatched lengths or dimensions.
    pub fn accuracy_encoded(&mut self, encoded: &[IntHv], labels: &[usize]) -> f64 {
        assert_eq!(
            encoded.len(),
            labels.len(),
            "samples/labels length mismatch"
        );
        if encoded.is_empty() {
            return 0.0;
        }
        let correct = encoded
            .iter()
            .zip(labels)
            .filter(|&(hv, &label)| self.predict_encoded(hv) == label)
            .count();
        correct as f64 / encoded.len() as f64
    }

    /// Encodes every sample and measures resilient accuracy.
    ///
    /// # Errors
    ///
    /// Returns an error on mismatched lengths or row widths.
    pub fn accuracy(&mut self, features: &[Vec<f64>], labels: &[usize]) -> Result<f64, HdcError> {
        if features.len() != labels.len() {
            return Err(HdcError::invalid(
                "labels",
                "features and labels must have equal lengths",
            ));
        }
        if features.is_empty() {
            return Err(HdcError::EmptyInput);
        }
        let mut correct = 0;
        for (x, &y) in features.iter().zip(labels) {
            if self.predict(x)? == y {
                correct += 1;
            }
        }
        Ok(correct as f64 / features.len() as f64)
    }

    /// One class-memory read: leaves cosine scores over the first `dims`
    /// dimensions of whatever the memory yields under the fault model in
    /// `self.scores_buf` (one buffer reused across reads — redundant
    /// voting reads allocate nothing).
    fn read_scores(&mut self, query: &IntHv, dims: usize) {
        let read_index = self.reads;
        self.reads += 1;
        match self.fault {
            None => self
                .stored
                .cosine_scores_into(query, dims, &mut self.scores_buf),
            Some(fault) => match fault.kind() {
                // Fresh noise per read, observed on a scratch copy — the
                // stored cells themselves are unharmed.
                FaultKind::Transient => {
                    self.scratch.clone_from(&self.stored);
                    fault.corrupt_model(&mut self.scratch, read_index);
                    self.scratch
                        .cosine_scores_into(query, dims, &mut self.scores_buf);
                }
                // Defects already live in the stored state.
                FaultKind::Persistent => {
                    self.stored
                        .cosine_scores_into(query, dims, &mut self.scores_buf);
                }
                // Damage lands in the stored state and stays there.
                FaultKind::Accumulating => {
                    fault.corrupt_model(&mut self.stored, read_index);
                    self.stored
                        .cosine_scores_into(query, dims, &mut self.scores_buf);
                }
            },
        }
    }

    /// Restores the stored memory to golden, then re-applies persistent
    /// defects.
    fn rewrite_stored(&mut self) {
        self.stored.clone_from(&self.golden);
        if let Some(fault) = self.fault {
            if fault.kind() == FaultKind::Persistent {
                fault.corrupt_model(&mut self.stored, 0);
            }
        }
    }
}

/// Index of the best score and its margin over the runner-up (0 for a
/// single-class model).
fn top2_margin(scores: &[f64]) -> (usize, f64) {
    let mut best = 0usize;
    let mut s1 = f64::NEG_INFINITY;
    let mut s2 = f64::NEG_INFINITY;
    for (i, &s) in scores.iter().enumerate() {
        if s > s1 {
            s2 = s1;
            s1 = s;
            best = i;
        } else if s > s2 {
            s2 = s;
        }
    }
    let margin = if s2 == f64::NEG_INFINITY {
        0.0
    } else {
        s1 - s2
    };
    (best, margin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::GenericEncoderSpec;

    fn toy() -> (Vec<Vec<f64>>, Vec<usize>) {
        let features: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                let c = i % 3;
                (0..10)
                    .map(|j| (c * 4) as f64 + ((i * 3 + j) % 4) as f64 * 0.2)
                    .collect()
            })
            .collect();
        let labels: Vec<usize> = (0..60).map(|i| i % 3).collect();
        (features, labels)
    }

    fn trained() -> HdcPipeline {
        let (xs, ys) = toy();
        let spec = GenericEncoderSpec::new(2048, 10).with_seed(5);
        HdcPipeline::train(spec, &xs, &ys, 3, 10).unwrap()
    }

    #[test]
    fn config_validation() {
        let p = trained();
        let bad_dims = ResilienceConfig {
            reduced_dims: 4096,
            ..ResilienceConfig::baseline()
        };
        assert!(ResilientPipeline::new(p.clone(), 4, bad_dims).is_err());
        let bad_votes = ResilienceConfig {
            votes: 0,
            ..ResilienceConfig::baseline()
        };
        assert!(ResilientPipeline::new(p.clone(), 4, bad_votes).is_err());
        let bad_margin = ResilienceConfig {
            margin_threshold: -1.0,
            ..ResilienceConfig::baseline()
        };
        assert!(ResilientPipeline::new(p.clone(), 4, bad_margin).is_err());
        assert!(ResilientPipeline::new(p, 0, ResilienceConfig::baseline()).is_err());
    }

    #[test]
    fn fault_free_baseline_matches_quantized_model() {
        let p = trained();
        let (xs, ys) = toy();
        let golden = QuantizedModel::from_model(p.model(), 8).unwrap();
        let mut r = ResilientPipeline::new(p, 8, ResilienceConfig::baseline()).unwrap();
        for (x, _) in xs.iter().zip(&ys) {
            let q = r.pipeline().encode(x).unwrap();
            assert_eq!(r.predict_encoded(&q), golden.predict(&q));
        }
        assert_eq!(r.stats().queries, xs.len() as u64);
        assert_eq!(r.stats().full_passes, xs.len() as u64);
        assert_eq!(r.stats().reduced_passes, 0);
        assert_eq!(r.stats().escalations, 0);
    }

    #[test]
    fn reduced_first_pass_escalates_only_on_low_margin() {
        let p = trained();
        let (xs, ys) = toy();
        let config = ResilienceConfig {
            reduced_dims: 256,
            margin_threshold: 0.02,
            votes: 1,
            scrub_period: 0,
        };
        let mut r = ResilientPipeline::new(p, 8, config).unwrap();
        let acc = r.accuracy(&xs, &ys).unwrap();
        assert!(acc >= 0.95, "fault-free resilient accuracy: {acc}");
        let stats = *r.stats();
        assert_eq!(stats.reduced_passes, stats.queries);
        assert_eq!(stats.full_passes, stats.escalations);
        assert!(
            stats.escalations < stats.queries,
            "separable data should mostly classify in the reduced pass: {stats:?}"
        );
    }

    #[test]
    fn majority_voting_recovers_accuracy_under_transient_faults() {
        let p = trained();
        let (xs, ys) = toy();
        let encoded: Vec<IntHv> = xs.iter().map(|x| p.encode(x).unwrap()).collect();
        let ber = 0.10;

        let mut baseline =
            ResilientPipeline::new(p.clone(), 1, ResilienceConfig::baseline()).unwrap();
        baseline.set_fault_model(Some(FaultModel::transient(ber, 3).unwrap()));
        let unmitigated = baseline.accuracy_encoded(&encoded, &ys);

        let config = ResilienceConfig {
            reduced_dims: 512,
            margin_threshold: 0.10,
            votes: 5,
            scrub_period: 0,
        };
        let mut mitigated = ResilientPipeline::new(p, 1, config).unwrap();
        mitigated.set_fault_model(Some(FaultModel::transient(ber, 3).unwrap()));
        let resilient = mitigated.accuracy_encoded(&encoded, &ys);

        assert!(
            resilient >= unmitigated,
            "voting must not hurt: {unmitigated} -> {resilient}"
        );
    }

    #[test]
    fn voting_cannot_fix_persistent_defects() {
        let p = trained();
        let (xs, ys) = toy();
        let encoded: Vec<IntHv> = xs.iter().map(|x| p.encode(x).unwrap()).collect();
        let fault = FaultModel::persistent(0.15, 9).unwrap();

        let config = ResilienceConfig {
            reduced_dims: 2048,
            margin_threshold: 0.5, // escalate nearly always
            votes: 5,
            scrub_period: 0,
        };
        let mut voted = ResilientPipeline::new(p.clone(), 1, config).unwrap();
        voted.set_fault_model(Some(fault));
        let voted_acc = voted.accuracy_encoded(&encoded, &ys);

        let mut plain = ResilientPipeline::new(p, 1, ResilienceConfig::baseline()).unwrap();
        plain.set_fault_model(Some(fault));
        let plain_acc = plain.accuracy_encoded(&encoded, &ys);

        // Every read of a stuck cell is wrong the same way, so redundant
        // reads return identical votes.
        assert!(
            (voted_acc - plain_acc).abs() < 1e-12,
            "voting changed a persistent-fault outcome: {plain_acc} vs {voted_acc}"
        );
    }

    #[test]
    fn scrubbing_heals_accumulating_damage() {
        let p = trained();
        let (xs, ys) = toy();
        let encoded: Vec<IntHv> = xs.iter().map(|x| p.encode(x).unwrap()).collect();
        let fault = FaultModel::accumulating(0.01, 4).unwrap();

        let mut unscrubbed =
            ResilientPipeline::new(p.clone(), 1, ResilienceConfig::baseline()).unwrap();
        unscrubbed.set_fault_model(Some(fault));
        let mut scrubbed = ResilientPipeline::new(
            p,
            1,
            ResilienceConfig {
                scrub_period: 10,
                ..ResilienceConfig::baseline()
            },
        )
        .unwrap();
        scrubbed.set_fault_model(Some(fault));

        // Stream the set repeatedly so damage has time to pile up.
        let mut acc_unscrubbed = 0.0;
        let mut acc_scrubbed = 0.0;
        for _ in 0..5 {
            acc_unscrubbed = unscrubbed.accuracy_encoded(&encoded, &ys);
            acc_scrubbed = scrubbed.accuracy_encoded(&encoded, &ys);
        }
        assert!(scrubbed.stats().scrubs > 0);
        assert!(
            acc_scrubbed >= acc_unscrubbed,
            "scrubbing must help under accumulating faults: \
             {acc_unscrubbed} vs {acc_scrubbed}"
        );
    }

    #[test]
    fn stats_reset() {
        let p = trained();
        let (xs, _) = toy();
        let mut r = ResilientPipeline::new(p, 8, ResilienceConfig::baseline()).unwrap();
        let _ = r.predict(&xs[0]).unwrap();
        assert_eq!(r.stats().queries, 1);
        r.reset_stats();
        assert_eq!(*r.stats(), ResilienceStats::default());
    }

    #[test]
    fn top2_margin_edge_cases() {
        assert_eq!(top2_margin(&[0.5]), (0, 0.0));
        let (best, margin) = top2_margin(&[0.1, 0.7, 0.4]);
        assert_eq!(best, 1);
        assert!((margin - 0.3).abs() < 1e-12);
    }
}
