//! Seeded, deterministic fault injection for the accelerator's memories.
//!
//! Voltage over-scaling (§5, Fig. 6) manifests as *transient* read upsets:
//! every read of a class-memory word sees fresh, independent bit noise.
//! Manufacturing defects and wear-out instead produce *persistent* faults:
//! a fixed population of cells is stuck for the lifetime of a campaign, so
//! every read of a defective cell is wrong in the same way. Long
//! deployments without refresh accumulate retention errors over time —
//! *accumulating* faults — which periodic scrubbing (re-writing the class
//! memory from a golden copy) can undo.
//!
//! [`FaultModel`] captures all three regimes behind one seeded interface
//! and can corrupt quantized class memories ([`QuantizedModel`]), binary
//! item/id-memory rows ([`BinaryHv`]), and encoded query vectors
//! ([`IntHv`]). [`QuantizedModel::inject_bit_flips`] is the transient
//! special case of this module.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::quant::{mask, pack_bits, sign_extend, unpack_bits};
use crate::{BinaryHv, HdcError, IntHv, QuantizedModel};

/// The temporal behaviour of injected faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fresh, independent bit noise on every read (voltage over-scaling
    /// read upsets). State written to the memory is unaffected; distinct
    /// `read_index` values draw distinct noise.
    Transient,
    /// A fixed defect population: the same cells read wrong on every
    /// access, regardless of `read_index`. Re-writing the memory does not
    /// help — the defect map re-asserts itself.
    Persistent,
    /// Retention-style faults that stay in the stored state once they
    /// occur: each read adds fresh flips *and leaves them behind*.
    /// Scrubbing from a golden copy removes everything accumulated so far.
    Accumulating,
}

/// A seeded fault-injection model with a bit error rate.
///
/// All corruption is deterministic in `(seed, read_index)`: re-running a
/// campaign with the same seeds reproduces every flip. Corruption applies
/// to each *effective* bit independently with probability `ber`.
///
/// ```
/// use generic_hdc::{BinaryHv, FaultModel, HdcModel, IntHv, QuantizedModel};
///
/// # fn main() -> Result<(), generic_hdc::HdcError> {
/// let a = IntHv::from(BinaryHv::random_seeded(512, 1)?);
/// let b = IntHv::from(BinaryHv::random_seeded(512, 2)?);
/// let model = HdcModel::fit(&[a.clone(), b], &[0, 1], 2)?;
/// let golden = QuantizedModel::from_model(&model, 4)?;
///
/// let vos = FaultModel::transient(0.01, 7)?;
/// let mut read0 = golden.clone();
/// vos.corrupt_model(&mut read0, 0);
/// let mut read1 = golden.clone();
/// vos.corrupt_model(&mut read1, 1);
/// assert_ne!(read0, read1, "each read draws fresh noise");
///
/// let stuck = FaultModel::persistent(0.01, 7)?;
/// let mut first = golden.clone();
/// stuck.corrupt_model(&mut first, 0);
/// let mut later = golden.clone();
/// stuck.corrupt_model(&mut later, 123);
/// assert_eq!(first, later, "defects are fixed for the campaign");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    kind: FaultKind,
    ber: f64,
    seed: u64,
}

impl FaultModel {
    /// Creates a fault model.
    ///
    /// # Errors
    ///
    /// Returns an error if `ber` is not a probability in `[0, 1]`.
    pub fn new(kind: FaultKind, ber: f64, seed: u64) -> Result<Self, HdcError> {
        if !(0.0..=1.0).contains(&ber) || ber.is_nan() {
            return Err(HdcError::invalid("ber", "must be a probability in [0, 1]"));
        }
        Ok(FaultModel { kind, ber, seed })
    }

    /// Transient (per-read) faults — see [`FaultKind::Transient`].
    ///
    /// # Errors
    ///
    /// Returns an error if `ber` is not a probability in `[0, 1]`.
    pub fn transient(ber: f64, seed: u64) -> Result<Self, HdcError> {
        FaultModel::new(FaultKind::Transient, ber, seed)
    }

    /// Persistent (stuck-cell) faults — see [`FaultKind::Persistent`].
    ///
    /// # Errors
    ///
    /// Returns an error if `ber` is not a probability in `[0, 1]`.
    pub fn persistent(ber: f64, seed: u64) -> Result<Self, HdcError> {
        FaultModel::new(FaultKind::Persistent, ber, seed)
    }

    /// Accumulating (retention) faults — see [`FaultKind::Accumulating`].
    ///
    /// # Errors
    ///
    /// Returns an error if `ber` is not a probability in `[0, 1]`.
    pub fn accumulating(ber: f64, seed: u64) -> Result<Self, HdcError> {
        FaultModel::new(FaultKind::Accumulating, ber, seed)
    }

    /// The fault regime.
    pub fn kind(&self) -> FaultKind {
        self.kind
    }

    /// The per-bit error rate.
    pub fn ber(&self) -> f64 {
        self.ber
    }

    /// The campaign seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The RNG for one read. Persistent faults ignore `read_index` — the
    /// same cells fail every time — while transient and accumulating
    /// faults mix it in for fresh noise per read. `mix64(0) == 0`, so
    /// read 0 of a transient model reproduces the legacy
    /// [`QuantizedModel::inject_bit_flips`] stream exactly.
    fn rng_for_read(&self, read_index: u64) -> StdRng {
        let stream = match self.kind {
            FaultKind::Persistent => self.seed,
            FaultKind::Transient | FaultKind::Accumulating => self.seed ^ mix64(read_index),
        };
        StdRng::seed_from_u64(stream)
    }

    /// Corrupts the effective bits of a quantized class memory for one
    /// read. Returns the number of bits flipped.
    ///
    /// The caller owns state semantics: for [`FaultKind::Transient`] and
    /// [`FaultKind::Persistent`] apply this to a pristine copy (the noise
    /// models a *read*, not a write-back); for
    /// [`FaultKind::Accumulating`], apply it to the stored model itself so
    /// flips persist across reads.
    pub fn corrupt_model(&self, model: &mut QuantizedModel, read_index: u64) -> usize {
        if self.ber == 0.0 {
            return 0;
        }
        let mut rng = self.rng_for_read(read_index);
        let bw = u32::from(model.bit_width());
        flip_class_bits(model.classes_mut(), bw, self.ber, &mut rng)
    }

    /// Corrupts a binary item/id-memory row for one read. Returns the
    /// number of bits flipped.
    pub fn corrupt_binary(&self, hv: &mut BinaryHv, read_index: u64) -> usize {
        if self.ber == 0.0 {
            return 0;
        }
        let mut rng = self.rng_for_read(read_index);
        let mut flipped = 0;
        for i in 0..hv.dim() {
            if rng.random_bool(self.ber) {
                hv.flip_bit(i);
                flipped += 1;
            }
        }
        flipped
    }

    /// Corrupts an encoded query vector for one read, treating each
    /// element as a `bit_width`-bit two's-complement datapath word (the
    /// encoded dimensions stream through the same masked registers as the
    /// class elements). Returns the number of bits flipped.
    ///
    /// # Panics
    ///
    /// Panics if `bit_width` is not in `1..=16`.
    pub fn corrupt_query(&self, query: &mut IntHv, bit_width: u8, read_index: u64) -> usize {
        assert!(
            (1..=16).contains(&bit_width),
            "bit_width {bit_width} out of range 1..=16"
        );
        if self.ber == 0.0 {
            return 0;
        }
        let mut rng = self.rng_for_read(read_index);
        let bw = u32::from(bit_width);
        let mut flipped = 0;
        for v in query.values_mut() {
            if bw == 1 {
                if rng.random_bool(self.ber) {
                    *v = -*v;
                    flipped += 1;
                }
            } else {
                let mut bits = (*v as i16 as u16) & mask(bw);
                for b in 0..bw {
                    if rng.random_bool(self.ber) {
                        bits ^= 1 << b;
                        flipped += 1;
                    }
                }
                *v = i32::from(sign_extend(bits, bw));
            }
        }
        flipped
    }

    /// The fixed defect map of a persistent fault model over a memory of
    /// `n_classes × dim` elements at `bit_width` effective bits. Returns
    /// `None` for transient/accumulating models, which have no fixed map.
    ///
    /// Applying the map is exactly equivalent to
    /// [`corrupt_model`](FaultModel::corrupt_model) on a matching model.
    ///
    /// # Panics
    ///
    /// Panics if `bit_width` is not in `1..=16`.
    pub fn defect_map(&self, n_classes: usize, dim: usize, bit_width: u8) -> Option<DefectMap> {
        assert!(
            (1..=16).contains(&bit_width),
            "bit_width {bit_width} out of range 1..=16"
        );
        if self.kind != FaultKind::Persistent {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let bw = u32::from(bit_width);
        // Same draw order as `flip_class_bits` so map and corruption agree.
        let masks = (0..n_classes * dim)
            .map(|_| {
                let mut m = 0u16;
                if bw == 1 {
                    if self.ber > 0.0 && rng.random_bool(self.ber) {
                        m = 1;
                    }
                } else {
                    for b in 0..bw {
                        if self.ber > 0.0 && rng.random_bool(self.ber) {
                            m |= 1 << b;
                        }
                    }
                }
                m
            })
            .collect();
        Some(DefectMap {
            n_classes,
            dim,
            bit_width,
            masks,
        })
    }
}

/// The fixed stuck-cell population of a persistent fault campaign: one XOR
/// mask of defective effective bits per stored class element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefectMap {
    n_classes: usize,
    dim: usize,
    bit_width: u8,
    masks: Vec<u16>,
}

impl DefectMap {
    /// Number of classes the map covers.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Dimensionality the map covers.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Effective bit-width the map covers.
    pub fn bit_width(&self) -> u8 {
        self.bit_width
    }

    /// Total number of defective bits.
    pub fn stuck_bits(&self) -> usize {
        self.masks.iter().map(|m| m.count_ones() as usize).sum()
    }

    /// Applies the defect map to a matching model (flipping every stuck
    /// bit). Returns the number of bits flipped.
    ///
    /// # Errors
    ///
    /// Returns an error if the model's shape or bit-width differs from the
    /// map's.
    pub fn apply(&self, model: &mut QuantizedModel) -> Result<usize, HdcError> {
        if model.n_classes() != self.n_classes || model.bit_width() != self.bit_width {
            return Err(HdcError::invalid(
                "model",
                "shape or bit-width differs from the defect map",
            ));
        }
        if model.dim() != self.dim {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim,
                actual: model.dim(),
            });
        }
        let bw = u32::from(self.bit_width);
        let mut flipped = 0;
        for (class, row_masks) in model
            .classes_mut()
            .iter_mut()
            .zip(self.masks.chunks(self.dim))
        {
            for (v, &m) in class.iter_mut().zip(row_masks) {
                if m == 0 {
                    continue;
                }
                flipped += m.count_ones() as usize;
                *v = unpack_bits(pack_bits(*v, bw) ^ m, bw);
            }
        }
        Ok(flipped)
    }
}

/// Flips each effective bit of each class element independently with
/// probability `ber`, drawing from `rng` in class-major element order
/// (one draw per effective bit at every width, so the RNG stream is
/// width-stable). All packing goes through
/// [`pack_bits`]/[`unpack_bits`](crate::quant::unpack_bits), which keep
/// 1-bit sign semantics intact. Shared by [`FaultModel`] and
/// [`QuantizedModel::inject_bit_flips`].
pub(crate) fn flip_class_bits(
    classes: &mut [Vec<i16>],
    bw: u32,
    ber: f64,
    rng: &mut StdRng,
) -> usize {
    let mut flipped = 0;
    for class in classes {
        for v in class.iter_mut() {
            let bits = pack_bits(*v, bw);
            let mut noisy = bits;
            for b in 0..bw {
                if rng.random_bool(ber) {
                    noisy ^= 1 << b;
                    flipped += 1;
                }
            }
            if noisy != bits {
                *v = unpack_bits(noisy, bw);
            }
        }
    }
    flipped
}

/// SplitMix64 finalizer: decorrelates consecutive read indices into
/// independent seed offsets. Maps 0 to 0, which keeps read 0 of a
/// transient model on the legacy `inject_bit_flips` stream.
fn mix64(x: u64) -> u64 {
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HdcModel;

    fn golden(dim: usize, bw: u8) -> QuantizedModel {
        let a = IntHv::from(BinaryHv::random_seeded(dim, 11).unwrap());
        let b = IntHv::from(BinaryHv::random_seeded(dim, 22).unwrap());
        let model = HdcModel::fit(&[a, b], &[0, 1], 2).unwrap();
        QuantizedModel::from_model(&model, bw).unwrap()
    }

    #[test]
    fn invalid_ber_rejected() {
        assert!(FaultModel::transient(-0.1, 1).is_err());
        assert!(FaultModel::persistent(1.5, 1).is_err());
        assert!(FaultModel::accumulating(f64::NAN, 1).is_err());
        assert!(FaultModel::transient(0.0, 1).is_ok());
        assert!(FaultModel::persistent(1.0, 1).is_ok());
    }

    #[test]
    fn zero_ber_is_a_no_op() {
        let g = golden(512, 4);
        let fault = FaultModel::transient(0.0, 9).unwrap();
        let mut m = g.clone();
        assert_eq!(fault.corrupt_model(&mut m, 0), 0);
        assert_eq!(m, g);
        let mut hv = BinaryHv::random_seeded(256, 5).unwrap();
        let before = hv.clone();
        assert_eq!(fault.corrupt_binary(&mut hv, 0), 0);
        assert_eq!(hv, before);
    }

    #[test]
    fn transient_reads_are_independent_but_reproducible() {
        let g = golden(1024, 8);
        let fault = FaultModel::transient(0.02, 3).unwrap();
        let mut a0 = g.clone();
        let mut a1 = g.clone();
        let mut b0 = g.clone();
        fault.corrupt_model(&mut a0, 0);
        fault.corrupt_model(&mut a1, 1);
        fault.corrupt_model(&mut b0, 0);
        assert_ne!(a0, a1, "different reads see different noise");
        assert_eq!(a0, b0, "same (seed, read) reproduces exactly");
    }

    #[test]
    fn persistent_reads_are_identical_across_read_indices() {
        let g = golden(1024, 8);
        let fault = FaultModel::persistent(0.02, 3).unwrap();
        let mut a = g.clone();
        let mut b = g.clone();
        fault.corrupt_model(&mut a, 0);
        fault.corrupt_model(&mut b, 77);
        assert_eq!(a, b);
        assert_ne!(a, g, "2% of 16k bits flips something");
    }

    #[test]
    fn defect_map_matches_persistent_corruption() {
        let g = golden(512, 4);
        let fault = FaultModel::persistent(0.05, 13).unwrap();
        let map = fault
            .defect_map(g.n_classes(), g.dim(), g.bit_width())
            .unwrap();
        let mut via_corrupt = g.clone();
        let corrupted_bits = fault.corrupt_model(&mut via_corrupt, 0);
        let mut via_map = g.clone();
        let applied_bits = map.apply(&mut via_map).unwrap();
        assert_eq!(via_corrupt, via_map);
        assert_eq!(corrupted_bits, applied_bits);
        assert_eq!(map.stuck_bits(), applied_bits);
    }

    #[test]
    fn defect_map_absent_for_transient() {
        let fault = FaultModel::transient(0.05, 13).unwrap();
        assert!(fault.defect_map(2, 128, 4).is_none());
    }

    #[test]
    fn defect_map_rejects_mismatched_models() {
        let g = golden(512, 4);
        let fault = FaultModel::persistent(0.05, 13).unwrap();
        let map = fault
            .defect_map(g.n_classes(), g.dim(), g.bit_width())
            .unwrap();
        let mut wrong_bw = golden(512, 8);
        assert!(map.apply(&mut wrong_bw).is_err());
        let mut wrong_dim = golden(256, 4);
        assert!(map.apply(&mut wrong_dim).is_err());
    }

    #[test]
    fn transient_read_zero_matches_inject_bit_flips() {
        let g = golden(1024, 8);
        let seed = 42;
        let ber = 0.03;
        let mut via_inject = g.clone();
        let inject_flips = via_inject.inject_bit_flips(ber, seed).unwrap();
        let mut via_fault = g.clone();
        let fault_flips = FaultModel::transient(ber, seed)
            .unwrap()
            .corrupt_model(&mut via_fault, 0);
        assert_eq!(via_inject, via_fault);
        assert_eq!(inject_flips, fault_flips);
    }

    #[test]
    fn binary_corruption_tracks_ber() {
        let mut hv = BinaryHv::random_seeded(8192, 1).unwrap();
        let fault = FaultModel::transient(0.1, 5).unwrap();
        let flipped = fault.corrupt_binary(&mut hv, 0);
        let expected = 8192.0 * 0.1;
        assert!(
            (flipped as f64) > expected * 0.6 && (flipped as f64) < expected * 1.4,
            "flipped {flipped} (expected ~{expected})"
        );
    }

    #[test]
    fn query_corruption_respects_bit_width_and_sign() {
        let mut q = IntHv::from_values(vec![3, -3, 1, 0, 2, -1, 1, 2]).unwrap();
        let fault = FaultModel::transient(1.0, 4).unwrap();
        // With BER 1 every effective bit flips: 3-bit two's complement
        // 011 -> 100 = -4, 101 -> 010 = 2, etc.
        fault.corrupt_query(&mut q, 3, 0);
        assert_eq!(q.values(), &[-4, 2, -2, -1, -3, 0, -2, -3]);
        // 1-bit queries negate.
        let mut s = IntHv::from_values(vec![1, -1, 1]).unwrap();
        fault.corrupt_query(&mut s, 1, 0);
        assert_eq!(s.values(), &[-1, 1, -1]);
    }

    #[test]
    fn accumulating_faults_accumulate() {
        let g = golden(1024, 8);
        let fault = FaultModel::accumulating(0.01, 6).unwrap();
        let mut stored = g.clone();
        let mut distance_prev = 0usize;
        for read in 0..5 {
            fault.corrupt_model(&mut stored, read);
            let distance: usize = stored
                .class(0)
                .iter()
                .zip(g.class(0))
                .filter(|(a, b)| a != b)
                .count()
                + stored
                    .class(1)
                    .iter()
                    .zip(g.class(1))
                    .filter(|(a, b)| a != b)
                    .count();
            assert!(
                distance + 8 >= distance_prev,
                "damage should trend upward: {distance_prev} -> {distance}"
            );
            distance_prev = distance;
        }
        assert!(distance_prev > 0, "five reads at 1% must leave damage");
    }
}
