//! Evaluation metrics: accuracy, confusion matrices, normalized mutual
//! information (the clustering score of Table 2), and the geometric mean
//! used throughout the paper's cross-dataset summaries.

use crate::HdcError;

/// Fraction of predictions equal to their labels.
///
/// # Errors
///
/// Returns an error if the slices have different lengths or are empty.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> Result<f64, HdcError> {
    if predictions.is_empty() {
        return Err(HdcError::EmptyInput);
    }
    if predictions.len() != labels.len() {
        return Err(HdcError::invalid(
            "labels",
            format!(
                "got {} labels for {} predictions",
                labels.len(),
                predictions.len()
            ),
        ));
    }
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    Ok(correct as f64 / predictions.len() as f64)
}

/// Confusion matrix: `matrix[actual][predicted]` counts.
///
/// # Errors
///
/// Returns an error on mismatched lengths, empty input, or labels outside
/// `0..n_classes`.
pub fn confusion_matrix(
    predictions: &[usize],
    labels: &[usize],
    n_classes: usize,
) -> Result<Vec<Vec<usize>>, HdcError> {
    if predictions.is_empty() {
        return Err(HdcError::EmptyInput);
    }
    if predictions.len() != labels.len() {
        return Err(HdcError::invalid(
            "labels",
            "predictions and labels must have equal lengths",
        ));
    }
    let mut matrix = vec![vec![0usize; n_classes]; n_classes];
    for (&p, &l) in predictions.iter().zip(labels) {
        if p >= n_classes {
            return Err(HdcError::LabelOutOfRange {
                label: p,
                n_classes,
            });
        }
        if l >= n_classes {
            return Err(HdcError::LabelOutOfRange {
                label: l,
                n_classes,
            });
        }
        matrix[l][p] += 1;
    }
    Ok(matrix)
}

/// Normalized mutual information between two labelings (arithmetic-mean
/// normalization, matching scikit-learn's default used by the paper's
/// Table 2). Returns a value in `[0, 1]`; two identical labelings score 1,
/// independent labelings score ~0. When both labelings are constant, the
/// score is defined as 1 if they induce identical partitions and 0
/// otherwise (scikit-learn convention: returns 0 when either entropy is 0
/// unless both partitions are identical — here both constant partitions
/// are identical by definition, so 1).
///
/// ```
/// use generic_hdc::metrics::normalized_mutual_information;
///
/// # fn main() -> Result<(), generic_hdc::HdcError> {
/// // Identical partitions (up to renaming) score 1.
/// let nmi = normalized_mutual_information(&[0, 0, 1, 1], &[1, 1, 0, 0])?;
/// assert!((nmi - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns an error on mismatched lengths or empty input.
pub fn normalized_mutual_information(a: &[usize], b: &[usize]) -> Result<f64, HdcError> {
    if a.is_empty() {
        return Err(HdcError::EmptyInput);
    }
    if a.len() != b.len() {
        return Err(HdcError::invalid("b", "labelings must have equal lengths"));
    }
    let n = a.len() as f64;
    let ka = 1 + *a.iter().max().expect("non-empty");
    let kb = 1 + *b.iter().max().expect("non-empty");
    let mut joint = vec![vec![0usize; kb]; ka];
    let mut ca = vec![0usize; ka];
    let mut cb = vec![0usize; kb];
    for (&x, &y) in a.iter().zip(b) {
        joint[x][y] += 1;
        ca[x] += 1;
        cb[y] += 1;
    }
    let h = |counts: &[usize]| -> f64 {
        counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.ln()
            })
            .sum()
    };
    let ha = h(&ca);
    let hb = h(&cb);
    let mut mi = 0.0;
    for (x, row) in joint.iter().enumerate() {
        for (y, &c) in row.iter().enumerate() {
            if c > 0 {
                let pxy = c as f64 / n;
                let px = ca[x] as f64 / n;
                let py = cb[y] as f64 / n;
                mi += pxy * (pxy / (px * py)).ln();
            }
        }
    }
    let denom = 0.5 * (ha + hb);
    if denom == 0.0 {
        // Both labelings constant: identical partitions.
        return Ok(1.0);
    }
    Ok((mi / denom).clamp(0.0, 1.0))
}

/// Geometric mean of strictly positive values (the cross-dataset summary
/// statistic of Figs. 3 and 8).
///
/// # Errors
///
/// Returns an error if `values` is empty or any value is not strictly
/// positive and finite.
pub fn geometric_mean(values: &[f64]) -> Result<f64, HdcError> {
    if values.is_empty() {
        return Err(HdcError::EmptyInput);
    }
    if let Some(&bad) = values.iter().find(|&&v| !(v > 0.0 && v.is_finite())) {
        return Err(HdcError::invalid(
            "values",
            format!("geometric mean requires positive finite values, got {bad}"),
        ));
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Ok((log_sum / values.len() as f64).exp())
}

/// Sample standard deviation (the STDV row of Table 1).
///
/// # Errors
///
/// Returns an error if fewer than two values are supplied.
pub fn std_dev(values: &[f64]) -> Result<f64, HdcError> {
    if values.len() < 2 {
        return Err(HdcError::invalid(
            "values",
            "standard deviation requires at least two values",
        ));
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
    Ok(var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 1]).unwrap(), 2.0 / 3.0);
        assert_eq!(accuracy(&[1, 1], &[1, 1]).unwrap(), 1.0);
    }

    #[test]
    fn accuracy_validates() {
        assert!(accuracy(&[], &[]).is_err());
        assert!(accuracy(&[0], &[0, 1]).is_err());
    }

    #[test]
    fn confusion_matrix_counts() {
        let m = confusion_matrix(&[0, 1, 1, 0], &[0, 1, 0, 0], 2).unwrap();
        assert_eq!(m[0][0], 2); // actual 0 predicted 0
        assert_eq!(m[0][1], 1); // actual 0 predicted 1
        assert_eq!(m[1][1], 1);
        assert_eq!(m[1][0], 0);
    }

    #[test]
    fn confusion_matrix_rejects_out_of_range() {
        assert!(confusion_matrix(&[2], &[0], 2).is_err());
        assert!(confusion_matrix(&[0], &[2], 2).is_err());
    }

    #[test]
    fn nmi_identical_is_one() {
        let a = [0, 0, 1, 1, 2, 2];
        assert!((normalized_mutual_information(&a, &a).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nmi_is_permutation_invariant() {
        let a = [0, 0, 1, 1, 2, 2];
        let b = [2, 2, 0, 0, 1, 1];
        assert!((normalized_mutual_information(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nmi_is_symmetric() {
        let a = [0, 0, 1, 1, 1, 0, 2, 2];
        let b = [0, 1, 1, 1, 0, 0, 2, 1];
        let ab = normalized_mutual_information(&a, &b).unwrap();
        let ba = normalized_mutual_information(&b, &a).unwrap();
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn nmi_of_unrelated_labelings_is_low() {
        // Independent alternating patterns over 64 samples.
        let a: Vec<usize> = (0..64).map(|i| i % 2).collect();
        let b: Vec<usize> = (0..64).map(|i| (i / 2) % 2).collect();
        let nmi = normalized_mutual_information(&a, &b).unwrap();
        assert!(nmi < 0.05, "nmi = {nmi}");
    }

    #[test]
    fn nmi_constant_labelings() {
        let a = [0, 0, 0];
        assert_eq!(normalized_mutual_information(&a, &a).unwrap(), 1.0);
    }

    #[test]
    fn nmi_matches_hand_computed_reference() {
        // a = [0,0,1,1], b = [0,0,1,2]:
        // H(a) = ln 2, H(b) = 1.5 ln 2 (0.5·ln2 + 2·0.25·ln4), MI = ln 2,
        // arithmetic normalization: ln2 / (0.5 · 2.5 · ln2) = 0.8.
        let nmi = normalized_mutual_information(&[0, 0, 1, 1], &[0, 0, 1, 2]).unwrap();
        assert!((nmi - 0.8).abs() < 1e-12, "nmi = {nmi}");
    }

    #[test]
    fn geometric_mean_basic() {
        assert!((geometric_mean(&[1.0, 100.0]).unwrap() - 10.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_validates() {
        assert!(geometric_mean(&[]).is_err());
        assert!(geometric_mean(&[1.0, 0.0]).is_err());
        assert!(geometric_mean(&[1.0, -2.0]).is_err());
    }

    #[test]
    fn std_dev_basic() {
        let s = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s - 2.138_089_935f64).abs() < 1e-6);
        assert!(std_dev(&[1.0]).is_err());
    }
}
