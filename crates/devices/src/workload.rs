//! Op-count models for the HDC pipeline and each classical-ML baseline,
//! parameterized by dataset and model shape. One record = one input
//! (inference) or one full run (training/clustering), priced by
//! [`Device`](crate::Device).

use crate::ops::OpCounts;

/// Shape of an HDC pipeline (the GENERIC encoding by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HdcShape {
    /// Hypervector dimensionality.
    pub dim: usize,
    /// Features per input.
    pub n_features: usize,
    /// Sliding-window length.
    pub window: usize,
    /// Number of classes (or centroids).
    pub n_classes: usize,
    /// Whether per-window id binding is enabled.
    pub id_binding: bool,
}

impl HdcShape {
    /// Number of sliding windows.
    ///
    /// # Panics
    ///
    /// Panics if the shape is degenerate (`window` of zero or larger than
    /// `n_features`) — silently costing such a shape would underestimate
    /// every downstream energy figure.
    pub fn n_windows(&self) -> usize {
        assert!(
            self.window >= 1 && self.window <= self.n_features,
            "window {} must be in 1..=n_features ({})",
            self.window,
            self.n_features
        );
        self.n_features - self.window + 1
    }

    /// Encoding one input: per window, `n` XORs of D-bit vectors (plus the
    /// id binding) and a D-wide ±1 accumulation; levels stream from
    /// memory.
    pub fn encode(&self) -> OpCounts {
        let d = self.dim as f64;
        let w = self.n_windows() as f64;
        let n = self.window as f64;
        let binds = n - 1.0 + if self.id_binding { 1.0 } else { 0.0 };
        OpCounts {
            bit_ops: w * d * (binds + 1.0), // XORs + accumulate
            mac: 0.0,
            mem_bytes: w * n * d / 8.0 + d * 4.0,
        }
    }

    /// Similarity search of one encoded query against all classes.
    pub fn score(&self) -> OpCounts {
        let d = self.dim as f64;
        let c = self.n_classes as f64;
        OpCounts {
            mac: c * d,
            bit_ops: 0.0,
            mem_bytes: c * d * 2.0, // 16-bit class elements
        }
    }

    /// One inference = encode + score.
    pub fn infer(&self) -> OpCounts {
        self.encode() + self.score()
    }

    /// Full training: one bundling pass plus `epochs` retraining epochs in
    /// which every sample is scored and a `mispredict_rate` fraction
    /// triggers two class updates (D-wide add/subtract).
    pub fn train(&self, n_samples: usize, epochs: usize, mispredict_rate: f64) -> OpCounts {
        let d = self.dim as f64;
        let n = n_samples as f64;
        let bundle = (self.encode() + OpCounts::new(0.0, d, d * 4.0)) * n;
        let per_epoch = (self.infer() + OpCounts::new(0.0, 2.0 * d * mispredict_rate, d * 8.0)) * n;
        bundle + per_epoch * epochs as f64
    }

    /// One clustering epoch over `n_samples` inputs with `k` centroids:
    /// score against k centroids + bundle into the copy centroid.
    pub fn cluster_epoch(&self, n_samples: usize, k: usize) -> OpCounts {
        let d = self.dim as f64;
        let per_input = self.encode()
            + OpCounts::new(k as f64 * d, 0.0, k as f64 * d * 2.0)
            + OpCounts::new(0.0, d, d * 4.0);
        per_input * n_samples as f64
    }
}

/// MLP / DNN shape: dense layers including input and output widths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MlpShape {
    /// Layer widths from input to output, e.g. `[64, 100, 10]`.
    pub layers: Vec<usize>,
}

impl MlpShape {
    /// Trainable parameter count.
    pub fn parameters(&self) -> usize {
        self.layers.windows(2).map(|w| w[0] * w[1] + w[1]).sum()
    }

    /// One forward pass.
    pub fn infer(&self) -> OpCounts {
        let p = self.parameters() as f64;
        OpCounts::new(p, 0.0, p * 4.0)
    }

    /// Training: forward + backward + update ≈ 3× forward per sample per
    /// epoch.
    pub fn train(&self, n_samples: usize, epochs: usize) -> OpCounts {
        self.infer() * (3.0 * n_samples as f64 * epochs as f64)
    }

    /// An architecture search multiplies training cost by the number of
    /// candidates evaluated (the AutoKeras/DNN baseline).
    pub fn search_train(&self, n_samples: usize, epochs: usize, candidates: usize) -> OpCounts {
        self.train(n_samples, epochs) * candidates as f64
    }
}

/// RBF-kernel SVM shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SvmShape {
    /// Stored support vectors (≈ the training-set size for kernel SVMs on
    /// small data).
    pub n_support: usize,
    /// Features per sample.
    pub n_features: usize,
    /// Number of classes (one-vs-rest machines).
    pub n_classes: usize,
}

impl SvmShape {
    /// One inference: kernel row against every support vector plus the
    /// per-class weighted sums.
    pub fn infer(&self) -> OpCounts {
        let sv = self.n_support as f64;
        let d = self.n_features as f64;
        let k = self.n_classes as f64;
        OpCounts::new(sv * (d + k), 0.0, sv * d * 4.0)
    }

    /// Training: Gram matrix + `epochs` kernel-Pegasos sweeps.
    pub fn train(&self, n_samples: usize, epochs: usize) -> OpCounts {
        let n = n_samples as f64;
        let d = self.n_features as f64;
        let k = self.n_classes as f64;
        let gram = OpCounts::new(n * n * d / 2.0, 0.0, n * n * 4.0);
        let sweeps = OpCounts::new(epochs as f64 * n * n * k, 0.0, epochs as f64 * n * n * 4.0);
        gram + sweeps
    }
}

/// Random-forest shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForestShape {
    /// Number of trees.
    pub n_trees: usize,
    /// Average decision depth.
    pub depth: usize,
    /// Features per sample.
    pub n_features: usize,
}

impl ForestShape {
    /// One inference: a root-to-leaf compare chain per tree.
    pub fn infer(&self) -> OpCounts {
        let work = (self.n_trees * self.depth) as f64;
        OpCounts::new(0.0, work, work * 8.0)
    }

    /// Training: per tree, ~`n log n` sort work on `sqrt(d)` candidate
    /// features at each of `depth` levels.
    pub fn train(&self, n_samples: usize) -> OpCounts {
        let n = n_samples as f64;
        let feats = (self.n_features as f64).sqrt().max(1.0);
        let per_tree = n * n.log2().max(1.0) * feats * self.depth as f64;
        OpCounts::new(0.0, per_tree * self.n_trees as f64, per_tree * 4.0)
    }
}

/// k-NN shape (training is storage; inference scans the training set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnnShape {
    /// Stored training samples.
    pub n_train: usize,
    /// Features per sample.
    pub n_features: usize,
}

impl KnnShape {
    /// One inference: distance to every stored sample.
    pub fn infer(&self) -> OpCounts {
        let work = (self.n_train * self.n_features) as f64;
        OpCounts::new(work, 0.0, work * 4.0)
    }

    /// Training: copying the data.
    pub fn train(&self) -> OpCounts {
        OpCounts::new(0.0, 0.0, (self.n_train * self.n_features) as f64 * 4.0)
    }
}

/// Logistic-regression shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LrShape {
    /// Features per sample.
    pub n_features: usize,
    /// Number of classes.
    pub n_classes: usize,
}

impl LrShape {
    /// One inference.
    pub fn infer(&self) -> OpCounts {
        let p = (self.n_features * self.n_classes) as f64;
        OpCounts::new(p, 0.0, p * 4.0)
    }

    /// Training with full-batch gradient descent.
    pub fn train(&self, n_samples: usize, epochs: usize) -> OpCounts {
        self.infer() * (2.0 * n_samples as f64 * epochs as f64)
    }
}

/// K-means shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KMeansShape {
    /// Points being clustered.
    pub n_points: usize,
    /// Clusters.
    pub k: usize,
    /// Features per point.
    pub n_features: usize,
}

impl KMeansShape {
    /// One Lloyd iteration: every point against every centroid plus the
    /// centroid update.
    pub fn iteration(&self) -> OpCounts {
        let n = self.n_points as f64;
        let k = self.k as f64;
        let d = self.n_features as f64;
        OpCounts::new(n * k * d + n * d, 0.0, n * d * 4.0 + k * d * 4.0)
    }

    /// A full run of `iters` iterations.
    pub fn run(&self, iters: usize) -> OpCounts {
        self.iteration() * iters as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> HdcShape {
        HdcShape {
            dim: 4096,
            n_features: 64,
            window: 3,
            n_classes: 10,
            id_binding: true,
        }
    }

    #[test]
    fn hdc_encode_dominates_inference_bit_ops() {
        let s = shape();
        let inf = s.infer();
        assert!(inf.bit_ops > 1e6, "bit ops = {}", inf.bit_ops);
        assert_eq!(inf.mac, (10 * 4096) as f64);
    }

    #[test]
    #[should_panic(expected = "window 10 must be in")]
    fn degenerate_window_panics() {
        let bad = HdcShape {
            window: 10,
            n_features: 4,
            ..shape()
        };
        let _ = bad.n_windows();
    }

    #[test]
    fn disabling_ids_reduces_encode_work() {
        let with = shape().encode();
        let without = HdcShape {
            id_binding: false,
            ..shape()
        }
        .encode();
        assert!(without.bit_ops < with.bit_ops);
    }

    #[test]
    fn hdc_training_scales_with_epochs_and_samples() {
        let s = shape();
        let small = s.train(100, 5, 0.2);
        let big = s.train(200, 10, 0.2);
        assert!(big.bit_ops > 3.0 * small.bit_ops);
        assert!(big.mac > 3.0 * small.mac);
    }

    #[test]
    fn mlp_parameter_count() {
        let m = MlpShape {
            layers: vec![64, 100, 10],
        };
        assert_eq!(m.parameters(), 64 * 100 + 100 + 100 * 10 + 10);
        assert!(m.train(100, 10).mac > m.infer().mac * 1000.0);
    }

    #[test]
    fn dnn_search_is_costlier_than_plain_training() {
        let m = MlpShape {
            layers: vec![64, 128, 64, 10],
        };
        assert!(m.search_train(100, 10, 5).mac > m.train(100, 10).mac * 4.0);
    }

    #[test]
    fn rf_inference_is_tiny() {
        let f = ForestShape {
            n_trees: 40,
            depth: 12,
            n_features: 64,
        };
        assert!(f.infer().bit_ops < 1_000.0);
        assert!(f.train(400).bit_ops > f.infer().bit_ops * 100.0);
    }

    #[test]
    fn svm_training_is_quadratic_in_samples() {
        let s = SvmShape {
            n_support: 400,
            n_features: 64,
            n_classes: 10,
        };
        let t1 = s.train(200, 30);
        let t2 = s.train(400, 30);
        assert!(t2.mac > 3.5 * t1.mac);
    }

    #[test]
    fn kmeans_iteration_counts() {
        let k = KMeansShape {
            n_points: 800,
            k: 2,
            n_features: 2,
        };
        let it = k.iteration();
        assert_eq!(it.mac, 800.0 * 2.0 * 2.0 + 800.0 * 2.0);
        assert_eq!(k.run(10).mac, it.mac * 10.0);
    }

    #[test]
    fn knn_and_lr_counts() {
        let knn = KnnShape {
            n_train: 400,
            n_features: 64,
        };
        assert_eq!(knn.infer().mac, 25_600.0);
        let lr = LrShape {
            n_features: 64,
            n_classes: 10,
        };
        assert_eq!(lr.infer().mac, 640.0);
    }
}
