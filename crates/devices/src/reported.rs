//! Published HDC accelerators used as Fig. 9 baselines, normalized to
//! 14 nm with the [`scaling`](crate::scaling) factors exactly as §5.2.2
//! does ("we scale their reported numbers to 14 nm according to\[21\] for a
//! fair comparison").
//!
//! The absolute per-inference figures below are representative workload
//! averages consistent with the relative positions the paper reports
//! (GENERIC-LP uses 4.1× less energy than tiny-HD and 15.7× less than the
//! Datta et al. processor); the original papers report per-application
//! numbers we cannot reproduce verbatim, so the *ratios* are the
//! calibration target (see DESIGN.md §2).

use crate::scaling::{energy_to_14nm, TechNode};

/// A published accelerator data point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReportedAccelerator {
    /// Name as it appears in Fig. 9.
    pub name: &'static str,
    /// Process node of the published implementation.
    pub node: TechNode,
    /// Average per-inference energy at the published node, µJ.
    pub inference_energy_uj_reported: f64,
    /// Whether the design supports on-device training.
    pub supports_training: bool,
}

impl ReportedAccelerator {
    /// Per-inference energy scaled to 14 nm, µJ.
    pub fn inference_energy_uj_14nm(&self) -> f64 {
        energy_to_14nm(self.inference_energy_uj_reported, self.node)
    }

    /// Datta et al., *A programmable hyper-dimensional processor
    /// architecture for human-centric IoT* (JETCAS 2019) — trainable,
    /// but ~10.3 % less accurate than GENERIC and 15.7× less efficient
    /// after scaling.
    pub fn datta2019() -> Self {
        ReportedAccelerator {
            name: "Datta et al. [10]",
            node: TechNode::N28,
            inference_energy_uj_reported: 0.188,
            supports_training: true,
        }
    }

    /// tiny-HD (DATE 2021) — an inference-only engine with smaller
    /// memories; GENERIC-LP still undercuts it by 4.1× while adding
    /// training support.
    pub fn tiny_hd() -> Self {
        ReportedAccelerator {
            name: "tiny-HD [8]",
            node: TechNode::N40,
            inference_energy_uj_reported: 0.0812,
            supports_training: false,
        }
    }

    /// Both Fig. 9 baselines.
    pub fn all() -> [ReportedAccelerator; 2] {
        [Self::datta2019(), Self::tiny_hd()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_shrinks_reported_energies() {
        for acc in ReportedAccelerator::all() {
            assert!(acc.inference_energy_uj_14nm() < acc.inference_energy_uj_reported);
        }
    }

    #[test]
    fn datta_remains_costlier_than_tiny_hd_after_scaling() {
        // The trainable processor pays for its flexibility (larger
        // memories): Fig. 9 shows it ~3.8× above tiny-HD at 14 nm.
        let datta = ReportedAccelerator::datta2019().inference_energy_uj_14nm();
        let tiny = ReportedAccelerator::tiny_hd().inference_energy_uj_14nm();
        let ratio = datta / tiny;
        assert!((2.0..6.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn only_datta_supports_training() {
        assert!(ReportedAccelerator::datta2019().supports_training);
        assert!(!ReportedAccelerator::tiny_hd().supports_training);
    }
}
