//! CMOS technology-node scaling after Stillmaker & Baas (Integration,
//! 2017) — the normalization §5.2.2 applies to published accelerator
//! numbers ("we scale their reported numbers to 14 nm according to\[21\]
//! for a fair comparison").
//!
//! The factors below are per-operation energy and gate-delay multipliers
//! relative to the 14 nm node, interpolated from the polynomial fits of
//! the paper for the general-purpose (superthreshold) operating corner.

/// Process nodes covered by the scaling tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum TechNode {
    /// 180 nm.
    N180,
    /// 130 nm.
    N130,
    /// 90 nm.
    N90,
    /// 65 nm.
    N65,
    /// 45 nm.
    N45,
    /// 40 nm.
    N40,
    /// 32 nm.
    N32,
    /// 28 nm.
    N28,
    /// 22 nm.
    N22,
    /// 20 nm.
    N20,
    /// 16 nm.
    N16,
    /// 14 nm.
    N14,
    /// 10 nm.
    N10,
    /// 7 nm.
    N7,
}

impl TechNode {
    /// Feature size in nanometres.
    pub fn nanometres(self) -> u32 {
        match self {
            TechNode::N180 => 180,
            TechNode::N130 => 130,
            TechNode::N90 => 90,
            TechNode::N65 => 65,
            TechNode::N45 => 45,
            TechNode::N40 => 40,
            TechNode::N32 => 32,
            TechNode::N28 => 28,
            TechNode::N22 => 22,
            TechNode::N20 => 20,
            TechNode::N16 => 16,
            TechNode::N14 => 14,
            TechNode::N10 => 10,
            TechNode::N7 => 7,
        }
    }

    /// Per-operation energy relative to 14 nm.
    pub fn energy_vs_14nm(self) -> f64 {
        match self {
            TechNode::N180 => 38.0,
            TechNode::N130 => 21.0,
            TechNode::N90 => 11.0,
            TechNode::N65 => 6.7,
            TechNode::N45 => 4.2,
            TechNode::N40 => 3.8,
            TechNode::N32 => 2.8,
            TechNode::N28 => 2.3,
            TechNode::N22 => 1.75,
            TechNode::N20 => 1.55,
            TechNode::N16 => 1.15,
            TechNode::N14 => 1.0,
            TechNode::N10 => 0.78,
            TechNode::N7 => 0.56,
        }
    }

    /// Gate delay relative to 14 nm.
    pub fn delay_vs_14nm(self) -> f64 {
        match self {
            TechNode::N180 => 12.0,
            TechNode::N130 => 8.2,
            TechNode::N90 => 5.3,
            TechNode::N65 => 3.7,
            TechNode::N45 => 2.6,
            TechNode::N40 => 2.4,
            TechNode::N32 => 1.95,
            TechNode::N28 => 1.75,
            TechNode::N22 => 1.45,
            TechNode::N20 => 1.35,
            TechNode::N16 => 1.1,
            TechNode::N14 => 1.0,
            TechNode::N10 => 0.85,
            TechNode::N7 => 0.7,
        }
    }
}

/// Scales an energy measured at `from` to its 14 nm equivalent.
pub fn energy_to_14nm(energy: f64, from: TechNode) -> f64 {
    energy / from.energy_vs_14nm()
}

/// Scales a latency measured at `from` to its 14 nm equivalent.
pub fn delay_to_14nm(delay: f64, from: TechNode) -> f64 {
    delay / from.delay_vs_14nm()
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [TechNode; 14] = [
        TechNode::N180,
        TechNode::N130,
        TechNode::N90,
        TechNode::N65,
        TechNode::N45,
        TechNode::N40,
        TechNode::N32,
        TechNode::N28,
        TechNode::N22,
        TechNode::N20,
        TechNode::N16,
        TechNode::N14,
        TechNode::N10,
        TechNode::N7,
    ];

    #[test]
    fn factors_shrink_with_feature_size() {
        for w in ALL.windows(2) {
            assert!(w[0].nanometres() > w[1].nanometres());
            assert!(w[0].energy_vs_14nm() > w[1].energy_vs_14nm());
            assert!(w[0].delay_vs_14nm() > w[1].delay_vs_14nm());
        }
    }

    #[test]
    fn fourteen_nm_is_identity() {
        assert_eq!(TechNode::N14.energy_vs_14nm(), 1.0);
        assert_eq!(energy_to_14nm(5.0, TechNode::N14), 5.0);
        assert_eq!(delay_to_14nm(2.0, TechNode::N14), 2.0);
    }

    #[test]
    fn scaling_from_older_nodes_reduces_energy() {
        let at_40nm = 10.0;
        let scaled = energy_to_14nm(at_40nm, TechNode::N40);
        assert!(scaled < at_40nm);
        assert!((scaled - 10.0 / 3.8).abs() < 1e-12);
    }
}
