//! Abstract operation counts that device models price.

use std::ops::{Add, AddAssign, Mul};

/// Operation counts of a workload (per invocation, e.g. per input or per
/// training run).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OpCounts {
    /// Wide multiply-accumulates (f32/f64 arithmetic in the ML baselines,
    /// integer dot-products in HDC scoring).
    pub mac: f64,
    /// Narrow/bit-level operations (XOR, popcount, compares, ±1
    /// accumulations) — the operations commodity devices are
    /// over-provisioned for (§1).
    pub bit_ops: f64,
    /// Bytes moved through the memory hierarchy.
    pub mem_bytes: f64,
}

impl OpCounts {
    /// Creates a count record.
    pub fn new(mac: f64, bit_ops: f64, mem_bytes: f64) -> Self {
        OpCounts {
            mac,
            bit_ops,
            mem_bytes,
        }
    }

    /// A zero record.
    pub fn zero() -> Self {
        OpCounts::default()
    }
}

impl Add for OpCounts {
    type Output = OpCounts;

    fn add(self, rhs: OpCounts) -> OpCounts {
        OpCounts {
            mac: self.mac + rhs.mac,
            bit_ops: self.bit_ops + rhs.bit_ops,
            mem_bytes: self.mem_bytes + rhs.mem_bytes,
        }
    }
}

impl AddAssign for OpCounts {
    fn add_assign(&mut self, rhs: OpCounts) {
        *self = *self + rhs;
    }
}

impl Mul<f64> for OpCounts {
    type Output = OpCounts;

    fn mul(self, rhs: f64) -> OpCounts {
        OpCounts {
            mac: self.mac * rhs,
            bit_ops: self.bit_ops * rhs,
            mem_bytes: self.mem_bytes * rhs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_works() {
        let a = OpCounts::new(1.0, 2.0, 3.0);
        let b = OpCounts::new(10.0, 20.0, 30.0);
        let c = a + b;
        assert_eq!(c, OpCounts::new(11.0, 22.0, 33.0));
        assert_eq!(a * 2.0, OpCounts::new(2.0, 4.0, 6.0));
        let mut d = OpCounts::zero();
        d += a;
        assert_eq!(d, a);
    }
}
