//! # generic-devices
//!
//! Analytical energy/latency cost models for the commodity devices and
//! published accelerators the GENERIC paper compares against (§3.3, §5.2):
//!
//! - [`Device`] — Raspberry Pi 3, a desktop CPU (i7-8700-class), and an
//!   NVIDIA Jetson TX2 edge GPU, modelled as op-throughput + memory
//!   bandwidth + active power. The paper measured these with a power
//!   meter; here the same *ratios* fall out of op counting (the
//!   substitution is documented in DESIGN.md §2.3).
//! - [`workload`] — op-count models for HDC (encode/train/infer/cluster)
//!   and each classical-ML baseline, parameterized by dataset and model
//!   shape.
//! - [`scaling`] — CMOS node-scaling factors after Stillmaker & Baas
//!   (*Scaling equations for the accurate prediction of CMOS device
//!   performance from 180 nm to 7 nm*, Integration 2017), used to
//!   normalize published accelerator numbers to 14 nm as §5.2.2 does.
//! - [`reported`] — the published HDC accelerators of Fig. 9 (Datta et
//!   al.\[10\] and tiny-HD\[8\]) with their energies scaled to 14 nm.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod ops;
pub mod reported;
pub mod scaling;
pub mod workload;

pub use device::Device;
pub use ops::OpCounts;
