//! Commodity-device cost models (Raspberry Pi 3, desktop CPU, Jetson TX2).
//!
//! The model is deliberately simple — serial op-class throughputs plus a
//! per-invocation overhead, multiplied by an active power — because the
//! paper's §3.3 conclusions are throughput/energy *ratios* between devices
//! and algorithm families. The constants are calibrated to the paper's
//! reported ratios:
//!
//! - the eGPU runs GENERIC inference with ~134× less energy and ~252×
//!   less time than the Raspberry Pi (bit-packing + parallelism),
//! - the CPU sits between them (~70×/30× worse than the eGPU for HDC),
//! - classical ML inference (a few k MACs) is dominated by invocation
//!   overhead, leaving HDC on commodity hardware an order of magnitude
//!   more expensive than RF/SVM — the gap that motivates the ASIC.

use crate::ops::OpCounts;

/// An execution platform priced by op-class throughputs and active power.
///
/// ```
/// use generic_devices::{Device, OpCounts};
///
/// let rpi = Device::raspberry_pi3();
/// let egpu = Device::jetson_tx2_egpu();
/// // An HDC-shaped inference: mostly bit-level work.
/// let ops = OpCounts::new(40_000.0, 2.0e6, 120_000.0);
/// // The eGPU's bit-packing makes it orders of magnitude cheaper.
/// assert!(rpi.energy_j(&ops, 1) > 50.0 * egpu.energy_j(&ops, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Device {
    /// Device name as it appears in the figures.
    pub name: &'static str,
    /// Active power draw, W.
    pub active_power_w: f64,
    /// Wide multiply-accumulate throughput, op/s.
    pub mac_per_s: f64,
    /// Effective narrow/bit-op throughput, op/s (includes the penalty of
    /// running inherently binary HDC kernels on word-oriented pipelines).
    pub bit_ops_per_s: f64,
    /// Memory bandwidth, B/s.
    pub mem_bytes_per_s: f64,
    /// Fixed per-invocation overhead, s (interpreter dispatch, kernel
    /// launch, cache warm-up).
    pub invocation_overhead_s: f64,
}

impl Device {
    /// Raspberry Pi 3 (quad Cortex-A53 @ 1.2 GHz, measured with a power
    /// meter in the paper).
    pub fn raspberry_pi3() -> Self {
        Device {
            name: "Raspberry Pi",
            active_power_w: 4.0,
            mac_per_s: 1.0e9,
            bit_ops_per_s: 0.08e9,
            mem_bytes_per_s: 1.0e9,
            invocation_overhead_s: 40e-6,
        }
    }

    /// Desktop CPU (Intel Core i7-8700 @ 3.2 GHz; power is the
    /// application-level increment, not TDP).
    pub fn desktop_cpu() -> Self {
        Device {
            name: "CPU",
            active_power_w: 17.5,
            mac_per_s: 50.0e9,
            bit_ops_per_s: 1.35e9,
            mem_bytes_per_s: 20.0e9,
            invocation_overhead_s: 3e-6,
        }
    }

    /// NVIDIA Jetson TX2 edge GPU with the paper's bit-packed HDC
    /// implementation (data packing for parallel XOR + memory reuse).
    pub fn jetson_tx2_egpu() -> Self {
        Device {
            name: "eGPU",
            active_power_w: 7.5,
            mac_per_s: 250.0e9,
            bit_ops_per_s: 40.0e9,
            mem_bytes_per_s: 30.0e9,
            invocation_overhead_s: 45e-6,
        }
    }

    /// Execution time for a workload split over `invocations` separate
    /// calls (1 for a streaming per-input inference; batched work can
    /// amortize the overhead).
    ///
    /// # Panics
    ///
    /// Panics if `invocations == 0`.
    pub fn execution_time_s(&self, ops: &OpCounts, invocations: u64) -> f64 {
        assert!(invocations > 0, "at least one invocation required");
        ops.mac / self.mac_per_s
            + ops.bit_ops / self.bit_ops_per_s
            + ops.mem_bytes / self.mem_bytes_per_s
            + self.invocation_overhead_s * invocations as f64
    }

    /// Energy for a workload: execution time × active power.
    ///
    /// # Panics
    ///
    /// Panics if `invocations == 0`.
    pub fn energy_j(&self, ops: &OpCounts, invocations: u64) -> f64 {
        self.execution_time_s(ops, invocations) * self.active_power_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A GENERIC-shaped inference: ~2e6 bit ops of encoding plus a 41k-MAC
    /// similarity search.
    fn hdc_inference_ops() -> OpCounts {
        OpCounts::new(41_000.0, 2.0e6, 120_000.0)
    }

    /// An RF-shaped inference: hundreds of compares, trivial arithmetic.
    fn rf_inference_ops() -> OpCounts {
        OpCounts::new(0.0, 500.0, 2_000.0)
    }

    #[test]
    fn egpu_dominates_rpi_for_hdc() {
        // §3.3: eGPU improves GENERIC inference energy/time by ~134×/252×
        // over the Raspberry Pi.
        let ops = hdc_inference_ops();
        let rpi = Device::raspberry_pi3();
        let egpu = Device::jetson_tx2_egpu();
        let t_ratio = rpi.execution_time_s(&ops, 1) / egpu.execution_time_s(&ops, 1);
        let e_ratio = rpi.energy_j(&ops, 1) / egpu.energy_j(&ops, 1);
        assert!((100.0..500.0).contains(&t_ratio), "time ratio {t_ratio}");
        assert!((60.0..300.0).contains(&e_ratio), "energy ratio {e_ratio}");
    }

    #[test]
    fn cpu_sits_between_rpi_and_egpu_for_hdc() {
        let ops = hdc_inference_ops();
        let rpi = Device::raspberry_pi3().energy_j(&ops, 1);
        let cpu = Device::desktop_cpu().energy_j(&ops, 1);
        let egpu = Device::jetson_tx2_egpu().energy_j(&ops, 1);
        assert!(egpu < cpu && cpu < rpi, "egpu {egpu}, cpu {cpu}, rpi {rpi}");
    }

    #[test]
    fn classical_ml_beats_hdc_on_every_device() {
        // §3.3 (i): conventional ML consumes less energy than HDC on all
        // devices.
        for device in [
            Device::raspberry_pi3(),
            Device::desktop_cpu(),
            Device::jetson_tx2_egpu(),
        ] {
            let hdc = device.energy_j(&hdc_inference_ops(), 1);
            let rf = device.energy_j(&rf_inference_ops(), 1);
            assert!(rf < hdc, "{}: rf {rf} vs hdc {hdc}", device.name);
        }
    }

    #[test]
    fn hdc_on_egpu_still_trails_rf_on_cpu() {
        // §3.3: GENERIC on the eGPU consumes ~12× more inference energy
        // than RF on the CPU (the most efficient baseline).
        let hdc = Device::jetson_tx2_egpu().energy_j(&hdc_inference_ops(), 1);
        let rf = Device::desktop_cpu().energy_j(&rf_inference_ops(), 1);
        let ratio = hdc / rf;
        assert!((4.0..40.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn batching_amortizes_overhead() {
        let ops = rf_inference_ops() * 100.0;
        let cpu = Device::desktop_cpu();
        let batched = cpu.execution_time_s(&ops, 1);
        let streaming = cpu.execution_time_s(&ops, 100);
        assert!(batched < streaming);
    }

    #[test]
    #[should_panic(expected = "at least one invocation")]
    fn zero_invocations_panics() {
        let _ = Device::desktop_cpu().execution_time_s(&OpCounts::zero(), 0);
    }
}
