//! Seeded scenario generation and the replay-token wire format.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Token format version prefix; bump when [`Scenario`] gains or loses a
/// field so stale reproducers fail loudly instead of replaying the wrong
/// pipeline.
pub const TOKEN_VERSION: &str = "v1";

/// One randomized end-to-end pipeline configuration.
///
/// Every field is drawn deterministically from the seed by
/// [`Scenario::generate`], and the whole scenario round-trips through a
/// compact replay token (`v1:seed=..:..`), which is what shrunk
/// reproducers and the `generic conformance --replay` subcommand
/// exchange.
///
/// The bounds respect the accelerator's architectural limits so every
/// scenario can run through the simulator stage unmodified: `dim` is a
/// positive multiple of 128 (≤ 1024 here, keeping scenarios fast),
/// `window <= n_features`, and `dim · n_classes` stays far below the
/// class-memory capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Seed for dataset synthesis and item memories.
    pub seed: u64,
    /// Training/query samples (labels assigned round-robin).
    pub n_samples: usize,
    /// Raw features per sample.
    pub n_features: usize,
    /// Hypervector dimensionality (positive multiple of 128).
    pub dim: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Encoder sliding-window length (`1..=n_features`).
    pub window: usize,
    /// Whether per-window id binding is enabled.
    pub id_binding: bool,
    /// Quantized model bit-width (1/2/4/8/16).
    pub bit_width: u8,
    /// On-demand dimension-reduction tier (multiple of 128, `<= dim`).
    pub reduced_dims: usize,
    /// Retraining epochs exercised differentially.
    pub epochs: usize,
    /// Whether the checkpoint-store save/recover cycle runs.
    pub checkpoint: bool,
}

impl Scenario {
    /// Draws a scenario deterministically from `seed`.
    pub fn generate(seed: u64) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
        let dim = 128 * rng.random_range(1..=8usize);
        let n_features = rng.random_range(4..=24usize);
        let n_classes = rng.random_range(2..=5usize);
        let n_samples = n_classes * rng.random_range(2..=9usize);
        let window = rng.random_range(1..=4usize.min(n_features));
        let id_binding = rng.random_bool(0.5);
        const WIDTHS: [u8; 5] = [1, 2, 4, 8, 16];
        let bit_width = WIDTHS[rng.random_range(0..WIDTHS.len())];
        let reduced_dims = 128 * rng.random_range(1..=dim / 128);
        let epochs = rng.random_range(0..=3usize);
        let checkpoint = rng.random_bool(0.5);
        Scenario {
            seed,
            n_samples,
            n_features,
            dim,
            n_classes,
            window,
            id_binding,
            bit_width,
            reduced_dims,
            epochs,
            checkpoint,
        }
    }

    /// Checks the architectural invariants every scenario must satisfy
    /// (generation and shrinking preserve them; hand-edited tokens might
    /// not).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.dim == 0 || !self.dim.is_multiple_of(128) {
            return Err(format!(
                "dim {} must be a positive multiple of 128",
                self.dim
            ));
        }
        if self.reduced_dims == 0
            || self.reduced_dims > self.dim
            || !self.reduced_dims.is_multiple_of(128)
        {
            return Err(format!(
                "reduced_dims {} must be a positive multiple of 128 up to dim {}",
                self.reduced_dims, self.dim
            ));
        }
        if self.n_features == 0 || self.n_features > 1024 {
            return Err(format!(
                "n_features {} out of range 1..=1024",
                self.n_features
            ));
        }
        if self.window == 0 || self.window > self.n_features {
            return Err(format!(
                "window {} out of range 1..={}",
                self.window, self.n_features
            ));
        }
        if self.n_classes < 2 {
            return Err(format!("n_classes {} must be at least 2", self.n_classes));
        }
        if self.dim * self.n_classes > 32 * 4096 {
            return Err(format!(
                "dim × n_classes {} exceeds the class-memory capacity",
                self.dim * self.n_classes
            ));
        }
        if !matches!(self.bit_width, 1 | 2 | 4 | 8 | 16) {
            return Err(format!(
                "bit_width {} not one of 1/2/4/8/16",
                self.bit_width
            ));
        }
        if self.n_samples < 2 {
            return Err(format!("n_samples {} must be at least 2", self.n_samples));
        }
        Ok(())
    }

    /// Serializes the scenario as a compact, human-readable replay token.
    pub fn token(&self) -> String {
        format!(
            "{TOKEN_VERSION}:seed={}:samples={}:features={}:dim={}:classes={}:window={}:id={}:bw={}:reduced={}:epochs={}:ckpt={}",
            self.seed,
            self.n_samples,
            self.n_features,
            self.dim,
            self.n_classes,
            self.window,
            u8::from(self.id_binding),
            self.bit_width,
            self.reduced_dims,
            self.epochs,
            u8::from(self.checkpoint),
        )
    }

    /// Parses a replay token produced by [`Scenario::token`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field, unknown key,
    /// missing key, or violated architectural invariant.
    pub fn from_token(token: &str) -> Result<Scenario, String> {
        let mut parts = token.split(':');
        let version = parts.next().unwrap_or_default();
        if version != TOKEN_VERSION {
            return Err(format!(
                "unsupported token version `{version}` (expected `{TOKEN_VERSION}`)"
            ));
        }
        let mut scenario = Scenario {
            seed: 0,
            n_samples: 0,
            n_features: 0,
            dim: 0,
            n_classes: 0,
            window: 0,
            id_binding: false,
            bit_width: 0,
            reduced_dims: 0,
            epochs: 0,
            checkpoint: false,
        };
        let mut present = [false; 11];
        for part in parts {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("malformed token field `{part}`"))?;
            let index = match key {
                "seed" => 0,
                "samples" => 1,
                "features" => 2,
                "dim" => 3,
                "classes" => 4,
                "window" => 5,
                "id" => 6,
                "bw" => 7,
                "reduced" => 8,
                "epochs" => 9,
                "ckpt" => 10,
                other => return Err(format!("unknown token key `{other}`")),
            };
            let parse_usize = |v: &str| {
                v.parse::<usize>()
                    .map_err(|_| format!("`{key}` expects a number, got `{v}`"))
            };
            match index {
                0 => {
                    scenario.seed = value
                        .parse()
                        .map_err(|_| format!("`seed` expects a number, got `{value}`"))?;
                }
                1 => scenario.n_samples = parse_usize(value)?,
                2 => scenario.n_features = parse_usize(value)?,
                3 => scenario.dim = parse_usize(value)?,
                4 => scenario.n_classes = parse_usize(value)?,
                5 => scenario.window = parse_usize(value)?,
                6 => scenario.id_binding = parse_bool(key, value)?,
                7 => {
                    scenario.bit_width = value
                        .parse()
                        .map_err(|_| format!("`bw` expects a number, got `{value}`"))?;
                }
                8 => scenario.reduced_dims = parse_usize(value)?,
                9 => scenario.epochs = parse_usize(value)?,
                10 => scenario.checkpoint = parse_bool(key, value)?,
                _ => unreachable!(),
            }
            present[index] = true;
        }
        if let Some(missing) = present.iter().position(|&p| !p) {
            const KEYS: [&str; 11] = [
                "seed", "samples", "features", "dim", "classes", "window", "id", "bw", "reduced",
                "epochs", "ckpt",
            ];
            return Err(format!("token is missing `{}`", KEYS[missing]));
        }
        scenario.validate()?;
        Ok(scenario)
    }
}

fn parse_bool(key: &str, value: &str) -> Result<bool, String> {
    match value {
        "0" => Ok(false),
        "1" => Ok(true),
        other => Err(format!("`{key}` expects 0 or 1, got `{other}`")),
    }
}

/// Synthesizes the scenario's dataset: one prototype per class in
/// feature space, samples jittered around their (round-robin assigned)
/// class prototype. The structure is deliberately learnable so retrain
/// epochs perform real corrective updates instead of degenerating into
/// all-mispredict noise.
pub fn synth_dataset(scenario: &Scenario) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(scenario.seed.wrapping_mul(0xD134_2543_DE82_EF95) ^ 0xA5);
    let prototypes: Vec<Vec<f64>> = (0..scenario.n_classes)
        .map(|_| {
            (0..scenario.n_features)
                .map(|_| rng.random_range(0.0..10.0))
                .collect()
        })
        .collect();
    let mut features = Vec::with_capacity(scenario.n_samples);
    let mut labels = Vec::with_capacity(scenario.n_samples);
    for i in 0..scenario.n_samples {
        let label = i % scenario.n_classes;
        let sample: Vec<f64> = prototypes[label]
            .iter()
            .map(|&p| (p + rng.random_range(-1.5f64..1.5)).clamp(0.0, 10.0))
            .collect();
        features.push(sample);
        labels.push(label);
    }
    (features, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_valid() {
        for seed in 0..200 {
            let a = Scenario::generate(seed);
            let b = Scenario::generate(seed);
            assert_eq!(a, b, "seed {seed} must be reproducible");
            a.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn token_round_trips() {
        for seed in 0..50 {
            let scenario = Scenario::generate(seed);
            let token = scenario.token();
            let parsed = Scenario::from_token(&token)
                .unwrap_or_else(|e| panic!("seed {seed}: token `{token}` rejected: {e}"));
            assert_eq!(parsed, scenario);
        }
    }

    #[test]
    fn malformed_tokens_are_rejected() {
        assert!(Scenario::from_token("v0:seed=1").is_err(), "bad version");
        assert!(Scenario::from_token("v1:seed=1").is_err(), "missing keys");
        assert!(Scenario::from_token("v1:wat=1").is_err(), "unknown key");
        let valid = Scenario::generate(3).token();
        assert!(Scenario::from_token(&valid.replace("dim=", "dim=x")).is_err());
        // Architectural invariants are enforced on parse.
        let odd_dim = valid.replace(&format!("dim={}", Scenario::generate(3).dim), "dim=100");
        assert!(Scenario::from_token(&odd_dim).is_err(), "dim must be ×128");
    }

    #[test]
    fn dataset_is_deterministic_and_shaped() {
        let scenario = Scenario::generate(11);
        let (fa, la) = synth_dataset(&scenario);
        let (fb, lb) = synth_dataset(&scenario);
        assert_eq!(fa, fb);
        assert_eq!(la, lb);
        assert_eq!(fa.len(), scenario.n_samples);
        assert!(fa.iter().all(|s| s.len() == scenario.n_features));
        assert!(la.iter().all(|&l| l < scenario.n_classes));
    }
}
