//! Greedy scenario shrinking: reduce a diverging scenario to a minimal
//! reproducer while the same boundary keeps disagreeing.

use crate::scenario::Scenario;
use crate::stages::{run_scenario_mutated, Divergence, Mutation};

/// The result of shrinking one diverging scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ShrinkOutcome {
    /// The scenario that first exposed the divergence.
    pub initial: Scenario,
    /// The smallest scenario still exposing it.
    pub minimized: Scenario,
    /// The divergence as observed on the minimized scenario.
    pub divergence: Divergence,
    /// Candidate scenarios executed during shrinking.
    pub attempts: u64,
    /// Candidates that kept the divergence and were adopted.
    pub accepted: u64,
}

/// Shrinks `initial` while re-running keeps producing a divergence at the
/// same stage and kernel as `original` (details such as sample indices
/// may change as the scenario gets smaller).
///
/// The candidate moves, tried round-robin until a full pass accepts
/// nothing: halve the sample count, drop one 128-dim tier, halve the
/// feature count, collapse to two classes, zero the retrain epochs, skip
/// the checkpoint cycle, shrink the window to 1. Every move preserves
/// [`Scenario::validate`], so the minimized scenario is always replayable
/// from its token.
pub fn shrink(initial: &Scenario, mutation: Mutation, original: &Divergence) -> ShrinkOutcome {
    let mut current = initial.clone();
    let mut divergence = original.clone();
    let mut attempts = 0u64;
    let mut accepted = 0u64;

    let moves: &[fn(&Scenario) -> Scenario] = &[
        |s| {
            let mut c = s.clone();
            c.n_samples = (c.n_samples / 2).max(2);
            c
        },
        |s| {
            let mut c = s.clone();
            c.dim = ((c.dim / 128) / 2).max(1) * 128;
            c.reduced_dims = c.reduced_dims.min(c.dim);
            c
        },
        |s| {
            let mut c = s.clone();
            c.reduced_dims = 128;
            c
        },
        |s| {
            let mut c = s.clone();
            c.n_features = (c.n_features / 2).max(1);
            c.window = c.window.min(c.n_features);
            c
        },
        |s| {
            let mut c = s.clone();
            c.n_classes = 2;
            c
        },
        |s| {
            let mut c = s.clone();
            c.epochs = 0;
            c
        },
        |s| {
            let mut c = s.clone();
            c.checkpoint = false;
            c
        },
        |s| {
            let mut c = s.clone();
            c.window = 1;
            c
        },
    ];

    let mut progress = true;
    while progress {
        progress = false;
        for apply in moves {
            // Reapply each move while it keeps working (e.g. halving the
            // sample count repeatedly), then fall through to the next.
            loop {
                let candidate = apply(&current);
                if candidate == current || candidate.validate().is_err() {
                    break;
                }
                attempts += 1;
                let report = run_scenario_mutated(&candidate, mutation);
                match report.divergence {
                    Some(d) if d.stage == divergence.stage && d.kernel == divergence.kernel => {
                        current = candidate;
                        divergence = d;
                        accepted += 1;
                        progress = true;
                    }
                    _ => break,
                }
            }
        }
    }

    ShrinkOutcome {
        initial: initial.clone(),
        minimized: current,
        divergence,
        attempts,
        accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stages::run_scenario;

    /// The mutation-testing acceptance check: a deliberately injected
    /// encoder bug must be caught at the encode boundary and shrunk to a
    /// tiny reproducer (≤ 8 samples × ≤ 256 dims).
    #[test]
    fn injected_encoder_bug_is_caught_and_shrinks_small() {
        let scenario = Scenario::generate(0xC0FFEE);
        let report = run_scenario_mutated(&scenario, Mutation::EncodeBitFlip);
        let divergence = report.divergence.expect("injected bug must be detected");
        assert_eq!(divergence.stage, generic_hdc::oracle::StageKind::Encode);
        assert_eq!(divergence.kernel, "encode_bins");

        let outcome = shrink(&scenario, Mutation::EncodeBitFlip, &divergence);
        assert!(
            outcome.minimized.n_samples <= 8,
            "shrunk to {} samples",
            outcome.minimized.n_samples
        );
        assert!(
            outcome.minimized.dim <= 256,
            "shrunk to {} dims",
            outcome.minimized.dim
        );
        outcome.minimized.validate().expect("minimized stays valid");
        assert_eq!(outcome.divergence.stage, divergence.stage);
        assert_eq!(outcome.divergence.kernel, divergence.kernel);
        assert!(outcome.accepted <= outcome.attempts);

        // The minimized scenario still reproduces, and the clean run of
        // the same scenario is silent (the bug is in the mutation, not
        // the kernels).
        let replay = run_scenario_mutated(&outcome.minimized, Mutation::EncodeBitFlip);
        assert!(replay.divergence.is_some(), "minimized scenario replays");
        assert!(run_scenario(&outcome.minimized).divergence.is_none());
    }

    #[test]
    fn injected_packed_score_bug_is_caught() {
        let scenario = Scenario::generate(7);
        let report = run_scenario_mutated(&scenario, Mutation::PackedScoreSkew);
        let divergence = report.divergence.expect("skewed score must be detected");
        assert_eq!(divergence.stage, generic_hdc::oracle::StageKind::QuantScore);
        assert_eq!(divergence.kernel, "packed_scores");

        let outcome = shrink(&scenario, Mutation::PackedScoreSkew, &divergence);
        assert!(outcome.minimized.n_samples <= scenario.n_samples);
        outcome.minimized.validate().expect("minimized stays valid");
    }

    #[test]
    fn injected_retrain_bug_is_caught() {
        let scenario = Scenario::generate(21);
        let report = run_scenario_mutated(&scenario, Mutation::RetrainDrift);
        let divergence = report.divergence.expect("retrain drift must be detected");
        assert_eq!(divergence.stage, generic_hdc::oracle::StageKind::Retrain);
    }
}
