//! Differential stage executors: one scenario through every
//! implementation pair, comparing outputs at each boundary.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use generic_hdc::encoding::{Encoder, GenericEncoderSpec};
use generic_hdc::io::read_packed;
use generic_hdc::kernels;
use generic_hdc::ledger::{FsOp, LedgerFs, MANIFEST_NAME};
use generic_hdc::net::{read_frame, Frame, NetConfig, NetFrontend, NetStatus};
use generic_hdc::oracle::{
    BundleKernel, DifferentialKernel, DotI32Kernel, EncodeKernel, HammingKernel, PackedDotKernel,
    PackedScoreKernel, PruneKernel, PrunedScoreKernel, RetrainKernel, SaliencyKernel,
    ScoreBatchKernel, ScoreKernel, StageKind,
};
use generic_hdc::registry::{ModelRegistry, RegistryConfig};
use generic_hdc::runtime::{CheckpointStore, OnlineRuntime, RetryPolicy, RuntimeConfig};
use generic_hdc::{
    BinaryHv, HdcModel, HdcPipeline, IntHv, NormMode, PackedInts, PackedQuantizedModel,
    PredictOptions, QuantizedModel, ResilienceConfig, ResilientPipeline, ServeConfig, Server,
};
use generic_sim::{mitchell_divide_wide, Accelerator, AcceleratorConfig};

use crate::scenario::{synth_dataset, Scenario};

/// Quantization levels used by every scenario — the simulator's
/// architectural constant, so the software and hardware encoders are
/// programmed identically.
pub const SCENARIO_LEVELS: usize = 64;

/// A deliberately injected kernel bug, used to prove the harness catches
/// and shrinks real divergences (the mutation-testing acceptance check).
/// Mutations perturb the *fast* side of one boundary on the first
/// affected sample, exactly as a silent kernel regression would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// No injected bug: every boundary must agree.
    None,
    /// Corrupts dimension 0 of the bit-sliced encoder's output for
    /// sample 0.
    EncodeBitFlip,
    /// Skews the packed scorer's class-0 score for sample 0.
    PackedScoreSkew,
    /// Drifts class 0 of the fast retraining result in the first epoch.
    RetrainDrift,
}

/// A boundary where the fast path and its oracle disagreed.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// The stage whose boundary broke.
    pub stage: StageKind,
    /// The registry kernel (or harness step) that disagreed.
    pub kernel: String,
    /// A truncated human-readable description of the first difference.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.stage, self.kernel, self.detail)
    }
}

/// Everything one scenario execution produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// The executed scenario.
    pub scenario: Scenario,
    /// Comparisons performed per stage, in [`StageKind::ALL`] order.
    /// Stages after a divergence report zero checks.
    pub coverage: Vec<(StageKind, u64)>,
    /// The first boundary disagreement, if any.
    pub divergence: Option<Divergence>,
}

impl ScenarioReport {
    /// Total comparisons across all stages.
    pub fn total_checks(&self) -> u64 {
        self.coverage.iter().map(|&(_, n)| n).sum()
    }
}

/// Runs one clean scenario through every implementation pair.
pub fn run_scenario(scenario: &Scenario) -> ScenarioReport {
    run_scenario_mutated(scenario, Mutation::None)
}

/// Runs one scenario with an optional injected kernel bug.
pub fn run_scenario_mutated(scenario: &Scenario, mutation: Mutation) -> ScenarioReport {
    let mut coverage = Coverage::new();
    let divergence = execute(scenario, mutation, &mut coverage).err();
    ScenarioReport {
        scenario: scenario.clone(),
        coverage: coverage.finish(),
        divergence,
    }
}

struct Coverage {
    counts: [u64; StageKind::ALL.len()],
}

impl Coverage {
    fn new() -> Self {
        Coverage {
            counts: [0; StageKind::ALL.len()],
        }
    }

    fn add(&mut self, stage: StageKind, n: u64) {
        let index = StageKind::ALL
            .iter()
            .position(|&s| s == stage)
            .expect("stage registered in StageKind::ALL");
        self.counts[index] += n;
    }

    fn finish(self) -> Vec<(StageKind, u64)> {
        StageKind::ALL.iter().copied().zip(self.counts).collect()
    }
}

fn execute(
    scenario: &Scenario,
    mutation: Mutation,
    coverage: &mut Coverage,
) -> Result<(), Divergence> {
    let (features, labels) = synth_dataset(scenario);
    let spec = GenericEncoderSpec::new(scenario.dim, scenario.n_features)
        .with_levels(SCENARIO_LEVELS)
        .with_window(scenario.window)
        .with_id_binding(scenario.id_binding)
        .with_seeded_ids(true)
        .with_seed(scenario.seed);
    let pipeline = HdcPipeline::train(
        spec,
        &features,
        &labels,
        scenario.n_classes,
        scenario.epochs,
    )
    .map_err(|e| harness_failure(StageKind::Encode, "pipeline_train", &e))?;

    let encoded = stage_encode(scenario, mutation, coverage, &pipeline, &features)?;
    stage_retrain(scenario, mutation, coverage, &encoded, &labels)?;
    stage_score(scenario, coverage, &pipeline, &encoded)?;
    let quantized = stage_quant_score(scenario, mutation, coverage, &pipeline, &encoded)?;
    stage_resilient(scenario, coverage, &pipeline, &quantized, &encoded)?;
    stage_checkpoint(scenario, coverage, &pipeline, &features)?;
    stage_sim(scenario, coverage, &pipeline, &features)?;
    stage_concurrent_serve(scenario, coverage, &pipeline, &features, &labels)?;
    stage_registry(scenario, coverage, &pipeline, &encoded)?;
    stage_network(scenario, coverage, &pipeline, &features)?;
    stage_compress(scenario, coverage, &pipeline, &features, &encoded, &labels)?;
    Ok(())
}

/// Bit-sliced vs scalar encoding, plus pipeline-path parity; returns the
/// (reference) encoded dataset for downstream stages.
fn stage_encode(
    _scenario: &Scenario,
    mutation: Mutation,
    coverage: &mut Coverage,
    pipeline: &HdcPipeline,
    features: &[Vec<f64>],
) -> Result<Vec<IntHv>, Divergence> {
    const STAGE: StageKind = StageKind::Encode;
    let encoder = pipeline.encoder();
    let kernel = EncodeKernel { encoder };
    let mut encoded = Vec::with_capacity(features.len());
    for (i, sample) in features.iter().enumerate() {
        let bins = encoder
            .quantizer()
            .bins(sample)
            .map_err(|e| harness_failure(STAGE, "quantizer_bins", &e))?;
        let mut fast = kernel
            .fast(&bins)
            .map_err(|e| harness_failure(STAGE, kernel.entry().name, &e))?;
        if mutation == Mutation::EncodeBitFlip && i == 0 {
            fast = perturb_hv(fast);
        }
        let reference = kernel
            .reference(&bins)
            .map_err(|e| harness_failure(STAGE, kernel.entry().name, &e))?;
        if fast != reference {
            return Err(Divergence {
                stage: STAGE,
                kernel: kernel.entry().name.to_string(),
                detail: format!(
                    "sample {i}: {}",
                    first_i32_diff(fast.values(), reference.values())
                ),
            });
        }
        let via_pipeline = pipeline
            .encode(sample)
            .map_err(|e| harness_failure(STAGE, "pipeline_encode", &e))?;
        if via_pipeline != reference {
            return Err(Divergence {
                stage: STAGE,
                kernel: "pipeline_encode".to_string(),
                detail: format!(
                    "sample {i}: {}",
                    first_i32_diff(via_pipeline.values(), reference.values())
                ),
            });
        }
        coverage.add(STAGE, 2);
        encoded.push(reference);
    }

    // Every ISA variant detected on this host must ripple-bundle the
    // binarized dataset exactly like scalar accumulation.
    let binarized: Vec<BinaryHv> = encoded.iter().map(IntHv::to_binary).collect();
    for isa in kernels::available() {
        let kernel = BundleKernel { isa };
        let name = format!("{}[{isa}]", kernel.entry().name);
        let fast = kernel
            .fast(&binarized)
            .map_err(|e| harness_failure(STAGE, &name, &e))?;
        let reference = kernel
            .reference(&binarized)
            .map_err(|e| harness_failure(STAGE, &name, &e))?;
        if fast != reference {
            return Err(Divergence {
                stage: STAGE,
                kernel: name,
                detail: first_i32_diff(fast.values(), reference.values()),
            });
        }
        coverage.add(STAGE, 1);
    }
    Ok(encoded)
}

/// Blocked and parallel retraining epochs vs the scalar epoch, evolving
/// the model between epochs so later epochs start from realistic state.
fn stage_retrain(
    scenario: &Scenario,
    mutation: Mutation,
    coverage: &mut Coverage,
    encoded: &[IntHv],
    labels: &[usize],
) -> Result<(), Divergence> {
    const STAGE: StageKind = StageKind::Retrain;
    let mut base = HdcModel::fit(encoded, labels, scenario.n_classes)
        .map_err(|e| harness_failure(STAGE, "fit", &e))?;
    let batch = (encoded.to_vec(), labels.to_vec());
    for epoch in 0..scenario.epochs.max(1) {
        // Odd epochs exercise the multi-threaded kernel so both fast
        // paths are covered in every scenario.
        let threads = if epoch % 2 == 1 { 3 } else { 1 };
        let kernel = RetrainKernel {
            model: &base,
            threads,
        };
        let mut fast = kernel
            .fast(&batch)
            .map_err(|e| harness_failure(STAGE, kernel.entry().name, &e))?;
        if mutation == Mutation::RetrainDrift && epoch == 0 {
            fast.0[0][0] += 1;
        }
        let reference = kernel
            .reference(&batch)
            .map_err(|e| harness_failure(STAGE, kernel.entry().name, &e))?;
        if fast.1 != reference.1 {
            return Err(Divergence {
                stage: STAGE,
                kernel: kernel.entry().name.to_string(),
                detail: format!(
                    "epoch {epoch}: fast counted {} errors, reference {}",
                    fast.1, reference.1
                ),
            });
        }
        for (c, (fc, rc)) in fast.0.iter().zip(&reference.0).enumerate() {
            if fc != rc {
                return Err(Divergence {
                    stage: STAGE,
                    kernel: kernel.entry().name.to_string(),
                    detail: format!("epoch {epoch} class {c}: {}", first_i32_diff(fc, rc)),
                });
            }
        }
        coverage.add(STAGE, 1 + scenario.n_classes as u64);
        base.retrain_epoch_scalar(encoded, labels)
            .map_err(|e| harness_failure(STAGE, "retrain_epoch_scalar", &e))?;
    }
    Ok(())
}

/// Blocked vs scalar similarity scoring at full dimension and at the
/// scenario's reduction tier, in both norm modes.
fn stage_score(
    scenario: &Scenario,
    coverage: &mut Coverage,
    pipeline: &HdcPipeline,
    encoded: &[IntHv],
) -> Result<(), Divergence> {
    const STAGE: StageKind = StageKind::Score;
    let model = pipeline.model();
    let variants = [
        PredictOptions::full(scenario.dim),
        PredictOptions::reduced(scenario.reduced_dims, NormMode::Updated),
        PredictOptions::reduced(scenario.reduced_dims, NormMode::Constant),
    ];
    for opts in variants {
        let kernel = ScoreKernel { model, opts };
        for (i, query) in encoded.iter().enumerate() {
            let fast = kernel
                .fast(query)
                .map_err(|e| harness_failure(STAGE, kernel.entry().name, &e))?;
            let reference = kernel
                .reference(query)
                .map_err(|e| harness_failure(STAGE, kernel.entry().name, &e))?;
            if fast != reference {
                return Err(Divergence {
                    stage: STAGE,
                    kernel: kernel.entry().name.to_string(),
                    detail: format!(
                        "sample {i} ({opts:?}): {}",
                        first_f64_diff(&fast, &reference)
                    ),
                });
            }
            coverage.add(STAGE, 1);
        }
    }

    // Per-ISA sweeps: the SIMD Hamming and widening-dot primitives and
    // the batched scoring engine against their scalar oracles, on every
    // kernel set this host detects.
    for isa in kernels::available() {
        let hamming = HammingKernel { isa };
        let dot = DotI32Kernel { isa };
        for (i, pair) in encoded.windows(2).take(4).enumerate() {
            let name = format!("{}[{isa}]", hamming.entry().name);
            let input = (pair[0].to_binary(), pair[1].to_binary());
            let fast = hamming
                .fast(&input)
                .map_err(|e| harness_failure(STAGE, &name, &e))?;
            let reference = hamming
                .reference(&input)
                .map_err(|e| harness_failure(STAGE, &name, &e))?;
            if fast != reference {
                return Err(Divergence {
                    stage: STAGE,
                    kernel: name,
                    detail: format!("pair {i}: fast {fast} vs reference {reference}"),
                });
            }
            let name = format!("{}[{isa}]", dot.entry().name);
            let input = (pair[0].clone(), pair[1].clone());
            let fast = dot
                .fast(&input)
                .map_err(|e| harness_failure(STAGE, &name, &e))?;
            let reference = dot
                .reference(&input)
                .map_err(|e| harness_failure(STAGE, &name, &e))?;
            if fast != reference {
                return Err(Divergence {
                    stage: STAGE,
                    kernel: name,
                    detail: format!("pair {i}: fast {fast} vs reference {reference}"),
                });
            }
            coverage.add(STAGE, 2);
        }

        for opts in variants {
            let batch = ScoreBatchKernel { model, opts, isa };
            let name = format!("{}[{isa}]", batch.entry().name);
            let fast = batch
                .fast(encoded)
                .map_err(|e| harness_failure(STAGE, &name, &e))?;
            let reference = batch
                .reference(encoded)
                .map_err(|e| harness_failure(STAGE, &name, &e))?;
            if fast != reference {
                return Err(Divergence {
                    stage: STAGE,
                    kernel: name,
                    detail: format!("({opts:?}): {}", first_f64_diff(&fast, &reference)),
                });
            }
            coverage.add(STAGE, 1);
        }
    }
    Ok(())
}

/// Packed bit-plane scoring vs unpacked quantized scoring on binarized
/// queries, plus the `from_parts` reassembly boundary; returns the
/// quantized model for the resilient stage.
fn stage_quant_score(
    scenario: &Scenario,
    mutation: Mutation,
    coverage: &mut Coverage,
    pipeline: &HdcPipeline,
    encoded: &[IntHv],
) -> Result<QuantizedModel, Divergence> {
    const STAGE: StageKind = StageKind::QuantScore;
    let quantized = QuantizedModel::from_model(pipeline.model(), scenario.bit_width)
        .map_err(|e| harness_failure(STAGE, "from_model", &e))?;
    let packed = quantized
        .pack()
        .map_err(|e| harness_failure(STAGE, "pack", &e))?;

    // The raw-parts boundary must reassemble the identical model (this is
    // where the historical 1-bit sign regression lived).
    let rows: Vec<Vec<i16>> = (0..quantized.n_classes())
        .map(|c| quantized.class(c).to_vec())
        .collect();
    let reassembled = QuantizedModel::from_parts(scenario.dim, scenario.bit_width, rows)
        .map_err(|e| harness_failure(STAGE, "from_parts", &e))?;
    if reassembled != quantized {
        return Err(Divergence {
            stage: STAGE,
            kernel: "from_parts".to_string(),
            detail: "reassembled quantized model differs from the original".to_string(),
        });
    }
    coverage.add(STAGE, 1);

    let kernel = PackedScoreKernel {
        quantized: &quantized,
        packed: &packed,
    };
    for (i, query) in encoded.iter().enumerate() {
        let binary = query.to_binary();
        let mut fast = kernel
            .fast(&binary)
            .map_err(|e| harness_failure(STAGE, kernel.entry().name, &e))?;
        if mutation == Mutation::PackedScoreSkew && i == 0 {
            fast[0] += 1e-3;
        }
        let reference = kernel
            .reference(&binary)
            .map_err(|e| harness_failure(STAGE, kernel.entry().name, &e))?;
        if fast != reference {
            return Err(Divergence {
                stage: STAGE,
                kernel: kernel.entry().name.to_string(),
                detail: format!("sample {i}: {}", first_f64_diff(&fast, &reference)),
            });
        }
        coverage.add(STAGE, 1);
    }

    // Per-ISA sweep: the masked bit-plane dot primitive against its
    // scalar oracle, one check per class row per detected kernel set.
    if let Some(query) = encoded.first() {
        let binary = query.to_binary();
        for isa in kernels::available() {
            let kernel = PackedDotKernel { isa };
            let name = format!("{}[{isa}]", kernel.entry().name);
            for c in 0..quantized.n_classes() {
                let planes = PackedInts::from_i16(quantized.class(c))
                    .map_err(|e| harness_failure(STAGE, &name, &e))?;
                let input = (binary.clone(), planes);
                let fast = kernel
                    .fast(&input)
                    .map_err(|e| harness_failure(STAGE, &name, &e))?;
                let reference = kernel
                    .reference(&input)
                    .map_err(|e| harness_failure(STAGE, &name, &e))?;
                if fast != reference {
                    return Err(Divergence {
                        stage: STAGE,
                        kernel: name,
                        detail: format!("class {c}: fast {fast} vs reference {reference}"),
                    });
                }
                coverage.add(STAGE, 1);
            }
        }
    }
    Ok(quantized)
}

/// The resilient pipeline at its unmitigated baseline vs direct
/// quantized cosine inference at full dimension.
fn stage_resilient(
    scenario: &Scenario,
    coverage: &mut Coverage,
    pipeline: &HdcPipeline,
    quantized: &QuantizedModel,
    encoded: &[IntHv],
) -> Result<(), Divergence> {
    const STAGE: StageKind = StageKind::Resilient;
    let mut resilient = ResilientPipeline::new(
        pipeline.clone(),
        scenario.bit_width,
        ResilienceConfig::baseline(),
    )
    .map_err(|e| harness_failure(STAGE, "resilient_new", &e))?;
    for (i, query) in encoded.iter().enumerate() {
        let got = resilient.predict_encoded(query);
        // The baseline contract: one fault-free full-dimension cosine
        // pass, first maximum wins.
        let scores = quantized.cosine_scores(query, scenario.dim);
        let expected = argmax_first(&scores);
        if got != expected {
            return Err(Divergence {
                stage: STAGE,
                kernel: "resilient_baseline".to_string(),
                detail: format!("sample {i}: resilient predicted {got}, cosine oracle {expected}"),
            });
        }
        coverage.add(STAGE, 1);
    }
    Ok(())
}

/// Pipeline serialization canonicality, checkpoint-store save/load, and
/// the online runtime's full-dimension tier vs direct prediction.
fn stage_checkpoint(
    scenario: &Scenario,
    coverage: &mut Coverage,
    pipeline: &HdcPipeline,
    features: &[Vec<f64>],
) -> Result<(), Divergence> {
    const STAGE: StageKind = StageKind::CheckpointRestore;
    const KERNEL: &str = "pipeline_checkpoint";

    // write ∘ read ∘ write must be byte-identical (canonical format).
    let mut bytes = Vec::new();
    pipeline
        .write_to(&mut bytes)
        .map_err(|e| harness_failure(STAGE, KERNEL, &e))?;
    let restored =
        HdcPipeline::read_from(&bytes[..]).map_err(|e| harness_failure(STAGE, KERNEL, &e))?;
    let mut rewritten = Vec::new();
    restored
        .write_to(&mut rewritten)
        .map_err(|e| harness_failure(STAGE, KERNEL, &e))?;
    if rewritten != bytes {
        return Err(Divergence {
            stage: STAGE,
            kernel: KERNEL.to_string(),
            detail: format!(
                "serialization is not canonical: {} vs {} bytes",
                rewritten.len(),
                bytes.len()
            ),
        });
    }
    coverage.add(STAGE, 1);
    for (i, sample) in features.iter().enumerate() {
        let a = pipeline
            .predict(sample)
            .map_err(|e| harness_failure(STAGE, KERNEL, &e))?;
        let b = restored
            .predict(sample)
            .map_err(|e| harness_failure(STAGE, KERNEL, &e))?;
        if a != b {
            return Err(Divergence {
                stage: STAGE,
                kernel: KERNEL.to_string(),
                detail: format!("sample {i}: original predicts {a}, restored {b}"),
            });
        }
        coverage.add(STAGE, 1);
    }

    if !scenario.checkpoint {
        return Ok(());
    }

    // Atomic store round-trip plus the runtime's no-budget (full
    // dimension) inference tier.
    let dir = unique_temp_dir(scenario.seed);
    let result = checkpoint_store_cycle(scenario, coverage, pipeline, features, &bytes, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn checkpoint_store_cycle(
    scenario: &Scenario,
    coverage: &mut Coverage,
    pipeline: &HdcPipeline,
    features: &[Vec<f64>],
    canonical: &[u8],
    dir: &std::path::Path,
) -> Result<(), Divergence> {
    const STAGE: StageKind = StageKind::CheckpointRestore;
    const KERNEL: &str = "checkpoint_store";
    let io_err = |e: &dyn std::fmt::Display| Divergence {
        stage: STAGE,
        kernel: KERNEL.to_string(),
        detail: format!("store error: {e}"),
    };
    let store = CheckpointStore::open(dir, 2, RetryPolicy::default()).map_err(|e| io_err(&e))?;
    store
        .save(pipeline, 1, features.len() as u64, 0.0)
        .map_err(|e| io_err(&e))?;
    let checkpoint = store.load_generation(1).map_err(|e| io_err(&e))?;
    let mut reloaded = Vec::new();
    checkpoint
        .pipeline
        .write_to(&mut reloaded)
        .map_err(|e| io_err(&e))?;
    if reloaded != canonical {
        return Err(Divergence {
            stage: STAGE,
            kernel: KERNEL.to_string(),
            detail: "checkpointed pipeline bytes differ from a direct serialization".to_string(),
        });
    }
    coverage.add(STAGE, 1);

    let mut runtime = OnlineRuntime::new(pipeline.clone(), store, RuntimeConfig::default())
        .map_err(|e| io_err(&e))?;
    if runtime.ladder().choose(None) != runtime.ladder().full_tier() {
        return Err(Divergence {
            stage: STAGE,
            kernel: "degradation_ladder".to_string(),
            detail: "no-budget requests must choose the full-dimension tier".to_string(),
        });
    }
    coverage.add(STAGE, 1);
    for (i, sample) in features.iter().enumerate() {
        let outcome = runtime.infer(sample, None).map_err(|e| io_err(&e))?;
        let direct = pipeline
            .predict(sample)
            .map_err(|e| harness_failure(STAGE, KERNEL, &e))?;
        if outcome.degraded || outcome.dims_used != scenario.dim {
            return Err(Divergence {
                stage: STAGE,
                kernel: "degradation_ladder".to_string(),
                detail: format!(
                    "sample {i}: no-budget inference served at {} of {} dims",
                    outcome.dims_used, scenario.dim
                ),
            });
        }
        if outcome.label != direct {
            return Err(Divergence {
                stage: STAGE,
                kernel: "runtime_infer".to_string(),
                detail: format!(
                    "sample {i}: runtime predicted {}, direct pipeline {direct}",
                    outcome.label
                ),
            });
        }
        coverage.add(STAGE, 1);
    }
    Ok(())
}

/// The cycle simulator vs independent scalar recomputation: encoder
/// parity, hardware scores from the class rows + chunked norms, and
/// activity counters vs the closed-form cost model.
fn stage_sim(
    scenario: &Scenario,
    coverage: &mut Coverage,
    pipeline: &HdcPipeline,
    features: &[Vec<f64>],
) -> Result<(), Divergence> {
    let sim_err = |kernel: &str, e: &dyn std::fmt::Display| Divergence {
        stage: StageKind::SimScore,
        kernel: kernel.to_string(),
        detail: format!("simulator error: {e}"),
    };
    let config = AcceleratorConfig::new(scenario.dim, scenario.n_features, scenario.n_classes)
        .with_window(scenario.window)
        .with_bit_width(scenario.bit_width)
        .with_id_binding(scenario.id_binding)
        .with_seed(scenario.seed);
    let mut accelerator =
        Accelerator::new(config, features).map_err(|e| sim_err("accelerator_new", &e))?;
    accelerator
        .load_model(pipeline.model())
        .map_err(|e| sim_err("load_model", &e))?;

    // The hardware class memory must hold exactly the quantized rows.
    let quantized = QuantizedModel::from_model(pipeline.model(), scenario.bit_width)
        .map_err(|e| sim_err("from_model", &e))?;
    for c in 0..scenario.n_classes {
        if accelerator.class_row(c) != quantized.class(c) {
            return Err(Divergence {
                stage: StageKind::SimScore,
                kernel: "sim_class_memory".to_string(),
                detail: format!("class {c}: loaded rows differ from software quantization"),
            });
        }
        coverage.add(StageKind::SimScore, 1);
    }

    for (i, sample) in features.iter().enumerate() {
        // Encoder parity: the simulator programs the same item memories.
        accelerator.reset_activity();
        let hw_encoded = accelerator
            .encode(sample)
            .map_err(|e| sim_err("sim_encoder", &e))?;
        let encode_activity = *accelerator.activity();
        let sw_encoded = pipeline
            .encode(sample)
            .map_err(|e| sim_err("sim_encoder", &e))?;
        if hw_encoded != sw_encoded {
            return Err(Divergence {
                stage: StageKind::SimScore,
                kernel: "sim_encoder".to_string(),
                detail: format!(
                    "sample {i}: {}",
                    first_i32_diff(hw_encoded.values(), sw_encoded.values())
                ),
            });
        }
        coverage.add(StageKind::SimScore, 1);
        let expected_encode = generic_sim::mitigation::encode_activity(accelerator.config(), true);
        if encode_activity != expected_encode {
            return Err(Divergence {
                stage: StageKind::SimActivity,
                kernel: "sim_activity".to_string(),
                detail: format!(
                    "sample {i}: encode charged {encode_activity:?}, formula {expected_encode:?}"
                ),
            });
        }
        coverage.add(StageKind::SimActivity, 1);

        // Full-dimension and reduced-tier inference.
        for dims in [scenario.dim, scenario.reduced_dims] {
            accelerator.reset_activity();
            let outcome = accelerator
                .infer_reduced(sample, dims)
                .map_err(|e| sim_err("sim_hw_scores", &e))?;
            let activity = *accelerator.activity();
            let oracle = hw_score_oracle(&accelerator, &sw_encoded, dims, scenario.n_classes);
            if outcome.scores != oracle {
                return Err(Divergence {
                    stage: StageKind::SimScore,
                    kernel: "sim_hw_scores".to_string(),
                    detail: format!(
                        "sample {i} dims {dims}: {}",
                        first_f64_diff(&outcome.scores, &oracle)
                    ),
                });
            }
            let expected_prediction = argmax_first(&oracle);
            if outcome.prediction != expected_prediction {
                return Err(Divergence {
                    stage: StageKind::SimScore,
                    kernel: "sim_hw_scores".to_string(),
                    detail: format!(
                        "sample {i} dims {dims}: predicted {}, oracle argmax {expected_prediction}",
                        outcome.prediction
                    ),
                });
            }
            coverage.add(StageKind::SimScore, 2);

            let expected_activity = generic_sim::mitigation::infer_activity(
                accelerator.config(),
                dims,
                scenario.n_classes,
            );
            if activity != expected_activity {
                return Err(Divergence {
                    stage: StageKind::SimActivity,
                    kernel: "sim_activity".to_string(),
                    detail: format!(
                        "sample {i} dims {dims}: inference charged {activity:?}, formula {expected_activity:?}"
                    ),
                });
            }
            coverage.add(StageKind::SimActivity, 1);
        }
    }
    Ok(())
}

/// Independent scalar recomputation of the hardware score path:
/// exact integer dot products over the stored class rows, freshly
/// recomputed 128-dim chunk norms, and the same Mitchell division.
fn hw_score_oracle(
    accelerator: &Accelerator,
    query: &IntHv,
    dims: usize,
    n_classes: usize,
) -> Vec<f64> {
    (0..n_classes)
        .map(|c| {
            let row = &accelerator.class_row(c)[..dims];
            let dot: i64 = query.values()[..dims]
                .iter()
                .zip(row)
                .map(|(&q, &w)| i64::from(q) * i64::from(w))
                .sum();
            let norm2: u64 = row
                .chunks(128)
                .map(|chunk| {
                    chunk
                        .iter()
                        .map(|&v| (i64::from(v) * i64::from(v)) as u64)
                        .sum::<u64>()
                })
                .sum();
            if norm2 == 0 {
                return 0.0;
            }
            let dot2 = (i128::from(dot) * i128::from(dot)) as u128;
            let quotient = mitchell_divide_wide(dot2, norm2);
            if dot < 0 {
                -quotient
            } else {
                quotient
            }
        })
        .collect()
}

/// First-maximum argmax — the tie-break both the resilient first pass
/// and the simulator's score finalization use.
fn argmax_first(scores: &[f64]) -> usize {
    let mut best = 0;
    for (i, &s) in scores.iter().enumerate().skip(1) {
        if s > scores[best] {
            best = i;
        }
    }
    best
}

fn perturb_hv(hv: IntHv) -> IntHv {
    let mut values = hv.into_values();
    values[0] += 1;
    IntHv::from_values(values).expect("non-empty vector stays valid")
}

fn harness_failure(stage: StageKind, kernel: &str, error: &dyn std::fmt::Display) -> Divergence {
    Divergence {
        stage,
        kernel: kernel.to_string(),
        detail: format!("harness step failed: {error}"),
    }
}

fn first_i32_diff(fast: &[i32], reference: &[i32]) -> String {
    match fast.iter().zip(reference).position(|(a, b)| a != b) {
        Some(i) => format!(
            "first difference at dim {i}: fast {} vs reference {}",
            fast[i], reference[i]
        ),
        None => format!(
            "lengths differ: fast {} vs reference {}",
            fast.len(),
            reference.len()
        ),
    }
}

fn first_f64_diff(fast: &[f64], reference: &[f64]) -> String {
    match fast.iter().zip(reference).position(|(a, b)| a != b) {
        Some(i) => format!(
            "first difference at class {i}: fast {} vs reference {}",
            fast[i], reference[i]
        ),
        None => format!(
            "lengths differ: fast {} vs reference {}",
            fast.len(),
            reference.len()
        ),
    }
}

/// The sharded concurrent server vs the scalar oracle: every answer
/// carries the immutable snapshot it was scored against, so replaying
/// the request through the scalar predictor on that snapshot at the
/// answered dimensionality must reproduce the label bit-for-bit — even
/// while the writer shard folds labeled samples in concurrently.
fn stage_concurrent_serve(
    scenario: &Scenario,
    coverage: &mut Coverage,
    pipeline: &HdcPipeline,
    features: &[Vec<f64>],
    labels: &[usize],
) -> Result<(), Divergence> {
    let dir = unique_temp_dir(scenario.seed ^ 0x5E_57_E0);
    let result = concurrent_serve_cycle(coverage, pipeline, features, labels, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn concurrent_serve_cycle(
    coverage: &mut Coverage,
    pipeline: &HdcPipeline,
    features: &[Vec<f64>],
    labels: &[usize],
    dir: &std::path::Path,
) -> Result<(), Divergence> {
    const STAGE: StageKind = StageKind::ConcurrentServe;
    const KERNEL: &str = "serve_answer";
    let err = |e: &dyn std::fmt::Display| harness_failure(STAGE, KERNEL, &e);

    let store = CheckpointStore::open(dir, 2, RetryPolicy::default()).map_err(|e| err(&e))?;
    let config = RuntimeConfig {
        checkpoint_every: 0,
        ..RuntimeConfig::default()
    };
    let runtime = OnlineRuntime::new(pipeline.clone(), store, config).map_err(|e| err(&e))?;
    let serve_config = ServeConfig {
        shards: 2,
        batch_max: 4,
        ..ServeConfig::default()
    };
    let server = Server::start(runtime, serve_config).map_err(|e| err(&e))?;
    let handle = server.handle();

    // Interleave learn submissions with inference so answers race a
    // live writer: snapshots pin whatever model state each batch saw.
    let mut tickets = Vec::new();
    for (i, sample) in features.iter().enumerate() {
        if i % 3 == 0 {
            // Fire-and-forget: writer backpressure may drop some under
            // load, which is fine — the oracle replays the *pinned*
            // snapshot, not a predicted model state.
            let _ = handle.submit_learn(sample.clone(), labels[i]);
        }
        match handle.submit(sample.clone(), None) {
            Ok(ticket) => tickets.push((i, ticket)),
            Err(e) => {
                return Err(Divergence {
                    stage: STAGE,
                    kernel: KERNEL.to_string(),
                    detail: format!("sample {i}: clean unbudgeted row refused admission: {e}"),
                })
            }
        }
    }

    for (i, ticket) in tickets {
        let answer = match ticket.wait() {
            Ok(answer) => answer,
            Err(e) => {
                return Err(Divergence {
                    stage: STAGE,
                    kernel: KERNEL.to_string(),
                    detail: format!("sample {i}: admitted request not answered: {e}"),
                })
            }
        };
        let snapshot_pipeline = answer.snapshot.pipeline();
        let encoded = snapshot_pipeline
            .encoder()
            .encode(&features[i])
            .map_err(|e| err(&e))?;
        let opts = PredictOptions::reduced(answer.dims_used, NormMode::Updated);
        let oracle = snapshot_pipeline
            .model()
            .try_predict_with(&encoded, opts)
            .map_err(|e| err(&e))?;
        if oracle != answer.label {
            return Err(Divergence {
                stage: STAGE,
                kernel: KERNEL.to_string(),
                detail: format!(
                    "sample {i}: shard {} answered {} but the scalar oracle on the \
                     pinned snapshot ({} dims) predicts {oracle}",
                    answer.shard, answer.label, answer.dims_used
                ),
            });
        }
        coverage.add(STAGE, 1);
    }

    let report = server.drain().map_err(|e| err(&e))?;
    if report.serve.admitted != report.workers.answered + report.serve.canceled {
        return Err(Divergence {
            stage: STAGE,
            kernel: "serve_accounting".to_string(),
            detail: format!(
                "admitted {} != answered {} + canceled {}",
                report.serve.admitted, report.workers.answered, report.serve.canceled
            ),
        });
    }
    coverage.add(STAGE, 1);
    Ok(())
}

/// The framed TCP front-end vs the in-process `ServerHandle` oracle:
/// seeded requests are replayed through a loopback [`NetFrontend`] and
/// every answered frame must carry exactly the label the in-process
/// path produces, with the scalar predictor on the pinned snapshot
/// agreeing bit-for-bit at the answered dimensionality. Tenant-routed
/// frames are checked against the published model's heap oracle, a
/// deliberately tight deadline must come back as either a valid answer
/// or a [`NetStatus::Shed`] refusal, a malformed frame must drop only
/// its own connection, and graceful shutdown must end the surviving
/// connection with a [`Frame::Goodbye`] status frame.
fn stage_network(
    scenario: &Scenario,
    coverage: &mut Coverage,
    pipeline: &HdcPipeline,
    features: &[Vec<f64>],
) -> Result<(), Divergence> {
    let dir = unique_temp_dir(scenario.seed ^ 0x4E_E7_50);
    let result = network_cycle(scenario, coverage, pipeline, features, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn network_cycle(
    scenario: &Scenario,
    coverage: &mut Coverage,
    pipeline: &HdcPipeline,
    features: &[Vec<f64>],
    dir: &std::path::Path,
) -> Result<(), Divergence> {
    const STAGE: StageKind = StageKind::Network;
    const KERNEL: &str = "net_answer";
    let err = |e: &dyn std::fmt::Display| harness_failure(STAGE, KERNEL, &e);

    // Shared-model server plus one published tenant, no learn traffic:
    // the snapshot pinned before any request stays the scoring model
    // for the whole stage, so every oracle replay is deterministic.
    let registry_dir = dir.join("registry");
    let ckpt_dir = dir.join("ckpt");
    std::fs::create_dir_all(&registry_dir).map_err(|e| err(&e))?;
    std::fs::create_dir_all(&ckpt_dir).map_err(|e| err(&e))?;
    let registry_config = RegistryConfig {
        dim: scenario.dim,
        ..RegistryConfig::default()
    };
    let registry = ModelRegistry::open(&registry_dir, registry_config).map_err(|e| err(&e))?;
    let tenant_model =
        QuantizedModel::from_model(pipeline.model(), scenario.bit_width).map_err(|e| err(&e))?;
    registry
        .publish("conformance", &tenant_model)
        .map_err(|e| err(&e))?;
    let tenant_oracle = tenant_model.pack().map_err(|e| err(&e))?;

    let store = CheckpointStore::open(&ckpt_dir, 2, RetryPolicy::default()).map_err(|e| err(&e))?;
    let config = RuntimeConfig {
        checkpoint_every: 0,
        ..RuntimeConfig::default()
    };
    let runtime = OnlineRuntime::new(pipeline.clone(), store, config).map_err(|e| err(&e))?;
    let serve_config = ServeConfig {
        shards: 2,
        batch_max: 4,
        ..ServeConfig::default()
    };
    let server = Server::start_with_registry(runtime, serve_config, Some(registry.into()))
        .map_err(|e| err(&e))?;
    let handle = server.handle();
    let snapshot = handle.snapshots().load();

    let frontend = NetFrontend::bind("127.0.0.1:0", handle.clone(), NetConfig::default())
        .map_err(|e| err(&e))?;
    let addr = frontend.local_addr();
    let stage_result = (|| -> Result<(), Divergence> {
        let mut conn = std::net::TcpStream::connect(addr).map_err(|e| err(&e))?;
        conn.set_read_timeout(Some(std::time::Duration::from_secs(20)))
            .map_err(|e| err(&e))?;

        // Pipeline shared and tenant-routed requests on one connection;
        // responses arrive in request order.
        let shared_n = features.len().min(8);
        let tenant_n = features.len().min(4);
        for (i, sample) in features.iter().take(shared_n).enumerate() {
            let frame = Frame::Infer {
                request_id: i as u64,
                deadline_us: 0,
                tenant: None,
                features: sample.clone(),
            };
            std::io::Write::write_all(&mut conn, &frame.encode()).map_err(|e| err(&e))?;
        }
        for (i, sample) in features.iter().take(tenant_n).enumerate() {
            let frame = Frame::Infer {
                request_id: 100 + i as u64,
                deadline_us: 0,
                tenant: Some("conformance".to_owned()),
                features: sample.clone(),
            };
            std::io::Write::write_all(&mut conn, &frame.encode()).map_err(|e| err(&e))?;
        }

        // Shared answers: the frame's label must match both the scalar
        // oracle replayed on the pinned snapshot at the answered
        // dimensionality AND the in-process ServerHandle for the same
        // request (same static snapshot, so both are deterministic).
        for (i, sample) in features.iter().take(shared_n).enumerate() {
            let frame = read_frame(&mut conn)
                .map_err(|e| err(&e))?
                .ok_or_else(|| harness_failure(STAGE, KERNEL, &"connection closed mid-stream"))?;
            let Frame::Answer {
                request_id,
                label,
                dims_used,
                ..
            } = frame
            else {
                return Err(Divergence {
                    stage: STAGE,
                    kernel: KERNEL.to_string(),
                    detail: format!("sample {i}: expected an Answer frame, got {frame:?}"),
                });
            };
            if request_id != i as u64 {
                return Err(Divergence {
                    stage: STAGE,
                    kernel: KERNEL.to_string(),
                    detail: format!(
                        "responses out of order: expected request {i}, got {request_id}"
                    ),
                });
            }
            let encoded = snapshot
                .pipeline()
                .encoder()
                .encode(sample)
                .map_err(|e| err(&e))?;
            let opts = PredictOptions::reduced(dims_used as usize, NormMode::Updated);
            let oracle = snapshot
                .pipeline()
                .model()
                .try_predict_with(&encoded, opts)
                .map_err(|e| err(&e))?;
            if oracle != label as usize {
                return Err(Divergence {
                    stage: STAGE,
                    kernel: KERNEL.to_string(),
                    detail: format!(
                        "sample {i}: the socket answered {label} but the scalar oracle on \
                         the pinned snapshot ({dims_used} dims) predicts {oracle}"
                    ),
                });
            }
            let in_process = handle
                .submit(sample.clone(), None)
                .map_err(|e| err(&e))?
                .wait()
                .map_err(|e| err(&e))?;
            if in_process.label != label as usize {
                return Err(Divergence {
                    stage: STAGE,
                    kernel: KERNEL.to_string(),
                    detail: format!(
                        "sample {i}: the socket answered {label} but the in-process \
                         ServerHandle answers {}",
                        in_process.label
                    ),
                });
            }
            coverage.add(STAGE, 2);
        }

        // Tenant-routed answers against the published model's heap
        // oracle (last-wins argmax, the documented tie-break).
        for (i, sample) in features.iter().take(tenant_n).enumerate() {
            let frame = read_frame(&mut conn)
                .map_err(|e| err(&e))?
                .ok_or_else(|| harness_failure(STAGE, KERNEL, &"connection closed mid-stream"))?;
            let Frame::Answer {
                request_id, label, ..
            } = frame
            else {
                return Err(Divergence {
                    stage: STAGE,
                    kernel: KERNEL.to_string(),
                    detail: format!("tenant sample {i}: expected an Answer frame, got {frame:?}"),
                });
            };
            if request_id != 100 + i as u64 {
                return Err(Divergence {
                    stage: STAGE,
                    kernel: KERNEL.to_string(),
                    detail: format!(
                        "tenant responses out of order: expected request {}, got {request_id}",
                        100 + i
                    ),
                });
            }
            let query = snapshot
                .pipeline()
                .encoder()
                .encode(sample)
                .map_err(|e| err(&e))?
                .to_binary();
            let scores = tenant_oracle.scores(&query).map_err(|e| err(&e))?;
            let mut oracle = 0usize;
            let mut best = f64::NEG_INFINITY;
            for (c, &s) in scores.iter().enumerate() {
                if s >= best {
                    best = s;
                    oracle = c;
                }
            }
            if oracle != label as usize {
                return Err(Divergence {
                    stage: STAGE,
                    kernel: KERNEL.to_string(),
                    detail: format!(
                        "tenant sample {i}: the socket answered {label} but the published \
                         model's heap oracle predicts {oracle}"
                    ),
                });
            }
            coverage.add(STAGE, 1);
        }

        // A deliberately hopeless 1µs deadline: the front-end must
        // answer with either a genuine (oracle-checked) answer or a
        // Shed refusal — exactly one check either way, so the report
        // stays deterministic even though the shed decision depends on
        // the live latency estimate.
        let frame = Frame::Infer {
            request_id: 200,
            deadline_us: 1,
            tenant: None,
            features: features[0].clone(),
        };
        std::io::Write::write_all(&mut conn, &frame.encode()).map_err(|e| err(&e))?;
        let frame = read_frame(&mut conn)
            .map_err(|e| err(&e))?
            .ok_or_else(|| harness_failure(STAGE, KERNEL, &"connection closed mid-stream"))?;
        match frame {
            Frame::Answer {
                request_id: 200,
                label,
                dims_used,
                ..
            } => {
                let encoded = snapshot
                    .pipeline()
                    .encoder()
                    .encode(&features[0])
                    .map_err(|e| err(&e))?;
                let opts = PredictOptions::reduced(dims_used as usize, NormMode::Updated);
                let oracle = snapshot
                    .pipeline()
                    .model()
                    .try_predict_with(&encoded, opts)
                    .map_err(|e| err(&e))?;
                if oracle != label as usize {
                    return Err(Divergence {
                        stage: STAGE,
                        kernel: KERNEL.to_string(),
                        detail: format!(
                            "deadline probe: answered {label} at {dims_used} dims but the \
                             oracle predicts {oracle}"
                        ),
                    });
                }
            }
            Frame::Refusal {
                request_id: 200,
                status: NetStatus::Shed,
                ..
            } => {}
            other => {
                return Err(Divergence {
                    stage: STAGE,
                    kernel: KERNEL.to_string(),
                    detail: format!(
                        "deadline probe: expected an Answer or a Shed refusal, got {other:?}"
                    ),
                });
            }
        }
        coverage.add(STAGE, 1);

        // A malformed frame (CRC tampered) on a *second* connection:
        // that connection gets a Malformed refusal and is dropped; the
        // shards keep serving untouched.
        let mut bad_conn = std::net::TcpStream::connect(addr).map_err(|e| err(&e))?;
        bad_conn
            .set_read_timeout(Some(std::time::Duration::from_secs(20)))
            .map_err(|e| err(&e))?;
        let mut tampered = Frame::Ping { request_id: 300 }.encode();
        let last = tampered.len() - 1;
        tampered[last] ^= 0xFF;
        std::io::Write::write_all(&mut bad_conn, &tampered).map_err(|e| err(&e))?;
        match read_frame(&mut bad_conn).map_err(|e| err(&e))? {
            Some(Frame::Refusal {
                status: NetStatus::Malformed,
                ..
            }) => {}
            other => {
                return Err(Divergence {
                    stage: STAGE,
                    kernel: KERNEL.to_string(),
                    detail: format!("tampered frame: expected a Malformed refusal, got {other:?}"),
                });
            }
        }
        if !matches!(read_frame(&mut bad_conn), Ok(None) | Err(_)) {
            return Err(Divergence {
                stage: STAGE,
                kernel: KERNEL.to_string(),
                detail: "the connection survived a tampered frame".to_string(),
            });
        }
        // The poisoned connection must not have poisoned the fleet.
        let healthy = handle
            .submit(features[0].clone(), None)
            .map_err(|e| err(&e))?
            .wait()
            .map_err(|e| err(&e))?;
        let _ = healthy;
        coverage.add(STAGE, 2);

        // Graceful shutdown: the surviving connection receives a final
        // Goodbye status frame, then EOF.
        let net_stats = frontend.shutdown();
        match read_frame(&mut conn).map_err(|e| err(&e))? {
            Some(Frame::Goodbye) => {}
            other => {
                return Err(Divergence {
                    stage: STAGE,
                    kernel: KERNEL.to_string(),
                    detail: format!("shutdown: expected a Goodbye frame, got {other:?}"),
                });
            }
        }
        if !matches!(read_frame(&mut conn), Ok(None) | Err(_)) {
            return Err(Divergence {
                stage: STAGE,
                kernel: KERNEL.to_string(),
                detail: "the connection stayed open after Goodbye".to_string(),
            });
        }
        coverage.add(STAGE, 1);

        // Accounting: every well-formed request was answered or
        // refused, the tampered frame was counted (and only it), and
        // its best-effort Malformed refusal is the single extra
        // response beyond the well-formed frames.
        let expected_frames = (shared_n + tenant_n + 1) as u64;
        if net_stats.connections != 2
            || net_stats.frames_received != expected_frames
            || net_stats.malformed != 1
            || net_stats.answered + net_stats.refused != expected_frames + net_stats.malformed
        {
            return Err(Divergence {
                stage: STAGE,
                kernel: "net_accounting".to_string(),
                detail: format!(
                    "expected 2 connections, {expected_frames} frames, 1 malformed, \
                     answered+refused == frames+malformed; counted {} / {} / {} / {}",
                    net_stats.connections,
                    net_stats.frames_received,
                    net_stats.malformed,
                    net_stats.answered + net_stats.refused
                ),
            });
        }
        coverage.add(STAGE, 1);
        Ok(())
    })();
    drop(snapshot);
    let drain = server.drain().map_err(|e| err(&e));
    stage_result?;
    drain.map(|_| ())
}

/// The zero-copy mapped registry vs the heap-deserialized scalar
/// oracle: a tenant is published, cold-loaded, hot-swapped, evicted,
/// and reloaded; at every step the mapped view's scores must be
/// bit-identical — on every dispatched ISA — to deserializing the same
/// on-disk bytes onto the heap and scoring there.
fn stage_registry(
    scenario: &Scenario,
    coverage: &mut Coverage,
    pipeline: &HdcPipeline,
    encoded: &[IntHv],
) -> Result<(), Divergence> {
    let dir = unique_temp_dir(scenario.seed ^ 0x4E_61_57);
    let result = registry_cycle(scenario, coverage, pipeline, encoded, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// Scores every query through the tenant's mapped view on every
/// detected ISA and compares bit-for-bit against the heap oracle
/// (`read_packed` of the same file, packed, scored).
fn check_registry_tenant(
    coverage: &mut Coverage,
    registry: &ModelRegistry,
    queries: &[BinaryHv],
    step: &str,
) -> Result<(), Divergence> {
    const STAGE: StageKind = StageKind::Registry;
    const KERNEL: &str = "registry_view";
    let err = |e: &dyn std::fmt::Display| harness_failure(STAGE, KERNEL, &e);

    let handle = registry.get("conformance").map_err(|e| err(&e))?;
    let path = registry.tenant_path("conformance").map_err(|e| err(&e))?;
    let bytes = std::fs::read(&path).map_err(|e| err(&e))?;
    let heap = read_packed(bytes.as_slice())
        .map_err(|e| err(&e))?
        .pack()
        .map_err(|e| err(&e))?;
    let view = handle.view();
    let mut mapped = Vec::new();
    for (i, query) in queries.iter().enumerate() {
        let reference = heap.scores(query).map_err(|e| err(&e))?;
        for isa in kernels::available() {
            let kernel_set = kernels::for_isa(isa).ok_or_else(|| {
                harness_failure(STAGE, KERNEL, &format!("{isa} not dispatchable"))
            })?;
            view.scores_into_with(query, kernel_set, &mut mapped)
                .map_err(|e| err(&e))?;
            if mapped != reference {
                return Err(Divergence {
                    stage: STAGE,
                    kernel: format!("{KERNEL}[{isa}]"),
                    detail: format!(
                        "{step}, sample {i}: {}",
                        first_f64_diff(&mapped, &reference)
                    ),
                });
            }
            coverage.add(STAGE, 1);
        }
    }
    Ok(())
}

fn registry_cycle(
    scenario: &Scenario,
    coverage: &mut Coverage,
    pipeline: &HdcPipeline,
    encoded: &[IntHv],
    dir: &std::path::Path,
) -> Result<(), Divergence> {
    const STAGE: StageKind = StageKind::Registry;
    const KERNEL: &str = "registry_view";
    let err = |e: &dyn std::fmt::Display| harness_failure(STAGE, KERNEL, &e);

    let config = RegistryConfig {
        dim: scenario.dim,
        ..RegistryConfig::default()
    };
    let registry = ModelRegistry::open(dir, config).map_err(|e| err(&e))?;
    let first =
        QuantizedModel::from_model(pipeline.model(), scenario.bit_width).map_err(|e| err(&e))?;
    // The hot-swap replacement: the same model at a different width, so
    // a stale mapping is guaranteed to score differently.
    let swapped_width = if scenario.bit_width == 1 { 4 } else { 1 };
    let second =
        QuantizedModel::from_model(pipeline.model(), swapped_width).map_err(|e| err(&e))?;
    let queries: Vec<BinaryHv> = encoded.iter().take(6).map(IntHv::to_binary).collect();

    // Cold load: publish, then score through the freshly mapped view.
    registry
        .publish("conformance", &first)
        .map_err(|e| err(&e))?;
    check_registry_tenant(coverage, &registry, &queries, "cold load")?;

    // Hot swap: a pinned reader must keep scoring the *old* bytes while
    // new gets see the replacement.
    let pinned = registry.get("conformance").map_err(|e| err(&e))?;
    let old_oracle = first.pack().map_err(|e| err(&e))?;
    registry
        .publish("conformance", &second)
        .map_err(|e| err(&e))?;
    check_registry_tenant(coverage, &registry, &queries, "hot swap")?;
    for (i, query) in queries.iter().enumerate() {
        let stale = pinned.view().scores(query).map_err(|e| err(&e))?;
        let reference = old_oracle.scores(query).map_err(|e| err(&e))?;
        if stale != reference {
            return Err(Divergence {
                stage: STAGE,
                kernel: "registry_rcu_pin".to_string(),
                detail: format!(
                    "sample {i}: a handle pinned across a hot-swap drifted: {}",
                    first_f64_diff(&stale, &reference)
                ),
            });
        }
        coverage.add(STAGE, 1);
    }
    drop(pinned);

    // Evict, then reload through the cold path again.
    if !registry.evict("conformance") {
        return Err(Divergence {
            stage: STAGE,
            kernel: "registry_evict".to_string(),
            detail: "evicting a resident tenant reported nothing evicted".to_string(),
        });
    }
    check_registry_tenant(coverage, &registry, &queries, "reload after evict")?;

    // Accounting: the cycle performed two cold loads (initial publish
    // counts as a swap, post-evict get reloads) and stayed in budget.
    let stats = registry.stats();
    if stats.swaps != 2 || stats.cold_loads == 0 || stats.evictions != 1 {
        return Err(Divergence {
            stage: STAGE,
            kernel: "registry_accounting".to_string(),
            detail: format!(
                "expected 2 swaps, ≥1 cold load, 1 eviction; counted {} / {} / {}",
                stats.swaps, stats.cold_loads, stats.evictions
            ),
        });
    }
    if registry.resident_bytes() > registry.config().byte_budget {
        return Err(Divergence {
            stage: STAGE,
            kernel: "registry_accounting".to_string(),
            detail: format!(
                "resident {} B exceeds the {} B budget",
                registry.resident_bytes(),
                registry.config().byte_budget
            ),
        });
    }
    coverage.add(STAGE, 2);

    // --- Generational ledger replay: publish → crash → recover →
    // rollback → torn manifest, the mapped view checked bit-for-bit
    // against the heap oracle of whichever generation must be live
    // after each transition.
    let first_oracle = old_oracle;
    let second_oracle = second.pack().map_err(|e| err(&e))?;
    drop(registry);

    // A publish killed before its image rename must leave the
    // committed generation untouched and its staging file behind.
    let fs = LedgerFs::new();
    let crashing = ModelRegistry::open_with_fs(dir, config, fs.clone()).map_err(|e| err(&e))?;
    fs.crash_at(FsOp::Rename, 1);
    if crashing.publish("conformance", &first).is_ok() {
        return Err(Divergence {
            stage: STAGE,
            kernel: "registry_ledger".to_string(),
            detail: "a publish with a crash armed at the image rename succeeded".to_string(),
        });
    }
    drop(crashing);

    let registry = ModelRegistry::open(dir, config).map_err(|e| err(&e))?;
    if registry.recovery().swept_tmp == 0 {
        return Err(Divergence {
            stage: STAGE,
            kernel: "registry_ledger".to_string(),
            detail: "recovery after a crashed publish swept no staging files".to_string(),
        });
    }
    check_live_generation(
        coverage,
        &registry,
        &second_oracle,
        &queries,
        "recovered after crashed publish",
    )?;
    check_registry_tenant(
        coverage,
        &registry,
        &queries,
        "recovered after crashed publish",
    )?;

    // Explicit rollback: the previous generation becomes live again and
    // scores exactly as its heap oracle.
    let target = registry
        .rollback("conformance", None)
        .map_err(|e| err(&e))?;
    check_live_generation(
        coverage,
        &registry,
        &first_oracle,
        &queries,
        "after rollback",
    )?;
    check_registry_tenant(coverage, &registry, &queries, "after rollback")?;
    let records = registry.history("conformance").map_err(|e| err(&e))?;
    let live: Vec<u64> = records
        .iter()
        .filter(|r| r.live)
        .map(|r| r.generation)
        .collect();
    let retained: Vec<u64> = records.iter().map(|r| r.generation).collect();
    if live != [target] || retained != [1, 2] {
        return Err(Divergence {
            stage: STAGE,
            kernel: "registry_ledger".to_string(),
            detail: format!(
                "after rollback to {target}, history shows live {live:?} retained {retained:?} \
                 (expected live [{target}], retained [1, 2])"
            ),
        });
    }
    coverage.add(STAGE, 1);
    drop(registry);

    // Torn manifest: flip one byte, reopen, and the rebuild must elect
    // the newest CRC-valid image — never the corrupt text's claim.
    let manifest = dir.join(MANIFEST_NAME);
    let mut bytes = std::fs::read(&manifest).map_err(|e| err(&e))?;
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&manifest, bytes).map_err(|e| err(&e))?;
    let registry = ModelRegistry::open(dir, config).map_err(|e| err(&e))?;
    if !registry.recovery().repaired {
        return Err(Divergence {
            stage: STAGE,
            kernel: "registry_ledger".to_string(),
            detail: "a torn manifest was not repaired at open".to_string(),
        });
    }
    check_live_generation(
        coverage,
        &registry,
        &second_oracle,
        &queries,
        "rebuilt from torn manifest",
    )?;
    check_registry_tenant(coverage, &registry, &queries, "rebuilt from torn manifest")?;
    coverage.add(STAGE, 1);
    Ok(())
}

/// Scores every query through the live mapped view and compares
/// bit-for-bit against the heap oracle of the generation that the
/// ledger replay expects to be serving after `step`.
fn check_live_generation(
    coverage: &mut Coverage,
    registry: &ModelRegistry,
    oracle: &PackedQuantizedModel,
    queries: &[BinaryHv],
    step: &str,
) -> Result<(), Divergence> {
    const STAGE: StageKind = StageKind::Registry;
    const KERNEL: &str = "registry_ledger";
    let err = |e: &dyn std::fmt::Display| harness_failure(STAGE, KERNEL, &e);
    let handle = registry.get("conformance").map_err(|e| err(&e))?;
    let view = handle.view();
    for (i, query) in queries.iter().enumerate() {
        let reference = oracle.scores(query).map_err(|e| err(&e))?;
        let mapped = view.scores(query).map_err(|e| err(&e))?;
        if mapped != reference {
            return Err(Divergence {
                stage: STAGE,
                kernel: KERNEL.to_string(),
                detail: format!(
                    "{step}, sample {i}: the live view diverges from the expected \
                     generation's oracle: {}",
                    first_f64_diff(&mapped, &reference)
                ),
            });
        }
        coverage.add(STAGE, 1);
    }
    Ok(())
}

/// Compress → publish → serve replay on a pruned tenant: saliency and
/// prune checked differentially per ISA, then the pruned image is
/// published through a real registry, scored through the mapped view on
/// every ISA, and served through the sharded server with tenant
/// routing — every answer replayed against the scalar pruned oracle
/// (query compacted by the support, scored through the heap quantized
/// model, last-wins argmax).
fn stage_compress(
    scenario: &Scenario,
    coverage: &mut Coverage,
    pipeline: &HdcPipeline,
    features: &[Vec<f64>],
    encoded: &[IntHv],
    labels: &[usize],
) -> Result<(), Divergence> {
    let dir = unique_temp_dir(scenario.seed ^ 0xC0_4B_12);
    let result = compress_cycle(
        scenario, coverage, pipeline, features, encoded, labels, &dir,
    );
    let _ = std::fs::remove_dir_all(&dir);
    result
}

#[allow(clippy::too_many_lines)]
fn compress_cycle(
    scenario: &Scenario,
    coverage: &mut Coverage,
    pipeline: &HdcPipeline,
    features: &[Vec<f64>],
    encoded: &[IntHv],
    labels: &[usize],
    dir: &std::path::Path,
) -> Result<(), Divergence> {
    const STAGE: StageKind = StageKind::Compress;
    let err =
        |kernel: &str, e: &dyn std::fmt::Display| harness_failure(STAGE, kernel, &e.to_string());

    let model = pipeline.model();
    let batch = (encoded.to_vec(), labels.to_vec());

    // Saliency: every dispatched ISA vs the per-query scalar reference.
    for isa in kernels::available() {
        let kernel = SaliencyKernel { model, isa };
        let name = format!("{}[{isa}]", kernel.entry().name);
        let fast = kernel.fast(&batch).map_err(|e| err(&name, &e))?;
        let reference = kernel.reference(&batch).map_err(|e| err(&name, &e))?;
        if fast != reference {
            let (d, (f, r)) = fast
                .scores()
                .iter()
                .zip(reference.scores())
                .enumerate()
                .map(|(d, (&f, &r))| (d, (f, r)))
                .find(|&(_, (f, r))| f != r)
                .unwrap_or((0, (0, 0)));
            return Err(Divergence {
                stage: STAGE,
                kernel: name,
                detail: format!("dim {d}: fast {f} vs reference {r}"),
            });
        }
        coverage.add(STAGE, 1);
    }

    // Prune: sort-based selection vs the independent max-scan oracle,
    // at an aggressive support and the identity support.
    let sal = generic_hdc::saliency(model, encoded, labels).map_err(|e| err("saliency", &e))?;
    let keep = (scenario.dim / 4).max(1);
    for keep in [keep, scenario.dim] {
        let kernel = PruneKernel { model, keep };
        let name = kernel.entry().name;
        let fast = kernel.fast(&sal).map_err(|e| err(name, &e))?;
        let reference = kernel.reference(&sal).map_err(|e| err(name, &e))?;
        if fast != reference {
            return Err(Divergence {
                stage: STAGE,
                kernel: name.to_string(),
                detail: format!("keep {keep}: support or class matrix diverged"),
            });
        }
        coverage.add(STAGE, 1);
    }

    // Compress: prune to a quarter of the dimensions, recover, quantize
    // at the scenario's width.
    let mut pruned = generic_hdc::prune(model, &sal, keep).map_err(|e| err("prune", &e))?;
    pruned
        .recover(encoded, labels, 2, 2)
        .map_err(|e| err("recover", &e))?;
    let compressed = generic_hdc::CompressedModel::from_pruned(&pruned, scenario.bit_width)
        .map_err(|e| err("compress", &e))?;

    // Publish the pruned tenant through a real registry.
    let registry_dir = dir.join("registry");
    std::fs::create_dir_all(&registry_dir).map_err(|e| err("publish", &e))?;
    let registry = ModelRegistry::open(
        &registry_dir,
        RegistryConfig {
            dim: scenario.dim,
            ..RegistryConfig::default()
        },
    )
    .map_err(|e| err("publish", &e))?;
    registry
        .publish_compressed("pruned", &compressed)
        .map_err(|e| err("publish", &e))?;

    // The published bytes, scored through the mapped view on every ISA,
    // must match the scalar pruned oracle bit for bit.
    let path = registry
        .tenant_path("pruned")
        .map_err(|e| err("publish", &e))?;
    let image = std::fs::read(&path).map_err(|e| err("publish", &e))?;
    let queries: Vec<BinaryHv> = encoded.iter().take(6).map(IntHv::to_binary).collect();
    for isa in kernels::available() {
        let kernel = PrunedScoreKernel {
            image: image.clone(),
            compressed: compressed.clone(),
            isa,
        };
        let name = format!("{}[{isa}]", kernel.entry().name);
        for (i, query) in queries.iter().enumerate() {
            let fast = kernel.fast(query).map_err(|e| err(&name, &e))?;
            let reference = kernel.reference(query).map_err(|e| err(&name, &e))?;
            if fast != reference {
                return Err(Divergence {
                    stage: STAGE,
                    kernel: name,
                    detail: format!("sample {i}: {}", first_f64_diff(&fast, &reference)),
                });
            }
            coverage.add(STAGE, 1);
        }
    }

    // Serve: tenant-routed answers from the sharded server must replay
    // exactly on the scalar pruned oracle.
    let ckpt_dir = dir.join("ckpt");
    std::fs::create_dir_all(&ckpt_dir).map_err(|e| err("serve", &e))?;
    let store = CheckpointStore::open(&ckpt_dir, 2, RetryPolicy::default())
        .map_err(|e| err("serve", &e))?;
    let runtime = OnlineRuntime::new(
        pipeline.clone(),
        store,
        RuntimeConfig {
            checkpoint_every: 0,
            ..RuntimeConfig::default()
        },
    )
    .map_err(|e| err("serve", &e))?;
    let server = Server::start_with_registry(
        runtime,
        ServeConfig {
            shards: 2,
            batch_max: 4,
            ..ServeConfig::default()
        },
        Some(registry.into()),
    )
    .map_err(|e| err("serve", &e))?;
    let handle = server.handle();
    let snapshot = handle.snapshots().load();
    let serve_result = (|| -> Result<(), Divergence> {
        for (i, sample) in features.iter().take(6).enumerate() {
            let answer = handle
                .submit_tenant("pruned", sample.clone(), None)
                .map_err(|e| err("serve", &e))?
                .wait()
                .map_err(|e| err("serve", &e))?;
            let query = snapshot
                .pipeline()
                .encoder()
                .encode(sample)
                .map_err(|e| err("serve", &e))?
                .to_binary();
            let bits: Vec<bool> = compressed.support().iter().map(|&d| query.bit(d)).collect();
            let compact = BinaryHv::from_bits(&bits).map_err(|e| err("serve", &e))?;
            let scores = compressed.quantized().scores(&IntHv::from(compact));
            let mut oracle = 0usize;
            let mut best = f64::NEG_INFINITY;
            for (c, &s) in scores.iter().enumerate() {
                if s >= best {
                    best = s;
                    oracle = c;
                }
            }
            if answer.label != oracle {
                return Err(Divergence {
                    stage: STAGE,
                    kernel: "pruned_serve".to_string(),
                    detail: format!(
                        "sample {i}: the server answered {} but the scalar pruned oracle \
                         predicts {oracle}",
                        answer.label
                    ),
                });
            }
            coverage.add(STAGE, 1);
        }
        Ok(())
    })();
    let drain = server.drain();
    serve_result?;
    drain
        .map(|_| ())
        .map_err(|e| harness_failure(STAGE, "pruned_serve", &e))
}

fn unique_temp_dir(seed: u64) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "generic-conformance-{}-{seed}-{n}",
        std::process::id()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn clean_scenarios_have_no_divergence_and_cover_every_stage() {
        for seed in 0..4 {
            let scenario = Scenario::generate(seed);
            let report = run_scenario(&scenario);
            assert!(
                report.divergence.is_none(),
                "seed {seed} ({}): {}",
                scenario.token(),
                report.divergence.unwrap()
            );
            for (stage, checks) in &report.coverage {
                assert!(*checks > 0, "seed {seed}: stage {stage} ran no checks");
            }
            assert!(report.total_checks() > 0);
        }
    }

    #[test]
    fn reports_are_deterministic() {
        let scenario = Scenario::generate(5);
        assert_eq!(run_scenario(&scenario), run_scenario(&scenario));
    }

    #[test]
    fn every_mutation_is_detected_at_its_own_stage() {
        let scenario = Scenario::generate(9);
        let cases = [
            (Mutation::EncodeBitFlip, StageKind::Encode),
            (Mutation::RetrainDrift, StageKind::Retrain),
            (Mutation::PackedScoreSkew, StageKind::QuantScore),
        ];
        for (mutation, stage) in cases {
            let report = run_scenario_mutated(&scenario, mutation);
            let divergence = report
                .divergence
                .unwrap_or_else(|| panic!("{mutation:?} must diverge"));
            assert_eq!(divergence.stage, stage, "{mutation:?}");
            // Stages after the divergence never ran.
            let diverged_at = StageKind::ALL.iter().position(|&s| s == stage).unwrap();
            for &(s, checks) in &report.coverage[diverged_at + 1..] {
                assert_eq!(checks, 0, "{mutation:?}: stage {s} ran after divergence");
            }
        }
    }
}
