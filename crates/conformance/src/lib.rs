//! # generic-conformance
//!
//! Cross-layer differential conformance harness for the GENERIC engine.
//!
//! The workspace accumulated several independent implementations of the
//! same mathematics: bit-sliced kernels next to their retained scalar
//! references, packed quantized scoring next to unpacked scoring, the
//! resilient/runtime layers next to direct inference, and the cycle
//! simulator next to the software pipeline. Each pairing carries an
//! exact equivalence contract (see [`generic_hdc::oracle`]); this crate
//! machine-checks all of them at once by fuzzing whole pipelines:
//!
//! 1. [`Scenario::generate`] draws a randomized end-to-end configuration
//!    (dataset shape × encoding parameters × bit-width × reduction tier ×
//!    retrain schedule × checkpoint cycle) deterministically from a seed;
//! 2. [`run_scenario`] executes it through every implementation pair,
//!    comparing outputs at each stage boundary — bit-identical per the
//!    registered [`oracle::Tolerance`]s;
//! 3. on divergence, [`shrink`] reduces the scenario to a minimal
//!    reproducer and [`write_fixture`] emits a self-contained
//!    `#[test]`-ready source file whose embedded replay token also drives
//!    `generic conformance --replay`.
//!
//! The `conformance` bench binary (in `generic-bench`) runs N seeded
//! scenarios, writes `BENCH_conformance.json`, and gates CI on zero
//! unexplained divergences plus a mutation self-check: a deliberately
//! injected kernel bug ([`Mutation`]) must be caught and shrunk small.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fixture;
mod scenario;
mod shrink;
mod stages;

pub use fixture::{fixture_source, write_fixture};
pub use scenario::{synth_dataset, Scenario, TOKEN_VERSION};
pub use shrink::{shrink, ShrinkOutcome};
pub use stages::{
    run_scenario, run_scenario_mutated, Divergence, Mutation, ScenarioReport, SCENARIO_LEVELS,
};

/// Re-exported oracle registry: stage taxonomy, tolerances, and the
/// fast/reference kernel pairs the harness drives.
pub use generic_hdc::oracle;
