//! Shared classifier interface and preprocessing utilities.

use crate::MlError;

/// A trained classifier over dense `f64` feature vectors.
pub trait Classifier {
    /// Number of input features the classifier expects.
    fn n_features(&self) -> usize;

    /// Number of classes.
    fn n_classes(&self) -> usize;

    /// Predicts the class of one sample.
    ///
    /// # Panics
    ///
    /// Panics if `sample.len() != self.n_features()`.
    fn predict(&self, sample: &[f64]) -> usize;

    /// Predicts a batch of samples.
    ///
    /// # Panics
    ///
    /// Panics if any row has the wrong width.
    fn predict_batch(&self, samples: &[Vec<f64>]) -> Vec<usize> {
        samples.iter().map(|s| self.predict(s)).collect()
    }

    /// Fraction of `samples` predicted as their `labels`.
    ///
    /// # Panics
    ///
    /// Panics on mismatched lengths or row widths.
    fn accuracy(&self, samples: &[Vec<f64>], labels: &[usize]) -> f64 {
        assert_eq!(
            samples.len(),
            labels.len(),
            "samples/labels length mismatch"
        );
        if samples.is_empty() {
            return 0.0;
        }
        let correct = samples
            .iter()
            .zip(labels)
            .filter(|&(s, &l)| self.predict(s) == l)
            .count();
        correct as f64 / samples.len() as f64
    }
}

/// Per-feature standardization (zero mean, unit variance), required by the
/// gradient-based estimators.
#[derive(Debug, Clone, PartialEq)]
pub struct Scaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Scaler {
    /// Fits a scaler to training features.
    ///
    /// # Errors
    ///
    /// Returns an error on empty or ragged input.
    pub fn fit(features: &[Vec<f64>]) -> Result<Self, MlError> {
        if features.is_empty() {
            return Err(MlError::EmptyInput);
        }
        let d = features[0].len();
        if d == 0 {
            return Err(MlError::shape("feature rows must be non-empty"));
        }
        let n = features.len() as f64;
        let mut means = vec![0.0; d];
        for row in features {
            if row.len() != d {
                return Err(MlError::shape("ragged feature rows"));
            }
            for (j, &v) in row.iter().enumerate() {
                means[j] += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; d];
        for row in features {
            for (j, &v) in row.iter().enumerate() {
                stds[j] += (v - means[j]).powi(2);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0; // constant feature: leave centred at zero
            }
        }
        Ok(Scaler { means, stds })
    }

    /// Number of features the scaler was fitted on.
    pub fn n_features(&self) -> usize {
        self.means.len()
    }

    /// Standardizes one sample.
    ///
    /// # Panics
    ///
    /// Panics if `sample.len() != self.n_features()`.
    pub fn transform(&self, sample: &[f64]) -> Vec<f64> {
        assert_eq!(sample.len(), self.means.len(), "sample width mismatch");
        sample
            .iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(&v, (&m, &s))| (v - m) / s)
            .collect()
    }

    /// Standardizes a batch.
    ///
    /// # Panics
    ///
    /// Panics if any row has the wrong width.
    pub fn transform_batch(&self, samples: &[Vec<f64>]) -> Vec<Vec<f64>> {
        samples.iter().map(|s| self.transform(s)).collect()
    }
}

/// Index of the maximum value (first on ties).
///
/// # Panics
///
/// Panics if `values` is empty.
pub(crate) fn argmax(values: &[f64]) -> usize {
    assert!(!values.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in values.iter().enumerate().skip(1) {
        if v > values[best] {
            best = i;
        }
    }
    best
}

/// Squared Euclidean distance.
///
/// # Panics
///
/// Panics on length mismatch.
pub(crate) fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance operands differ in length");
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaler_standardizes() {
        let data = vec![vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]];
        let scaler = Scaler::fit(&data).unwrap();
        let t = scaler.transform_batch(&data);
        for j in 0..2 {
            let mean: f64 = t.iter().map(|r| r[j]).sum::<f64>() / 3.0;
            let var: f64 = t.iter().map(|r| r[j].powi(2)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn scaler_handles_constant_features() {
        let data = vec![vec![7.0], vec![7.0]];
        let scaler = Scaler::fit(&data).unwrap();
        assert_eq!(scaler.transform(&[7.0]), vec![0.0]);
    }

    #[test]
    fn scaler_rejects_bad_input() {
        assert!(Scaler::fit(&[]).is_err());
        assert!(Scaler::fit(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    #[test]
    fn squared_distance_basic() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }
}
