//! Multi-layer perceptron with ReLU activations, softmax cross-entropy,
//! and momentum mini-batch SGD.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::common::{argmax, Classifier, Scaler};
use crate::error::validate_training_data;
use crate::MlError;

/// Hyper-parameters for [`Mlp`].
#[derive(Debug, Clone, PartialEq)]
pub struct MlpSpec {
    /// Hidden-layer widths (empty = logistic regression shape).
    pub hidden: Vec<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// L2 weight decay.
    pub l2: f64,
    /// RNG seed for initialization and shuffling.
    pub seed: u64,
}

impl Default for MlpSpec {
    fn default() -> Self {
        MlpSpec {
            hidden: vec![100],
            epochs: 80,
            batch_size: 32,
            learning_rate: 0.05,
            momentum: 0.9,
            l2: 1e-4,
            seed: 0,
        }
    }
}

/// One dense layer: `weights[out][in]` + per-output bias.
#[derive(Debug, Clone, PartialEq)]
struct Layer {
    weights: Vec<Vec<f64>>,
    biases: Vec<f64>,
}

impl Layer {
    fn new(n_in: usize, n_out: usize, rng: &mut StdRng) -> Self {
        // He initialization for ReLU networks.
        let scale = (2.0 / n_in as f64).sqrt();
        let weights = (0..n_out)
            .map(|_| (0..n_in).map(|_| scale * crate::mlp::normal(rng)).collect())
            .collect();
        Layer {
            weights,
            biases: vec![0.0; n_out],
        }
    }

    fn forward(&self, x: &[f64]) -> Vec<f64> {
        self.weights
            .iter()
            .zip(&self.biases)
            .map(|(w, &b)| w.iter().zip(x).map(|(a, v)| a * v).sum::<f64>() + b)
            .collect()
    }
}

pub(crate) fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A trained feed-forward network. The paper's MLP baseline uses
/// scikit-learn's `MLPClassifier` defaults (one hidden layer of 100); its
/// DNN baseline is an AutoKeras-searched deeper network — see
/// [`DnnSearch`](crate::DnnSearch).
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    scaler: Scaler,
    layers: Vec<Layer>,
    n_classes: usize,
    spec: MlpSpec,
}

impl Mlp {
    /// Trains the network.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid training data or degenerate
    /// hyper-parameters.
    pub fn fit(
        features: &[Vec<f64>],
        labels: &[usize],
        n_classes: usize,
        spec: MlpSpec,
    ) -> Result<Self, MlError> {
        let n_features = validate_training_data(features, labels, n_classes)?;
        if spec.epochs == 0 {
            return Err(MlError::invalid("epochs", "must be positive"));
        }
        if spec.batch_size == 0 {
            return Err(MlError::invalid("batch_size", "must be positive"));
        }
        if spec.learning_rate <= 0.0 || spec.learning_rate.is_nan() {
            return Err(MlError::invalid("learning_rate", "must be positive"));
        }
        if spec.hidden.contains(&0) {
            return Err(MlError::invalid("hidden", "layer widths must be positive"));
        }
        let scaler = Scaler::fit(features)?;
        let xs = scaler.transform_batch(features);
        let mut rng = StdRng::seed_from_u64(spec.seed);

        // Build layers: n_features → hidden... → n_classes.
        let mut sizes = vec![n_features];
        sizes.extend_from_slice(&spec.hidden);
        sizes.push(n_classes);
        let mut layers: Vec<Layer> = sizes
            .windows(2)
            .map(|w| Layer::new(w[0], w[1], &mut rng))
            .collect();
        let mut vel: Vec<Layer> = layers
            .iter()
            .map(|l| Layer {
                weights: l.weights.iter().map(|w| vec![0.0; w.len()]).collect(),
                biases: vec![0.0; l.biases.len()],
            })
            .collect();

        let mut order: Vec<usize> = (0..xs.len()).collect();
        for _ in 0..spec.epochs {
            for i in (1..order.len()).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            for batch in order.chunks(spec.batch_size) {
                train_batch(&mut layers, &mut vel, &xs, labels, batch, &spec);
            }
        }
        Ok(Mlp {
            scaler,
            layers,
            n_classes,
            spec,
        })
    }

    /// Class probabilities for one sample.
    ///
    /// # Panics
    ///
    /// Panics if `sample.len() != self.n_features()`.
    pub fn probabilities(&self, sample: &[f64]) -> Vec<f64> {
        let x = self.scaler.transform(sample);
        let (activations, _) = forward_all(&self.layers, &x);
        softmax(activations.last().expect("network has layers"))
    }

    /// The hidden-layer widths of this network.
    pub fn hidden_sizes(&self) -> &[usize] {
        &self.spec.hidden
    }

    /// Total trainable parameters (used by the device cost models).
    pub fn n_parameters(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.weights.iter().map(Vec::len).sum::<usize>() + l.biases.len())
            .sum()
    }
}

impl Classifier for Mlp {
    fn n_features(&self) -> usize {
        self.scaler.n_features()
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict(&self, sample: &[f64]) -> usize {
        argmax(&self.probabilities(sample))
    }
}

/// Forward pass returning pre-softmax activations of every layer (ReLU
/// applied to all but the last) and the ReLU masks for backprop.
fn forward_all(layers: &[Layer], x: &[f64]) -> (Vec<Vec<f64>>, Vec<Vec<bool>>) {
    let mut activations = Vec::with_capacity(layers.len());
    let mut masks = Vec::with_capacity(layers.len().saturating_sub(1));
    let mut current = x.to_vec();
    for (li, layer) in layers.iter().enumerate() {
        let mut z = layer.forward(&current);
        if li + 1 < layers.len() {
            let mask: Vec<bool> = z.iter().map(|&v| v > 0.0).collect();
            for (v, &m) in z.iter_mut().zip(&mask) {
                if !m {
                    *v = 0.0;
                }
            }
            masks.push(mask);
        }
        activations.push(z.clone());
        current = z;
    }
    (activations, masks)
}

fn softmax(z: &[f64]) -> Vec<f64> {
    let max = z.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = z.iter().map(|v| (v - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|v| v / sum).collect()
}

fn train_batch(
    layers: &mut [Layer],
    vel: &mut [Layer],
    xs: &[Vec<f64>],
    labels: &[usize],
    batch: &[usize],
    spec: &MlpSpec,
) {
    // Accumulate gradients over the batch.
    let mut grads: Vec<Layer> = layers
        .iter()
        .map(|l| Layer {
            weights: l.weights.iter().map(|w| vec![0.0; w.len()]).collect(),
            biases: vec![0.0; l.biases.len()],
        })
        .collect();

    for &i in batch {
        let x = &xs[i];
        let (activations, masks) = forward_all(layers, x);
        let probs = softmax(activations.last().expect("non-empty"));
        // Output delta: p - onehot(y).
        let mut delta: Vec<f64> = probs;
        delta[labels[i]] -= 1.0;

        for li in (0..layers.len()).rev() {
            let input: &[f64] = if li == 0 { x } else { &activations[li - 1] };
            for (o, &d) in delta.iter().enumerate() {
                for (j, &inj) in input.iter().enumerate() {
                    grads[li].weights[o][j] += d * inj;
                }
                grads[li].biases[o] += d;
            }
            if li > 0 {
                // Propagate delta through weights and the ReLU mask.
                let mut prev = vec![0.0; input.len()];
                for (o, &d) in delta.iter().enumerate() {
                    for (j, p) in prev.iter_mut().enumerate() {
                        *p += d * layers[li].weights[o][j];
                    }
                }
                for (p, &m) in prev.iter_mut().zip(&masks[li - 1]) {
                    if !m {
                        *p = 0.0;
                    }
                }
                delta = prev;
            }
        }
    }

    let scale = 1.0 / batch.len() as f64;
    for ((layer, v), g) in layers.iter_mut().zip(vel.iter_mut()).zip(&grads) {
        for ((w_row, v_row), g_row) in layer
            .weights
            .iter_mut()
            .zip(v.weights.iter_mut())
            .zip(&g.weights)
        {
            for ((w, v), &g) in w_row.iter_mut().zip(v_row.iter_mut()).zip(g_row) {
                *v = spec.momentum * *v - spec.learning_rate * (g * scale + spec.l2 * *w);
                *w += *v;
            }
        }
        for ((b, v), &g) in layer
            .biases
            .iter_mut()
            .zip(v.biases.iter_mut())
            .zip(&g.biases)
        {
            *v = spec.momentum * *v - spec.learning_rate * g * scale;
            *b += *v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..80 {
            let a = (i / 2) % 2;
            let b = i % 2;
            let jx = ((i * 13) % 17) as f64 * 0.005;
            let jy = ((i * 7) % 13) as f64 * 0.005;
            xs.push(vec![a as f64 + jx, b as f64 + jy]);
            ys.push(a ^ b);
        }
        (xs, ys)
    }

    #[test]
    fn mlp_fits_xor() {
        let (xs, ys) = xor_data();
        let spec = MlpSpec {
            hidden: vec![16],
            epochs: 300,
            learning_rate: 0.1,
            ..Default::default()
        };
        let mlp = Mlp::fit(&xs, &ys, 2, spec).unwrap();
        assert!(
            mlp.accuracy(&xs, &ys) >= 0.95,
            "acc = {}",
            mlp.accuracy(&xs, &ys)
        );
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (xs, ys) = xor_data();
        let mlp = Mlp::fit(&xs, &ys, 2, MlpSpec::default()).unwrap();
        let p = mlp.probabilities(&xs[0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_under_seed() {
        let (xs, ys) = xor_data();
        let a = Mlp::fit(&xs, &ys, 2, MlpSpec::default()).unwrap();
        let b = Mlp::fit(&xs, &ys, 2, MlpSpec::default()).unwrap();
        assert_eq!(a.predict_batch(&xs), b.predict_batch(&xs));
    }

    #[test]
    fn parameter_count_matches_architecture() {
        let (xs, ys) = xor_data();
        let spec = MlpSpec {
            hidden: vec![8, 4],
            epochs: 1,
            ..Default::default()
        };
        let mlp = Mlp::fit(&xs, &ys, 2, spec).unwrap();
        // (2*8 + 8) + (8*4 + 4) + (4*2 + 2) = 24 + 36 + 10 = 70
        assert_eq!(mlp.n_parameters(), 70);
    }

    #[test]
    fn validates_spec() {
        let (xs, ys) = xor_data();
        let bad = MlpSpec {
            hidden: vec![0],
            ..Default::default()
        };
        assert!(Mlp::fit(&xs, &ys, 2, bad).is_err());
        let bad = MlpSpec {
            epochs: 0,
            ..Default::default()
        };
        assert!(Mlp::fit(&xs, &ys, 2, bad).is_err());
    }
}
