use std::error::Error;
use std::fmt;

/// Errors returned by `generic-ml` estimators.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MlError {
    /// Training was invoked with no samples.
    EmptyInput,
    /// Features/labels lengths disagree, or rows are ragged.
    ShapeMismatch {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// A label was outside `0..n_classes`.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// Number of classes the estimator was configured with.
        n_classes: usize,
    },
    /// A hyper-parameter was outside its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Constraint that was violated.
        reason: String,
    },
}

impl MlError {
    pub(crate) fn shape(detail: impl Into<String>) -> Self {
        MlError::ShapeMismatch {
            detail: detail.into(),
        }
    }

    pub(crate) fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        MlError::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::EmptyInput => write!(f, "training requires at least one sample"),
            MlError::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
            MlError::LabelOutOfRange { label, n_classes } => {
                write!(f, "label {label} out of range for {n_classes} classes")
            }
            MlError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl Error for MlError {}

/// Validates the common (features, labels, n_classes) training contract.
pub(crate) fn validate_training_data(
    features: &[Vec<f64>],
    labels: &[usize],
    n_classes: usize,
) -> Result<usize, MlError> {
    if features.is_empty() {
        return Err(MlError::EmptyInput);
    }
    if features.len() != labels.len() {
        return Err(MlError::shape(format!(
            "{} feature rows vs {} labels",
            features.len(),
            labels.len()
        )));
    }
    if n_classes < 2 {
        return Err(MlError::invalid("n_classes", "must be at least 2"));
    }
    let n_features = features[0].len();
    if n_features == 0 {
        return Err(MlError::shape("feature rows must be non-empty"));
    }
    for row in features {
        if row.len() != n_features {
            return Err(MlError::shape(format!(
                "ragged rows: expected width {n_features}, found {}",
                row.len()
            )));
        }
    }
    for &l in labels {
        if l >= n_classes {
            return Err(MlError::LabelOutOfRange {
                label: l,
                n_classes,
            });
        }
    }
    Ok(n_features)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_catches_all_contract_violations() {
        assert!(matches!(
            validate_training_data(&[], &[], 2),
            Err(MlError::EmptyInput)
        ));
        assert!(validate_training_data(&[vec![1.0]], &[0, 1], 2).is_err());
        assert!(validate_training_data(&[vec![1.0]], &[0], 1).is_err());
        assert!(validate_training_data(&[vec![1.0], vec![1.0, 2.0]], &[0, 1], 2).is_err());
        assert!(validate_training_data(&[vec![1.0]], &[2], 2).is_err());
        assert_eq!(validate_training_data(&[vec![1.0, 2.0]], &[1], 2), Ok(2));
    }

    #[test]
    fn errors_are_send_sync_and_display() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MlError>();
        assert!(!MlError::EmptyInput.to_string().is_empty());
    }
}
