//! Brute-force k-nearest-neighbours classifier.

use crate::common::{squared_distance, Classifier};
use crate::error::validate_training_data;
use crate::MlError;

/// A k-NN classifier storing the full training set (the paper discards its
/// results as under-performing, but it is part of the Fig. 3 device sweep).
#[derive(Debug, Clone, PartialEq)]
pub struct KNearestNeighbors {
    k: usize,
    n_classes: usize,
    features: Vec<Vec<f64>>,
    labels: Vec<usize>,
}

impl KNearestNeighbors {
    /// "Fits" by storing the training data.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid training data or `k == 0`.
    pub fn fit(
        features: &[Vec<f64>],
        labels: &[usize],
        n_classes: usize,
        k: usize,
    ) -> Result<Self, MlError> {
        validate_training_data(features, labels, n_classes)?;
        if k == 0 {
            return Err(MlError::invalid("k", "must be positive"));
        }
        Ok(KNearestNeighbors {
            k: k.min(features.len()),
            n_classes,
            features: features.to_vec(),
            labels: labels.to_vec(),
        })
    }

    /// The neighbourhood size in use (clamped to the training-set size).
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Classifier for KNearestNeighbors {
    fn n_features(&self) -> usize {
        self.features[0].len()
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict(&self, sample: &[f64]) -> usize {
        assert_eq!(sample.len(), self.n_features(), "sample width mismatch");
        // Partial selection of the k smallest distances.
        let mut dists: Vec<(f64, usize)> = self
            .features
            .iter()
            .zip(&self.labels)
            .map(|(f, &l)| (squared_distance(sample, f), l))
            .collect();
        dists.select_nth_unstable_by(self.k - 1, |a, b| {
            a.0.partial_cmp(&b.0).expect("distances are finite")
        });
        let mut votes = vec![0usize; self.n_classes];
        for &(_, l) in &dists[..self.k] {
            votes[l] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|&(_, &v)| v)
            .map(|(i, _)| i)
            .expect("votes non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..20 {
            let c = i % 2;
            let off = if c == 0 { 0.0 } else { 10.0 };
            xs.push(vec![off + (i as f64) * 0.05, off - (i as f64) * 0.03]);
            ys.push(c);
        }
        (xs, ys)
    }

    #[test]
    fn classifies_separated_data() {
        let (xs, ys) = data();
        let model = KNearestNeighbors::fit(&xs, &ys, 2, 3).unwrap();
        assert_eq!(model.predict(&[0.2, 0.1]), 0);
        assert_eq!(model.predict(&[10.1, 9.8]), 1);
        assert_eq!(model.accuracy(&xs, &ys), 1.0);
    }

    #[test]
    fn one_nn_memorizes_training_points() {
        let (xs, ys) = data();
        let model = KNearestNeighbors::fit(&xs, &ys, 2, 1).unwrap();
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(model.predict(x), y);
        }
    }

    #[test]
    fn k_is_clamped_to_training_size() {
        let (xs, ys) = data();
        let model = KNearestNeighbors::fit(&xs, &ys, 2, 1000).unwrap();
        assert_eq!(model.k(), xs.len());
    }

    #[test]
    fn validates_input() {
        let (xs, ys) = data();
        assert!(KNearestNeighbors::fit(&xs, &ys, 2, 0).is_err());
        assert!(KNearestNeighbors::fit(&[], &[], 2, 1).is_err());
    }
}
