//! CART decision tree with Gini impurity.

use rand::rngs::StdRng;
use rand::Rng;

use crate::common::Classifier;
use crate::error::validate_training_data;
use crate::MlError;

/// Hyper-parameters for [`DecisionTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionTreeSpec {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Number of features considered per split; `None` = all features
    /// (set by [`RandomForest`](crate::RandomForest) to `sqrt(d)`).
    pub max_features: Option<usize>,
}

impl Default for DecisionTreeSpec {
    fn default() -> Self {
        DecisionTreeSpec {
            max_depth: 12,
            min_samples_split: 2,
            max_features: None,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        class: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted CART classification tree (arena-allocated nodes).
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_features: usize,
    n_classes: usize,
}

impl DecisionTree {
    /// Fits a tree on all features deterministically.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid training data or a zero `max_depth`.
    pub fn fit(
        features: &[Vec<f64>],
        labels: &[usize],
        n_classes: usize,
        spec: DecisionTreeSpec,
    ) -> Result<Self, MlError> {
        Self::fit_with_rng(features, labels, n_classes, spec, None)
    }

    /// Fits a tree, optionally subsampling candidate features per split
    /// using `rng` (the random-forest path).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid training data or a zero `max_depth`.
    pub fn fit_with_rng(
        features: &[Vec<f64>],
        labels: &[usize],
        n_classes: usize,
        spec: DecisionTreeSpec,
        rng: Option<&mut StdRng>,
    ) -> Result<Self, MlError> {
        let n_features = validate_training_data(features, labels, n_classes)?;
        if spec.max_depth == 0 {
            return Err(MlError::invalid("max_depth", "must be positive"));
        }
        if spec.min_samples_split < 2 {
            return Err(MlError::invalid("min_samples_split", "must be at least 2"));
        }
        let mut builder = TreeBuilder {
            features,
            labels,
            n_classes,
            n_features,
            spec,
            rng,
            nodes: Vec::new(),
        };
        let all: Vec<usize> = (0..features.len()).collect();
        builder.build(&all, 0);
        Ok(DecisionTree {
            nodes: builder.nodes,
            n_features,
            n_classes,
        })
    }

    /// Number of nodes (leaves + splits).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }
}

impl Classifier for DecisionTree {
    fn n_features(&self) -> usize {
        self.n_features
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict(&self, sample: &[f64]) -> usize {
        assert_eq!(sample.len(), self.n_features, "sample width mismatch");
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { class } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if sample[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

struct TreeBuilder<'a> {
    features: &'a [Vec<f64>],
    labels: &'a [usize],
    n_classes: usize,
    n_features: usize,
    spec: DecisionTreeSpec,
    rng: Option<&'a mut StdRng>,
    nodes: Vec<Node>,
}

impl TreeBuilder<'_> {
    /// Builds the subtree over `indices`, returning its node id.
    fn build(&mut self, indices: &[usize], depth: usize) -> usize {
        let counts = self.class_counts(indices);
        let majority = argmax_count(&counts);
        let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
        if pure || depth >= self.spec.max_depth || indices.len() < self.spec.min_samples_split {
            self.nodes.push(Node::Leaf { class: majority });
            return self.nodes.len() - 1;
        }
        let Some((feature, threshold)) = self.best_split(indices, &counts) else {
            self.nodes.push(Node::Leaf { class: majority });
            return self.nodes.len() - 1;
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .iter()
            .partition(|&&i| self.features[i][feature] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            self.nodes.push(Node::Leaf { class: majority });
            return self.nodes.len() - 1;
        }
        // Reserve this node's slot before recursing so children get later ids.
        let id = self.nodes.len();
        self.nodes.push(Node::Leaf { class: majority }); // placeholder
        let left = self.build(&left_idx, depth + 1);
        let right = self.build(&right_idx, depth + 1);
        self.nodes[id] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        id
    }

    fn class_counts(&self, indices: &[usize]) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &i in indices {
            counts[self.labels[i]] += 1;
        }
        counts
    }

    /// Exhaustive best Gini split over (a subsample of) features.
    fn best_split(&mut self, indices: &[usize], parent_counts: &[usize]) -> Option<(usize, f64)> {
        let candidates: Vec<usize> = match (self.spec.max_features, self.rng.as_deref_mut()) {
            (Some(m), Some(rng)) if m < self.n_features => {
                // Sample m distinct features.
                let mut pool: Vec<usize> = (0..self.n_features).collect();
                for i in 0..m {
                    let j = rng.random_range(i..pool.len());
                    pool.swap(i, j);
                }
                pool.truncate(m);
                pool
            }
            _ => (0..self.n_features).collect(),
        };

        let n = indices.len() as f64;
        let parent_gini = gini(parent_counts, indices.len());
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)

        for &f in &candidates {
            let mut sorted: Vec<usize> = indices.to_vec();
            sorted.sort_by(|&a, &b| {
                self.features[a][f]
                    .partial_cmp(&self.features[b][f])
                    .expect("finite features")
            });
            let mut left_counts = vec![0usize; self.n_classes];
            let mut right_counts = parent_counts.to_vec();
            for w in 0..sorted.len() - 1 {
                let i = sorted[w];
                left_counts[self.labels[i]] += 1;
                right_counts[self.labels[i]] -= 1;
                let v_here = self.features[i][f];
                let v_next = self.features[sorted[w + 1]][f];
                if v_next <= v_here {
                    continue; // can't split between equal values
                }
                let n_left = w + 1;
                let n_right = sorted.len() - n_left;
                let weighted = (n_left as f64 / n) * gini(&left_counts, n_left)
                    + (n_right as f64 / n) * gini(&right_counts, n_right);
                let gain = parent_gini - weighted;
                // Accept zero-gain splits (sklearn behaviour): XOR-like
                // patterns need a first split that does not reduce Gini.
                if best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((f, 0.5 * (v_here + v_next), gain));
                }
            }
        }
        best.map(|(f, t, _)| (f, t))
    }
}

fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / t;
            p * p
        })
        .sum::<f64>()
}

fn argmax_count(counts: &[usize]) -> usize {
    counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, &c)| c)
        .map(|(i, _)| i)
        .expect("counts non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Vec<Vec<f64>>, Vec<usize>) {
        // Non-linear: the exact XOR grid (each corner repeated), which a
        // linear model cannot fit but a depth-2 tree can. The first split
        // has zero Gini gain — the case the zero-gain acceptance exists for.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..40 {
            let a = (i / 2) % 2;
            let b = i % 2;
            xs.push(vec![a as f64, b as f64]);
            ys.push(a ^ b);
        }
        (xs, ys)
    }

    #[test]
    fn tree_fits_xor() {
        let (xs, ys) = xor_data();
        let tree = DecisionTree::fit(&xs, &ys, 2, DecisionTreeSpec::default()).unwrap();
        assert_eq!(tree.accuracy(&xs, &ys), 1.0);
    }

    #[test]
    fn depth_one_tree_cannot_fit_xor() {
        let (xs, ys) = xor_data();
        let spec = DecisionTreeSpec {
            max_depth: 1,
            ..Default::default()
        };
        let stump = DecisionTree::fit(&xs, &ys, 2, spec).unwrap();
        assert!(stump.accuracy(&xs, &ys) < 0.8);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let xs = vec![vec![1.0], vec![2.0], vec![3.0]];
        let ys = vec![1, 1, 1];
        let tree = DecisionTree::fit(&xs, &ys, 2, DecisionTreeSpec::default()).unwrap();
        assert_eq!(tree.n_nodes(), 1);
        assert_eq!(tree.predict(&[99.0]), 1);
    }

    #[test]
    fn constant_features_yield_single_leaf() {
        let xs = vec![vec![5.0], vec![5.0], vec![5.0], vec![5.0]];
        let ys = vec![0, 1, 0, 1];
        let tree = DecisionTree::fit(&xs, &ys, 2, DecisionTreeSpec::default()).unwrap();
        assert_eq!(tree.n_nodes(), 1, "no valid split exists");
    }

    #[test]
    fn gini_of_pure_set_is_zero() {
        assert_eq!(gini(&[5, 0], 5), 0.0);
        assert!((gini(&[5, 5], 10) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn validates_spec() {
        let (xs, ys) = xor_data();
        let bad = DecisionTreeSpec {
            max_depth: 0,
            ..Default::default()
        };
        assert!(DecisionTree::fit(&xs, &ys, 2, bad).is_err());
    }
}
