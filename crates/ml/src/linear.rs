//! Linear baselines: multinomial logistic regression and a one-vs-rest
//! linear SVM trained with hinge-loss SGD.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::common::{argmax, Classifier, Scaler};
use crate::error::validate_training_data;
use crate::MlError;

/// Hyper-parameters for [`LogisticRegression`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogisticRegressionSpec {
    /// Full-batch gradient-descent epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
}

impl Default for LogisticRegressionSpec {
    fn default() -> Self {
        LogisticRegressionSpec {
            epochs: 200,
            learning_rate: 0.5,
            l2: 1e-4,
        }
    }
}

/// Multinomial (softmax) logistic regression with standardized inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegression {
    scaler: Scaler,
    /// `weights[c][j]`, plus bias at index `n_features`.
    weights: Vec<Vec<f64>>,
    n_classes: usize,
}

impl LogisticRegression {
    /// Trains with full-batch gradient descent on the softmax
    /// cross-entropy.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid training data or non-positive
    /// hyper-parameters.
    pub fn fit(
        features: &[Vec<f64>],
        labels: &[usize],
        n_classes: usize,
        spec: LogisticRegressionSpec,
    ) -> Result<Self, MlError> {
        let n_features = validate_training_data(features, labels, n_classes)?;
        if spec.epochs == 0 {
            return Err(MlError::invalid("epochs", "must be positive"));
        }
        if spec.learning_rate <= 0.0 || spec.learning_rate.is_nan() {
            return Err(MlError::invalid("learning_rate", "must be positive"));
        }
        let scaler = Scaler::fit(features)?;
        let xs = scaler.transform_batch(features);
        let n = xs.len() as f64;
        let mut weights = vec![vec![0.0; n_features + 1]; n_classes];

        for _ in 0..spec.epochs {
            let mut grads = vec![vec![0.0; n_features + 1]; n_classes];
            for (x, &y) in xs.iter().zip(labels) {
                let probs = softmax(&logits(&weights, x));
                for (c, grad) in grads.iter_mut().enumerate() {
                    let err = probs[c] - if c == y { 1.0 } else { 0.0 };
                    for (j, &xj) in x.iter().enumerate() {
                        grad[j] += err * xj;
                    }
                    grad[n_features] += err;
                }
            }
            for (w, g) in weights.iter_mut().zip(&grads) {
                for (wj, &gj) in w.iter_mut().zip(g) {
                    *wj -= spec.learning_rate * (gj / n + spec.l2 * *wj);
                }
            }
        }
        Ok(LogisticRegression {
            scaler,
            weights,
            n_classes,
        })
    }

    /// Class probabilities for one sample.
    ///
    /// # Panics
    ///
    /// Panics if `sample.len() != self.n_features()`.
    pub fn probabilities(&self, sample: &[f64]) -> Vec<f64> {
        let x = self.scaler.transform(sample);
        softmax(&logits(&self.weights, &x))
    }
}

impl Classifier for LogisticRegression {
    fn n_features(&self) -> usize {
        self.scaler.n_features()
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict(&self, sample: &[f64]) -> usize {
        argmax(&self.probabilities(sample))
    }
}

fn logits(weights: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
    weights
        .iter()
        .map(|w| {
            let bias = w[x.len()];
            w[..x.len()].iter().zip(x).map(|(a, b)| a * b).sum::<f64>() + bias
        })
        .collect()
}

fn softmax(z: &[f64]) -> Vec<f64> {
    let max = z.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = z.iter().map(|v| (v - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|v| v / sum).collect()
}

/// Hyper-parameters for [`LinearSvm`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearSvmSpec {
    /// SGD epochs over the shuffled training set.
    pub epochs: usize,
    /// Regularization parameter λ of the Pegasos-style update.
    pub lambda: f64,
    /// RNG seed used for shuffling.
    pub seed: u64,
}

impl Default for LinearSvmSpec {
    fn default() -> Self {
        LinearSvmSpec {
            epochs: 150,
            lambda: 3e-4,
            seed: 0,
        }
    }
}

/// One-vs-rest linear SVM trained with the Pegasos SGD scheme on the hinge
/// loss.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSvm {
    scaler: Scaler,
    /// One weight vector (+ bias) per class, scoring class-vs-rest.
    weights: Vec<Vec<f64>>,
    n_classes: usize,
}

impl LinearSvm {
    /// Trains `n_classes` one-vs-rest hinge-loss separators.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid training data or non-positive
    /// hyper-parameters.
    pub fn fit(
        features: &[Vec<f64>],
        labels: &[usize],
        n_classes: usize,
        spec: LinearSvmSpec,
    ) -> Result<Self, MlError> {
        let n_features = validate_training_data(features, labels, n_classes)?;
        if spec.epochs == 0 {
            return Err(MlError::invalid("epochs", "must be positive"));
        }
        if spec.lambda <= 0.0 || spec.lambda.is_nan() {
            return Err(MlError::invalid("lambda", "must be positive"));
        }
        let scaler = Scaler::fit(features)?;
        let xs = scaler.transform_batch(features);
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut weights = vec![vec![0.0; n_features + 1]; n_classes];
        // Tail-averaged iterates (Pegasos §2.2): late SGD steps jitter
        // around the optimum with step size 1/(λt), so averaging the
        // second half of training yields a markedly more stable
        // classifier than the final iterate.
        let mut averaged = vec![vec![0.0; n_features + 1]; n_classes];
        let mut averaged_steps = 0.0f64;
        let tail_start = spec.epochs / 2;
        let mut order: Vec<usize> = (0..xs.len()).collect();

        let mut t = 1.0f64;
        for epoch in 0..spec.epochs {
            // Fisher-Yates shuffle.
            for i in (1..order.len()).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            for &i in &order {
                let x = &xs[i];
                // Cap the 1/(λt) schedule: with small λ the first steps
                // are otherwise enormous (η ≈ 1/λ) and throw the iterate
                // far from the origin, wasting most of training walking
                // back.
                let eta = (1.0 / (spec.lambda * t)).min(1.0);
                t += 1.0;
                for (c, w) in weights.iter_mut().enumerate() {
                    let y = if labels[i] == c { 1.0 } else { -1.0 };
                    let margin = y
                        * (w[..n_features]
                            .iter()
                            .zip(x)
                            .map(|(a, b)| a * b)
                            .sum::<f64>()
                            + w[n_features]);
                    // w ← (1 − ηλ)w (+ ηy·x if margin violated)
                    let shrink = 1.0 - eta * spec.lambda;
                    for wj in w[..n_features].iter_mut() {
                        *wj *= shrink;
                    }
                    if margin < 1.0 {
                        for (wj, &xj) in w[..n_features].iter_mut().zip(x) {
                            *wj += eta * y * xj;
                        }
                        w[n_features] += eta * y;
                    }
                }
                if epoch >= tail_start {
                    for (acc, w) in averaged.iter_mut().zip(&weights) {
                        for (aj, &wj) in acc.iter_mut().zip(w) {
                            *aj += wj;
                        }
                    }
                    averaged_steps += 1.0;
                }
            }
        }
        for acc in &mut averaged {
            for aj in acc.iter_mut() {
                *aj /= averaged_steps;
            }
        }
        Ok(LinearSvm {
            scaler,
            weights: averaged,
            n_classes,
        })
    }

    /// Raw one-vs-rest decision scores.
    ///
    /// # Panics
    ///
    /// Panics if `sample.len() != self.n_features()`.
    pub fn decision_scores(&self, sample: &[f64]) -> Vec<f64> {
        let x = self.scaler.transform(sample);
        logits(&self.weights, &x)
    }
}

impl Classifier for LinearSvm {
    fn n_features(&self) -> usize {
        self.scaler.n_features()
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict(&self, sample: &[f64]) -> usize {
        argmax(&self.decision_scores(sample))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_class_blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let centers = [(0.0, 0.0), (8.0, 0.0), (0.0, 8.0)];
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..90 {
            let c = i % 3;
            let (cx, cy) = centers[c];
            xs.push(vec![
                cx + ((i * 13) % 50) as f64 / 50.0,
                cy + ((i * 29) % 50) as f64 / 50.0,
            ]);
            ys.push(c);
        }
        (xs, ys)
    }

    #[test]
    fn logistic_regression_fits_blobs() {
        let (xs, ys) = three_class_blobs();
        let model =
            LogisticRegression::fit(&xs, &ys, 3, LogisticRegressionSpec::default()).unwrap();
        assert!(model.accuracy(&xs, &ys) >= 0.98);
    }

    #[test]
    fn logistic_probabilities_sum_to_one() {
        let (xs, ys) = three_class_blobs();
        let model =
            LogisticRegression::fit(&xs, &ys, 3, LogisticRegressionSpec::default()).unwrap();
        let p = model.probabilities(&xs[0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn svm_fits_blobs() {
        let (xs, ys) = three_class_blobs();
        let model = LinearSvm::fit(&xs, &ys, 3, LinearSvmSpec::default()).unwrap();
        assert!(model.accuracy(&xs, &ys) >= 0.98);
    }

    #[test]
    fn svm_is_deterministic() {
        let (xs, ys) = three_class_blobs();
        let a = LinearSvm::fit(&xs, &ys, 3, LinearSvmSpec::default()).unwrap();
        let b = LinearSvm::fit(&xs, &ys, 3, LinearSvmSpec::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn specs_are_validated() {
        let (xs, ys) = three_class_blobs();
        let bad_lr = LogisticRegressionSpec {
            epochs: 0,
            ..Default::default()
        };
        assert!(LogisticRegression::fit(&xs, &ys, 3, bad_lr).is_err());
        let bad_svm = LinearSvmSpec {
            lambda: 0.0,
            ..Default::default()
        };
        assert!(LinearSvm::fit(&xs, &ys, 3, bad_svm).is_err());
    }
}
