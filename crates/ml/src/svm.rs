//! RBF-kernel SVM via kernelized Pegasos — the paper's "SVM" baseline is
//! scikit-learn's `SVC`, which defaults to an RBF kernel; a linear SVM
//! would understate it badly on the non-linear benchmarks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::common::{argmax, Classifier, Scaler};
use crate::error::validate_training_data;
use crate::MlError;

/// Hyper-parameters for [`RbfSvm`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RbfSvmSpec {
    /// Kernel-Pegasos epochs over the training set.
    pub epochs: usize,
    /// Regularization parameter λ.
    pub lambda: f64,
    /// RBF bandwidth γ; `None` uses the scikit-learn "scale" heuristic
    /// `1 / (n_features · var(X))`.
    pub gamma: Option<f64>,
    /// RNG seed used for shuffling.
    pub seed: u64,
}

impl Default for RbfSvmSpec {
    fn default() -> Self {
        RbfSvmSpec {
            epochs: 30,
            lambda: 1e-4,
            gamma: None,
            seed: 0,
        }
    }
}

/// A one-vs-rest RBF-kernel SVM trained with kernelized Pegasos.
///
/// Keeps the full training set as (potential) support vectors with one
/// integer coefficient per class — simple, deterministic, and accurate on
/// the mid-sized benchmarks this crate targets.
#[derive(Debug, Clone, PartialEq)]
pub struct RbfSvm {
    scaler: Scaler,
    support: Vec<Vec<f64>>,
    /// `alphas[c][i]`: count of margin violations of sample `i` against
    /// class `c`, signed by the one-vs-rest label.
    alphas: Vec<Vec<f64>>,
    gamma: f64,
    /// 1 / (λ · T) — the Pegasos decision-function scale (rank-invariant
    /// per class but kept for interpretable decision values).
    scale: f64,
    n_classes: usize,
}

impl RbfSvm {
    /// Trains the one-vs-rest kernel machines.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid training data or non-positive
    /// hyper-parameters.
    pub fn fit(
        features: &[Vec<f64>],
        labels: &[usize],
        n_classes: usize,
        spec: RbfSvmSpec,
    ) -> Result<Self, MlError> {
        let n_features = validate_training_data(features, labels, n_classes)?;
        if spec.epochs == 0 {
            return Err(MlError::invalid("epochs", "must be positive"));
        }
        if spec.lambda <= 0.0 || spec.lambda.is_nan() {
            return Err(MlError::invalid("lambda", "must be positive"));
        }
        if let Some(g) = spec.gamma {
            if g <= 0.0 || g.is_nan() {
                return Err(MlError::invalid("gamma", "must be positive"));
            }
        }
        let scaler = Scaler::fit(features)?;
        let xs = scaler.transform_batch(features);
        let n = xs.len();

        // "scale" heuristic on standardized data: var(X) = 1 per feature,
        // so gamma = 1 / n_features.
        let gamma = spec.gamma.unwrap_or(1.0 / n_features as f64);

        // Precompute the Gram matrix (n ≤ a few hundred in this repo).
        let mut gram = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            gram[i][i] = 1.0;
            for j in 0..i {
                let d2: f64 = xs[i].iter().zip(&xs[j]).map(|(a, b)| (a - b).powi(2)).sum();
                let k = (-gamma * d2).exp();
                gram[i][j] = k;
                gram[j][i] = k;
            }
        }

        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut alphas = vec![vec![0.0f64; n]; n_classes];
        let mut order: Vec<usize> = (0..n).collect();
        let mut t = 1.0f64;
        for _ in 0..spec.epochs {
            for i in (1..order.len()).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            for &i in &order {
                let inv = 1.0 / (spec.lambda * t);
                t += 1.0;
                for (c, alpha) in alphas.iter_mut().enumerate() {
                    let y_i = if labels[i] == c { 1.0 } else { -1.0 };
                    let f: f64 = alpha
                        .iter()
                        .zip(&gram[i])
                        .map(|(&a, &k)| a * k)
                        .sum::<f64>()
                        * inv;
                    if y_i * f < 1.0 {
                        alpha[i] += y_i;
                    }
                }
            }
        }
        let scale = 1.0 / (spec.lambda * t);
        Ok(RbfSvm {
            scaler,
            support: xs,
            alphas,
            gamma,
            scale,
            n_classes,
        })
    }

    /// The RBF bandwidth in use.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Number of stored support points.
    pub fn n_support(&self) -> usize {
        self.support.len()
    }

    /// One-vs-rest decision scores for a sample.
    ///
    /// # Panics
    ///
    /// Panics if `sample.len() != self.n_features()`.
    pub fn decision_scores(&self, sample: &[f64]) -> Vec<f64> {
        let x = self.scaler.transform(sample);
        let kernels: Vec<f64> = self
            .support
            .iter()
            .map(|s| {
                let d2: f64 = s.iter().zip(&x).map(|(a, b)| (a - b).powi(2)).sum();
                (-self.gamma * d2).exp()
            })
            .collect();
        self.alphas
            .iter()
            .map(|alpha| {
                alpha
                    .iter()
                    .zip(&kernels)
                    .map(|(&a, &k)| a * k)
                    .sum::<f64>()
                    * self.scale
            })
            .collect()
    }
}

impl Classifier for RbfSvm {
    fn n_features(&self) -> usize {
        self.scaler.n_features()
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict(&self, sample: &[f64]) -> usize {
        argmax(&self.decision_scores(sample))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rings() -> (Vec<Vec<f64>>, Vec<usize>) {
        // Concentric rings: linearly inseparable, easy for an RBF kernel.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..120 {
            let c = i % 2;
            let r = if c == 0 { 1.0 } else { 3.0 };
            let theta = (i as f64) * 0.21;
            xs.push(vec![r * theta.cos(), r * theta.sin()]);
            ys.push(c);
        }
        (xs, ys)
    }

    #[test]
    fn rbf_svm_fits_rings() {
        let (xs, ys) = rings();
        let svm = RbfSvm::fit(&xs, &ys, 2, RbfSvmSpec::default()).unwrap();
        assert!(
            svm.accuracy(&xs, &ys) >= 0.98,
            "acc = {}",
            svm.accuracy(&xs, &ys)
        );
    }

    #[test]
    fn linear_svm_cannot_fit_rings_but_rbf_can() {
        use crate::linear::{LinearSvm, LinearSvmSpec};
        let (xs, ys) = rings();
        let linear = LinearSvm::fit(&xs, &ys, 2, LinearSvmSpec::default()).unwrap();
        let rbf = RbfSvm::fit(&xs, &ys, 2, RbfSvmSpec::default()).unwrap();
        assert!(rbf.accuracy(&xs, &ys) > linear.accuracy(&xs, &ys) + 0.2);
    }

    #[test]
    fn gamma_heuristic_is_inverse_features() {
        let (xs, ys) = rings();
        let svm = RbfSvm::fit(&xs, &ys, 2, RbfSvmSpec::default()).unwrap();
        assert!((svm.gamma() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deterministic_under_seed() {
        let (xs, ys) = rings();
        let a = RbfSvm::fit(&xs, &ys, 2, RbfSvmSpec::default()).unwrap();
        let b = RbfSvm::fit(&xs, &ys, 2, RbfSvmSpec::default()).unwrap();
        assert_eq!(a.predict_batch(&xs), b.predict_batch(&xs));
    }

    #[test]
    fn validates_spec() {
        let (xs, ys) = rings();
        assert!(RbfSvm::fit(
            &xs,
            &ys,
            2,
            RbfSvmSpec {
                epochs: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(RbfSvm::fit(
            &xs,
            &ys,
            2,
            RbfSvmSpec {
                gamma: Some(0.0),
                ..Default::default()
            }
        )
        .is_err());
    }
}
