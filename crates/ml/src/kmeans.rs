//! K-means clustering (Lloyd's algorithm with k-means++ seeding) — the
//! baseline of Table 2 and Fig. 10.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::common::squared_distance;
use crate::MlError;

/// K-means hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansSpec {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Convergence threshold on total centroid movement.
    pub tolerance: f64,
    /// RNG seed for k-means++ initialization.
    pub seed: u64,
}

impl KMeansSpec {
    /// Spec with default iteration budget (100) and tolerance (1e-6).
    pub fn new(k: usize) -> Self {
        KMeansSpec {
            k,
            max_iters: 100,
            tolerance: 1e-6,
            seed: 0,
        }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Outcome of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansOutcome {
    /// Cluster assignment per input point.
    pub assignments: Vec<usize>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
    /// Whether the run converged before the iteration budget.
    pub converged: bool,
}

/// A fitted k-means model.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans {
    centroids: Vec<Vec<f64>>,
}

impl KMeans {
    /// Runs k-means++ initialization followed by Lloyd iterations.
    ///
    /// # Errors
    ///
    /// Returns an error for empty input, `k == 0`, `k > n`, or ragged rows.
    pub fn fit(points: &[Vec<f64>], spec: KMeansSpec) -> Result<(Self, KMeansOutcome), MlError> {
        if points.is_empty() {
            return Err(MlError::EmptyInput);
        }
        if spec.k == 0 {
            return Err(MlError::invalid("k", "must be positive"));
        }
        if spec.k > points.len() {
            return Err(MlError::invalid(
                "k",
                format!("k = {} exceeds {} points", spec.k, points.len()),
            ));
        }
        let d = points[0].len();
        if points.iter().any(|p| p.len() != d) {
            return Err(MlError::shape("ragged point rows"));
        }

        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut centroids = kmeanspp_init(points, spec.k, &mut rng);
        let mut assignments = vec![0usize; points.len()];
        let mut iterations = 0;
        let mut converged = false;

        for _ in 0..spec.max_iters {
            iterations += 1;
            // Assignment step.
            for (i, p) in points.iter().enumerate() {
                assignments[i] = nearest(p, &centroids).0;
            }
            // Update step.
            let mut sums = vec![vec![0.0; d]; spec.k];
            let mut counts = vec![0usize; spec.k];
            for (p, &a) in points.iter().zip(&assignments) {
                counts[a] += 1;
                for (j, &v) in p.iter().enumerate() {
                    sums[a][j] += v;
                }
            }
            let mut movement = 0.0;
            for c in 0..spec.k {
                if counts[c] == 0 {
                    continue; // keep empty centroid in place
                }
                for v in &mut sums[c] {
                    *v /= counts[c] as f64;
                }
                movement += squared_distance(&sums[c], &centroids[c]).sqrt();
                centroids[c] = std::mem::take(&mut sums[c]);
            }
            if movement < spec.tolerance {
                converged = true;
                break;
            }
        }

        let inertia = points
            .iter()
            .zip(&assignments)
            .map(|(p, &a)| squared_distance(p, &centroids[a]))
            .sum();
        Ok((
            KMeans { centroids },
            KMeansOutcome {
                assignments,
                inertia,
                iterations,
                converged,
            },
        ))
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// The fitted centroids.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Assigns a point to its nearest centroid.
    ///
    /// # Panics
    ///
    /// Panics if `point` has the wrong width.
    pub fn assign(&self, point: &[f64]) -> usize {
        nearest(point, &self.centroids).0
    }
}

fn nearest(p: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = squared_distance(p, centroid);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

fn kmeanspp_init(points: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.random_range(0..points.len())].clone());
    let mut dists: Vec<f64> = points
        .iter()
        .map(|p| squared_distance(p, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = dists.iter().sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with a centroid: pick uniformly.
            points[rng.random_range(0..points.len())].clone()
        } else {
            let mut t = rng.random_range(0.0..total);
            let mut chosen = points.len() - 1;
            for (i, &d) in dists.iter().enumerate() {
                if t < d {
                    chosen = i;
                    break;
                }
                t -= d;
            }
            points[chosen].clone()
        };
        for (i, p) in points.iter().enumerate() {
            let d = squared_distance(p, &next);
            if d < dists[i] {
                dists[i] = d;
            }
        }
        centroids.push(next);
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut points = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let c = i % 3;
            let (cx, cy) = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)][c];
            let dx = ((i * 37) % 100) as f64 / 100.0 - 0.5;
            let dy = ((i * 61) % 100) as f64 / 100.0 - 0.5;
            points.push(vec![cx + dx, cy + dy]);
            labels.push(c);
        }
        (points, labels)
    }

    #[test]
    fn recovers_separated_blobs() {
        let (points, truth) = blobs();
        let (_, outcome) = KMeans::fit(&points, KMeansSpec::new(3).with_seed(1)).unwrap();
        // Perfect clustering up to label permutation: every truth class maps
        // to exactly one cluster.
        for c in 0..3 {
            let cluster_ids: std::collections::HashSet<usize> = truth
                .iter()
                .zip(&outcome.assignments)
                .filter(|&(&t, _)| t == c)
                .map(|(_, &a)| a)
                .collect();
            assert_eq!(cluster_ids.len(), 1, "class {c} split across clusters");
        }
        assert!(outcome.converged);
    }

    #[test]
    fn inertia_is_low_for_tight_blobs() {
        let (points, _) = blobs();
        let (_, outcome) = KMeans::fit(&points, KMeansSpec::new(3).with_seed(2)).unwrap();
        assert!(outcome.inertia < 60.0, "inertia = {}", outcome.inertia);
    }

    #[test]
    fn more_clusters_never_increase_inertia() {
        let (points, _) = blobs();
        let (_, o2) = KMeans::fit(&points, KMeansSpec::new(2).with_seed(3)).unwrap();
        let (_, o6) = KMeans::fit(&points, KMeansSpec::new(6).with_seed(3)).unwrap();
        assert!(o6.inertia <= o2.inertia + 1e-9);
    }

    #[test]
    fn assign_is_consistent_with_fit() {
        let (points, _) = blobs();
        let (model, outcome) = KMeans::fit(&points, KMeansSpec::new(3).with_seed(4)).unwrap();
        for (p, &a) in points.iter().zip(&outcome.assignments) {
            assert_eq!(model.assign(p), a);
        }
    }

    #[test]
    fn validates_input() {
        assert!(KMeans::fit(&[], KMeansSpec::new(2)).is_err());
        let pts = vec![vec![1.0], vec![2.0]];
        assert!(KMeans::fit(&pts, KMeansSpec::new(0)).is_err());
        assert!(KMeans::fit(&pts, KMeansSpec::new(3)).is_err());
        let ragged = vec![vec![1.0], vec![2.0, 3.0]];
        assert!(KMeans::fit(&ragged, KMeansSpec::new(1)).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let (points, _) = blobs();
        let a = KMeans::fit(&points, KMeansSpec::new(3).with_seed(9)).unwrap();
        let b = KMeans::fit(&points, KMeansSpec::new(3).with_seed(9)).unwrap();
        assert_eq!(a.1.assignments, b.1.assignments);
    }
}
