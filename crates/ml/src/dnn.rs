//! A small validation-driven architecture search over MLP shapes — the
//! stand-in for the paper's AutoKeras DNN baseline (§3.2 uses AutoKeras
//! "for automated model exploration"; here the search space is a fixed
//! ladder of depths/widths and the selection criterion is held-out
//! accuracy, which plays the same role deterministically).

use crate::common::Classifier;
use crate::error::validate_training_data;
use crate::mlp::{Mlp, MlpSpec};
use crate::MlError;

/// Hyper-parameters for [`DnnSearch`].
#[derive(Debug, Clone, PartialEq)]
pub struct DnnSearchSpec {
    /// Candidate hidden-layer architectures to evaluate.
    pub candidates: Vec<Vec<usize>>,
    /// Fraction of the training data held out for selection.
    pub validation_fraction: f64,
    /// Epochs per candidate during search (the winner is retrained longer).
    pub search_epochs: usize,
    /// Epochs for the final fit of the winning architecture.
    pub final_epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DnnSearchSpec {
    fn default() -> Self {
        DnnSearchSpec {
            candidates: vec![
                vec![64],
                vec![128],
                vec![128, 64],
                vec![256, 128],
                vec![128, 128, 64],
            ],
            validation_fraction: 0.25,
            search_epochs: 40,
            final_epochs: 100,
            seed: 0,
        }
    }
}

/// The searched-DNN baseline: evaluates each candidate architecture on a
/// validation split, then retrains the winner on the full training set.
#[derive(Debug, Clone, PartialEq)]
pub struct DnnSearch {
    model: Mlp,
    chosen: Vec<usize>,
    validation_accuracy: f64,
}

impl DnnSearch {
    /// Runs the architecture search and final fit.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid training data or a degenerate spec
    /// (no candidates, bad validation fraction, ...).
    pub fn fit(
        features: &[Vec<f64>],
        labels: &[usize],
        n_classes: usize,
        spec: DnnSearchSpec,
    ) -> Result<Self, MlError> {
        validate_training_data(features, labels, n_classes)?;
        if spec.candidates.is_empty() {
            return Err(MlError::invalid("candidates", "must be non-empty"));
        }
        if !(0.05..=0.5).contains(&spec.validation_fraction) {
            return Err(MlError::invalid(
                "validation_fraction",
                "must be in [0.05, 0.5]",
            ));
        }
        let n = features.len();
        let n_val = ((n as f64) * spec.validation_fraction).round() as usize;
        let n_val = n_val.clamp(1, n - 1);
        // Deterministic stratified-ish split: every k-th sample goes to
        // validation (the generators interleave classes, so this is close
        // to stratified).
        let stride = n.div_ceil(n_val);
        let mut train_x = Vec::new();
        let mut train_y = Vec::new();
        let mut val_x = Vec::new();
        let mut val_y = Vec::new();
        for i in 0..n {
            if i % stride == 0 && val_x.len() < n_val {
                val_x.push(features[i].clone());
                val_y.push(labels[i]);
            } else {
                train_x.push(features[i].clone());
                train_y.push(labels[i]);
            }
        }
        // The inner split can lose a class from `train_x`; the MLP handles
        // that (it just never predicts it during search).

        let mut best: Option<(usize, f64)> = None;
        for (ci, hidden) in spec.candidates.iter().enumerate() {
            let mlp_spec = MlpSpec {
                hidden: hidden.clone(),
                epochs: spec.search_epochs,
                seed: spec.seed.wrapping_add(ci as u64),
                ..Default::default()
            };
            let candidate = Mlp::fit(&train_x, &train_y, n_classes, mlp_spec)?;
            let acc = candidate.accuracy(&val_x, &val_y);
            if best.is_none_or(|(_, b)| acc > b) {
                best = Some((ci, acc));
            }
        }
        let (chosen_idx, validation_accuracy) = best.expect("candidates non-empty");
        let chosen = spec.candidates[chosen_idx].clone();
        let final_spec = MlpSpec {
            hidden: chosen.clone(),
            epochs: spec.final_epochs,
            seed: spec.seed,
            ..Default::default()
        };
        let model = Mlp::fit(features, labels, n_classes, final_spec)?;
        Ok(DnnSearch {
            model,
            chosen,
            validation_accuracy,
        })
    }

    /// The winning hidden-layer architecture.
    pub fn chosen_architecture(&self) -> &[usize] {
        &self.chosen
    }

    /// Validation accuracy the winner achieved during search.
    pub fn validation_accuracy(&self) -> f64 {
        self.validation_accuracy
    }

    /// The final trained network.
    pub fn model(&self) -> &Mlp {
        &self.model
    }
}

impl Classifier for DnnSearch {
    fn n_features(&self) -> usize {
        self.model.n_features()
    }

    fn n_classes(&self) -> usize {
        self.model.n_classes()
    }

    fn predict(&self, sample: &[f64]) -> usize {
        self.model.predict(sample)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..90 {
            let c = i % 3;
            let (cx, cy) = [(0.0, 0.0), (6.0, 0.0), (0.0, 6.0)][c];
            xs.push(vec![
                cx + ((i * 13) % 40) as f64 / 40.0,
                cy + ((i * 29) % 40) as f64 / 40.0,
            ]);
            ys.push(c);
        }
        (xs, ys)
    }

    #[test]
    fn search_picks_an_architecture_and_fits() {
        let (xs, ys) = blobs();
        let spec = DnnSearchSpec {
            candidates: vec![vec![8], vec![16, 8]],
            search_epochs: 30,
            final_epochs: 60,
            ..Default::default()
        };
        let dnn = DnnSearch::fit(&xs, &ys, 3, spec).unwrap();
        assert!(!dnn.chosen_architecture().is_empty());
        assert!(dnn.accuracy(&xs, &ys) >= 0.95);
        assert!(dnn.validation_accuracy() > 0.5);
    }

    #[test]
    fn validates_spec() {
        let (xs, ys) = blobs();
        let bad = DnnSearchSpec {
            candidates: vec![],
            ..Default::default()
        };
        assert!(DnnSearch::fit(&xs, &ys, 3, bad).is_err());
        let bad = DnnSearchSpec {
            validation_fraction: 0.9,
            ..Default::default()
        };
        assert!(DnnSearch::fit(&xs, &ys, 3, bad).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let (xs, ys) = blobs();
        let spec = DnnSearchSpec {
            candidates: vec![vec![8]],
            search_epochs: 10,
            final_epochs: 20,
            ..Default::default()
        };
        let a = DnnSearch::fit(&xs, &ys, 3, spec.clone()).unwrap();
        let b = DnnSearch::fit(&xs, &ys, 3, spec).unwrap();
        assert_eq!(a.predict_batch(&xs), b.predict_batch(&xs));
    }
}
