//! Random forest: bagged, feature-subsampled CART trees.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::common::Classifier;
use crate::error::validate_training_data;
use crate::tree::{DecisionTree, DecisionTreeSpec};
use crate::MlError;

/// Hyper-parameters for [`RandomForest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomForestSpec {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree depth limit.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// RNG seed for bootstrap sampling and feature subsampling.
    pub seed: u64,
}

impl Default for RandomForestSpec {
    fn default() -> Self {
        RandomForestSpec {
            n_trees: 40,
            max_depth: 12,
            min_samples_split: 2,
            seed: 0,
        }
    }
}

/// A bagging ensemble of CART trees, each trained on a bootstrap resample
/// and restricted to `sqrt(n_features)` candidate features per split —
/// the paper's most energy-efficient conventional baseline (RF).
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_features: usize,
    n_classes: usize,
}

impl RandomForest {
    /// Trains the ensemble.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid training data or a zero tree count.
    pub fn fit(
        features: &[Vec<f64>],
        labels: &[usize],
        n_classes: usize,
        spec: RandomForestSpec,
    ) -> Result<Self, MlError> {
        let n_features = validate_training_data(features, labels, n_classes)?;
        if spec.n_trees == 0 {
            return Err(MlError::invalid("n_trees", "must be positive"));
        }
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let max_features = ((n_features as f64).sqrt().round() as usize).max(1);
        let tree_spec = DecisionTreeSpec {
            max_depth: spec.max_depth,
            min_samples_split: spec.min_samples_split,
            max_features: Some(max_features),
        };
        let n = features.len();
        let mut trees = Vec::with_capacity(spec.n_trees);
        for _ in 0..spec.n_trees {
            // Bootstrap resample.
            let mut boot_x = Vec::with_capacity(n);
            let mut boot_y = Vec::with_capacity(n);
            for _ in 0..n {
                let i = rng.random_range(0..n);
                boot_x.push(features[i].clone());
                boot_y.push(labels[i]);
            }
            // A bootstrap may miss a class entirely; that is fine for a
            // voting ensemble, but `validate_training_data` requires labels
            // `< n_classes`, which still holds.
            trees.push(DecisionTree::fit_with_rng(
                &boot_x,
                &boot_y,
                n_classes,
                tree_spec,
                Some(&mut rng),
            )?);
        }
        Ok(RandomForest {
            trees,
            n_features,
            n_classes,
        })
    }

    /// Number of trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Classifier for RandomForest {
    fn n_features(&self) -> usize {
        self.n_features
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict(&self, sample: &[f64]) -> usize {
        let mut votes = vec![0usize; self.n_classes];
        for tree in &self.trees {
            votes[tree.predict(sample)] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|&(_, &v)| v)
            .map(|(i, _)| i)
            .expect("votes non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..120 {
            let c = i % 3;
            let (cx, cy) = [(0.0, 0.0), (4.0, 4.0), (0.0, 4.0)][c];
            xs.push(vec![
                cx + ((i * 17) % 100) as f64 / 60.0,
                cy + ((i * 31) % 100) as f64 / 60.0,
                ((i * 7) % 10) as f64, // nuisance feature
            ]);
            ys.push(c);
        }
        (xs, ys)
    }

    #[test]
    fn forest_fits_blobs() {
        let (xs, ys) = noisy_blobs();
        let forest = RandomForest::fit(&xs, &ys, 3, RandomForestSpec::default()).unwrap();
        assert!(forest.accuracy(&xs, &ys) >= 0.95);
    }

    #[test]
    fn forest_is_deterministic() {
        let (xs, ys) = noisy_blobs();
        let a = RandomForest::fit(&xs, &ys, 3, RandomForestSpec::default()).unwrap();
        let b = RandomForest::fit(&xs, &ys, 3, RandomForestSpec::default()).unwrap();
        assert_eq!(a.predict_batch(&xs), b.predict_batch(&xs));
    }

    #[test]
    fn more_trees_at_least_match_one_tree() {
        let (xs, ys) = noisy_blobs();
        let one = RandomForest::fit(
            &xs,
            &ys,
            3,
            RandomForestSpec {
                n_trees: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let many = RandomForest::fit(&xs, &ys, 3, RandomForestSpec::default()).unwrap();
        assert!(many.accuracy(&xs, &ys) + 0.05 >= one.accuracy(&xs, &ys));
    }

    #[test]
    fn validates_spec() {
        let (xs, ys) = noisy_blobs();
        let bad = RandomForestSpec {
            n_trees: 0,
            ..Default::default()
        };
        assert!(RandomForest::fit(&xs, &ys, 3, bad).is_err());
    }
}
