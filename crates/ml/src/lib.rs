//! # generic-ml
//!
//! From-scratch classical machine-learning baselines for the GENERIC
//! (DAC'22) reproduction. The paper compares its HDC engine against
//! scikit-learn models (MLP, SVM, random forest, logistic regression,
//! k-NN, k-means) and AutoKeras-tuned DNNs (§3.2, §5.2, §5.3); this crate
//! implements equivalents in pure Rust so the whole evaluation is
//! self-contained:
//!
//! - [`KMeans`] — Lloyd's algorithm with k-means++ initialization,
//! - [`KNearestNeighbors`] — brute-force Euclidean k-NN,
//! - [`LogisticRegression`] — multinomial softmax with full-batch gradient
//!   descent,
//! - [`LinearSvm`] — one-vs-rest L2-regularized hinge loss via SGD,
//! - [`DecisionTree`] / [`RandomForest`] — CART with Gini impurity and
//!   bagged, feature-subsampled ensembles,
//! - [`Mlp`] — ReLU feed-forward network with softmax cross-entropy and
//!   momentum SGD,
//! - [`DnnSearch`] — a small validation-driven architecture search over
//!   MLP shapes, standing in for the paper's AutoKeras baseline.
//!
//! All estimators implement the object-safe [`Classifier`] trait and are
//! deterministic given a seed.
//!
//! ```
//! use generic_ml::{Classifier, LogisticRegression, LogisticRegressionSpec};
//!
//! # fn main() -> Result<(), generic_ml::MlError> {
//! let xs = vec![vec![0.0, 0.0], vec![0.0, 1.0], vec![5.0, 5.0], vec![5.0, 6.0]];
//! let ys = vec![0, 0, 1, 1];
//! let model = LogisticRegression::fit(&xs, &ys, 2, LogisticRegressionSpec::default())?;
//! assert_eq!(model.predict(&[0.2, 0.1]), 0);
//! assert_eq!(model.predict(&[5.2, 5.4]), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod common;
mod dnn;
mod error;
mod forest;
mod kmeans;
mod knn;
mod linear;
mod mlp;
mod svm;
mod tree;

pub use common::{Classifier, Scaler};
pub use dnn::{DnnSearch, DnnSearchSpec};
pub use error::MlError;
pub use forest::{RandomForest, RandomForestSpec};
pub use kmeans::{KMeans, KMeansOutcome, KMeansSpec};
pub use knn::KNearestNeighbors;
pub use linear::{LinearSvm, LinearSvmSpec, LogisticRegression, LogisticRegressionSpec};
pub use mlp::{Mlp, MlpSpec};
pub use svm::{RbfSvm, RbfSvmSpec};
pub use tree::{DecisionTree, DecisionTreeSpec};
