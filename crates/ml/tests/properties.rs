//! Property-based tests for the classical-ML baselines.

use generic_ml::{
    Classifier, DecisionTree, DecisionTreeSpec, KMeans, KMeansSpec, KNearestNeighbors,
    LogisticRegression, LogisticRegressionSpec, Scaler,
};
use proptest::prelude::*;

/// Two Gaussian-ish blobs parameterized by separation and a seed-like
/// integer jitter source.
fn blobs(sep: f64, jitter: u64, n_per_class: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..2 * n_per_class {
        let c = i % 2;
        let off = if c == 0 { 0.0 } else { sep };
        let j1 = ((i as u64).wrapping_mul(jitter | 1) % 100) as f64 / 100.0 - 0.5;
        let j2 = ((i as u64).wrapping_mul((jitter | 1).rotate_left(7)) % 100) as f64 / 100.0 - 0.5;
        xs.push(vec![off + j1, off + j2]);
        ys.push(c);
    }
    (xs, ys)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any classifier trained on well-separated blobs classifies its own
    /// training data perfectly.
    #[test]
    fn separable_blobs_are_learnable(jitter in any::<u64>()) {
        let (xs, ys) = blobs(10.0, jitter, 20);
        let knn = KNearestNeighbors::fit(&xs, &ys, 2, 3).expect("valid data");
        prop_assert_eq!(knn.accuracy(&xs, &ys), 1.0);
        let lr = LogisticRegression::fit(&xs, &ys, 2, LogisticRegressionSpec::default())
            .expect("valid data");
        prop_assert_eq!(lr.accuracy(&xs, &ys), 1.0);
        let tree = DecisionTree::fit(&xs, &ys, 2, DecisionTreeSpec::default())
            .expect("valid data");
        prop_assert_eq!(tree.accuracy(&xs, &ys), 1.0);
    }

    /// Logistic-regression probabilities are a valid distribution for any
    /// query point.
    #[test]
    fn lr_probabilities_are_distributions(
        jitter in any::<u64>(),
        qx in -20.0f64..20.0,
        qy in -20.0f64..20.0,
    ) {
        let (xs, ys) = blobs(6.0, jitter, 15);
        let lr = LogisticRegression::fit(&xs, &ys, 2, LogisticRegressionSpec::default())
            .expect("valid data");
        let p = lr.probabilities(&[qx, qy]);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// The scaler is an exact affine inverse: transforming the training
    /// data yields zero mean and unit variance per feature.
    #[test]
    fn scaler_normalizes_any_data(rows in prop::collection::vec(
        prop::collection::vec(-1e3f64..1e3, 3),
        4..40,
    )) {
        let scaler = Scaler::fit(&rows).expect("non-empty, rectangular");
        let t = scaler.transform_batch(&rows);
        let n = t.len() as f64;
        for j in 0..3 {
            let mean: f64 = t.iter().map(|r| r[j]).sum::<f64>() / n;
            prop_assert!(mean.abs() < 1e-6, "mean {mean}");
            let var: f64 = t.iter().map(|r| (r[j] - mean).powi(2)).sum::<f64>() / n;
            // Constant features are left centred (variance 0), otherwise 1.
            prop_assert!(var < 1e-6 || (var - 1.0).abs() < 1e-6, "var {var}");
        }
    }

    /// K-means inertia never increases when k grows (more centroids can
    /// only fit tighter).
    #[test]
    fn kmeans_inertia_is_monotone_in_k(jitter in any::<u64>()) {
        let (xs, _) = blobs(8.0, jitter, 25);
        let mut last = f64::INFINITY;
        for k in [1usize, 2, 4, 8] {
            let (_, outcome) = KMeans::fit(&xs, KMeansSpec::new(k).with_seed(jitter))
                .expect("valid data");
            prop_assert!(outcome.inertia <= last + 1e-9, "k={k}: {} > {last}", outcome.inertia);
            last = outcome.inertia;
        }
    }

    /// K-means assignments always index a valid centroid and cover the
    /// whole input.
    #[test]
    fn kmeans_assignments_are_well_formed(jitter in any::<u64>(), k in 1usize..6) {
        let (xs, _) = blobs(5.0, jitter, 15);
        let (model, outcome) = KMeans::fit(&xs, KMeansSpec::new(k).with_seed(jitter))
            .expect("valid data");
        prop_assert_eq!(outcome.assignments.len(), xs.len());
        prop_assert!(outcome.assignments.iter().all(|&a| a < model.k()));
        for (p, &a) in xs.iter().zip(&outcome.assignments) {
            prop_assert_eq!(model.assign(p), a);
        }
    }

    /// Decision trees never exceed their configured depth (node count is
    /// bounded by 2^(depth+1) - 1).
    #[test]
    fn tree_respects_depth_limit(jitter in any::<u64>(), depth in 1usize..6) {
        let (xs, ys) = blobs(1.0, jitter, 30); // overlapping: forces deep splits
        let spec = DecisionTreeSpec {
            max_depth: depth,
            ..Default::default()
        };
        let tree = DecisionTree::fit(&xs, &ys, 2, spec).expect("valid data");
        prop_assert!(tree.n_nodes() < (1 << (depth + 1)));
    }
}
