//! Property-based tests for the accelerator simulator: the cycle/energy
//! accounting must follow the §4 dataflow formulas for any configuration,
//! and the functional model must stay self-consistent under its knobs.

use generic_sim::{mitchell_divide, EnergyModel};
use generic_sim::{Accelerator, AcceleratorConfig, EnergyOptions, VosOperatingPoint};
use proptest::prelude::*;

fn toy_features(n_features: usize, rows: usize) -> Vec<Vec<f64>> {
    (0..rows)
        .map(|i| {
            (0..n_features)
                .map(|j| ((i * 5 + j * 3) % 13) as f64)
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Inference cycles follow `d + P·max(d, n_C) + n_C + 4` exactly.
    #[test]
    fn inference_cycle_formula_holds(
        dim_idx in 0usize..3,
        n_features in 8usize..40,
        n_classes in 2usize..8,
    ) {
        let dim = [1024usize, 2048, 4096][dim_idx];
        let features = toy_features(n_features, 4 * n_classes);
        let labels: Vec<usize> = (0..features.len()).map(|i| i % n_classes).collect();
        let config = AcceleratorConfig::new(dim, n_features, n_classes).with_seed(1);
        let mut acc = Accelerator::new(config, &features).expect("valid config");
        acc.train(&features, &labels, 1).expect("valid data");
        acc.reset_activity();
        acc.infer(&features[0]).expect("trained");
        let passes = (dim / 16) as u64;
        let d = n_features as u64;
        let c = n_classes as u64;
        let expected = d + passes * d.max(c) + c + 4;
        prop_assert_eq!(acc.activity().cycles, expected);
        prop_assert_eq!(acc.activity().divides, c);
        prop_assert_eq!(acc.activity().class_reads, passes * c * 16);
    }

    /// Mitchell division is exact on powers of two and within ±12.5 %
    /// everywhere.
    #[test]
    fn mitchell_division_error_bound(a in 1u64..1_000_000_000, b in 1u64..1_000_000) {
        let exact = a as f64 / b as f64;
        let approx = mitchell_divide(a, b);
        let rel = (approx - exact).abs() / exact;
        prop_assert!(rel < 0.125, "a={a} b={b}: rel {rel}");
    }

    /// Static power with gating is monotone in the class count and never
    /// exceeds the ungated figure.
    #[test]
    fn gated_static_power_is_monotone(c1 in 1usize..16, c2 in 16usize..33) {
        let model = EnergyModel::paper_default();
        let small = AcceleratorConfig::new(4096, 64, c1);
        let large = AcceleratorConfig::new(4096, 64, c2);
        let opts = EnergyOptions::default();
        let p_small = model.static_power_mw(&small, &opts);
        let p_large = model.static_power_mw(&large, &opts);
        prop_assert!(p_small <= p_large + 1e-12);
        let ungated = model.static_power_mw(
            &large,
            &EnergyOptions { power_gating: false, vos: None },
        );
        prop_assert!(p_large <= ungated + 1e-12);
    }

    /// Every voltage operating point keeps its factors in (0, 1] and its
    /// BER in [0, 0.5].
    #[test]
    fn vos_points_are_physical(v in 0.55f64..=1.0) {
        let p = VosOperatingPoint::at_voltage(v);
        prop_assert!(p.static_power_factor > 0.0 && p.static_power_factor <= 1.0);
        prop_assert!(p.dynamic_power_factor > 0.0 && p.dynamic_power_factor <= 1.0);
        prop_assert!((0.0..=0.5).contains(&p.bit_error_rate));
        prop_assert!(p.static_power_factor <= p.dynamic_power_factor + 1e-12);
    }

    /// Dimension-reduced inference never costs more cycles than full
    /// inference, and the ratio tracks the dimension ratio.
    #[test]
    fn reduced_inference_scales_cycles(chunks in 1usize..8) {
        let dims = 512 * chunks.min(8);
        let features = toy_features(16, 8);
        let labels = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let config = AcceleratorConfig::new(4096, 16, 2).with_seed(2);
        let mut acc = Accelerator::new(config, &features).expect("valid config");
        acc.train(&features, &labels, 1).expect("valid data");
        acc.reset_activity();
        acc.infer_reduced(&features[0], dims).expect("trained");
        let reduced = acc.activity().cycles;
        acc.reset_activity();
        acc.infer(&features[0]).expect("trained");
        let full = acc.activity().cycles;
        prop_assert!(reduced <= full);
        let ratio = reduced as f64 / full as f64;
        let expected = dims as f64 / 4096.0;
        prop_assert!((ratio - expected).abs() < 0.05, "ratio {ratio} vs {expected}");
    }

    /// Fault injection is deterministic under a seed and flips a fraction
    /// of bits consistent with the BER.
    #[test]
    fn fault_injection_statistics(seed in any::<u64>(), ber_pct in 1u32..20) {
        let ber = f64::from(ber_pct) / 100.0;
        let features = toy_features(16, 8);
        let labels = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let config = AcceleratorConfig::new(1024, 16, 2).with_seed(3);
        let mut acc = Accelerator::new(config, &features).expect("valid config");
        acc.train(&features, &labels, 1).expect("valid data");
        let mut a = acc.clone();
        let mut b = acc.clone();
        let fa = a.inject_class_bit_errors(ber, seed).expect("valid ber");
        let fb = b.inject_class_bit_errors(ber, seed).expect("valid ber");
        prop_assert_eq!(fa, fb);
        prop_assert_eq!(a.class_row(0), b.class_row(0));
        let total_bits = (2 * 1024 * 16) as f64;
        let expected = total_bits * ber;
        prop_assert!(
            (fa as f64) > expected * 0.5 && (fa as f64) < expected * 1.5,
            "flipped {fa}, expected ~{expected}"
        );
    }
}
