//! 14-nm technology parameters calibrating the energy/area model.
//!
//! The constants are fitted so the default configuration reproduces the
//! paper's reported silicon figures (§5.1, Fig. 7): total area 0.30 mm²,
//! worst-case static power 0.25 mW with all banks on, application-average
//! static power ≈ 0.09 mW after power gating, active dynamic power
//! ≈ 1.8 mW at 500 MHz, with the class memories dominating (~80–90 %)
//! every one of the three breakdowns.

/// Per-technology constants of the analytic area/power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechParams {
    /// SRAM area per bit, mm² (bitcell + array overhead).
    pub sram_area_per_bit_mm2: f64,
    /// SRAM leakage per bit, mW.
    pub sram_leak_per_bit_mw: f64,
    /// SRAM read energy per bit, pJ.
    pub sram_read_energy_per_bit_pj: f64,
    /// SRAM write energy per bit, pJ.
    pub sram_write_energy_per_bit_pj: f64,
    /// Access-energy multiplier for the deep, 16-way-parallel class
    /// memory macros relative to the small peripheral SRAMs (calibrated
    /// so the class memories carry ~80 % of dynamic power, Fig. 7c).
    pub class_sram_energy_factor: f64,
    /// Leakage multiplier for the small peripheral SRAMs (shorter
    /// bitlines, HVT cells) relative to the class memories (calibrated so
    /// the class memories carry ~91 % of static power, Fig. 7b).
    pub peripheral_sram_leak_factor: f64,
    /// Combinational datapath area (XOR tree, adders, multipliers,
    /// divider, registers), mm².
    pub datapath_area_mm2: f64,
    /// Datapath leakage, mW.
    pub datapath_leak_mw: f64,
    /// Energy of one `bw`-bit multiply-accumulate at 16-bit width, pJ
    /// (scaled quadratically with effective bit-width).
    pub mac_energy_pj: f64,
    /// Energy of one 16-lane XOR/permute slice operation, pJ.
    pub xor_energy_pj: f64,
    /// Energy of one Mitchell log-division, pJ.
    pub divide_energy_pj: f64,
    /// Controller area, mm².
    pub control_area_mm2: f64,
    /// Controller leakage, mW.
    pub control_leak_mw: f64,
    /// Controller dynamic energy per cycle, pJ.
    pub control_energy_per_cycle_pj: f64,
}

impl TechParams {
    /// GlobalFoundries-14-nm-class parameters used throughout the paper
    /// reproduction.
    pub fn gf14() -> Self {
        TechParams {
            // 2.097 Mbit of class memory → ~0.24 mm² (≈80 % of 0.30 mm²).
            sram_area_per_bit_mm2: 0.115e-6,
            // 2.36 Mbit total SRAM → ~0.24 mW worst-case leakage.
            sram_leak_per_bit_mw: 0.97e-7,
            // 16 class memories × 16-bit reads per search cycle dominate
            // the ~1.8 mW dynamic budget at 500 MHz.
            sram_read_energy_per_bit_pj: 0.011,
            sram_write_energy_per_bit_pj: 0.014,
            class_sram_energy_factor: 4.5,
            peripheral_sram_leak_factor: 0.45,
            datapath_area_mm2: 0.026,
            datapath_leak_mw: 0.006,
            mac_energy_pj: 0.045,
            xor_energy_pj: 0.008,
            divide_energy_pj: 0.9,
            control_area_mm2: 0.022,
            control_leak_mw: 0.004,
            control_energy_per_cycle_pj: 0.05,
        }
    }
}

impl Default for TechParams {
    fn default() -> Self {
        TechParams::gf14()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_gf14() {
        assert_eq!(TechParams::default(), TechParams::gf14());
    }

    #[test]
    fn all_constants_positive() {
        let t = TechParams::gf14();
        for v in [
            t.sram_area_per_bit_mm2,
            t.sram_leak_per_bit_mw,
            t.sram_read_energy_per_bit_pj,
            t.sram_write_energy_per_bit_pj,
            t.class_sram_energy_factor,
            t.peripheral_sram_leak_factor,
            t.datapath_area_mm2,
            t.datapath_leak_mw,
            t.mac_energy_pj,
            t.xor_energy_pj,
            t.divide_energy_pj,
            t.control_area_mm2,
            t.control_leak_mw,
            t.control_energy_per_cycle_pj,
        ] {
            assert!(v > 0.0);
        }
    }
}
