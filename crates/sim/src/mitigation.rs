//! Activity-cost hooks for resilient inference under faults.
//!
//! `generic_hdc::ResilientPipeline` counts its work — reduced first
//! passes, escalated full-dimension reads, class-memory scrubs — in a
//! [`ResilienceStats`] record. The builders here price that work with the
//! *same* cycle/activity formulas the engine charges for normal
//! execution (the engine's private accounting delegates to these
//! functions), so mitigation overhead lands in the energy model on equal
//! footing with the workload itself.
//!
//! ```
//! use generic_sim::{mitigation, AcceleratorConfig, EnergyModel, EnergyOptions};
//! use generic_hdc::ResilienceStats;
//!
//! let config = AcceleratorConfig::new(2048, 64, 13).with_bit_width(1);
//! let stats = ResilienceStats {
//!     queries: 100,
//!     reduced_passes: 100,
//!     full_passes: 15, // 5 escalations x 3 votes
//!     escalations: 5,
//!     scrubs: 1,
//! };
//! let act = mitigation::resilience_activity(&config, &stats, 512);
//! let report = EnergyModel::paper_default().report(&config, &act, &EnergyOptions::default());
//! assert!(report.total_energy_uj > 0.0);
//! ```

use generic_hdc::ResilienceStats;

use crate::arch::{AcceleratorConfig, LANES, SUB_NORM_CHUNK};
use crate::energy::ActivityCounts;
use crate::memory::N_CLASS_MEMORIES;

/// Activity of encoding one input. `with_load` charges the serial
/// input-port load of the `d` feature words.
pub fn encode_activity(config: &AcceleratorConfig, with_load: bool) -> ActivityCounts {
    let d = config.n_features as u64;
    let passes = config.passes() as u64;
    let windows = config.n_windows() as u64;
    let id_on = config.id_binding;
    ActivityCounts {
        cycles: if with_load { d } else { 0 } + passes * d,
        feature_accesses: if with_load { d } else { 0 } + passes * d,
        level_reads: passes * d,
        id_reads: if id_on {
            passes * windows.div_ceil(LANES as u64)
        } else {
            0
        },
        xor_ops: passes * windows * (config.window as u64 - 1 + u64::from(id_on)),
        ..Default::default()
    }
}

/// Activity of one inference over the first `dims` dimensions against
/// `rows` classes, including the pipelined encode (§4.1–§4.2).
pub fn infer_activity(config: &AcceleratorConfig, dims: usize, rows: usize) -> ActivityCounts {
    let d = config.n_features as u64;
    let rows = rows as u64;
    let passes = dims.div_ceil(LANES) as u64;
    let full_passes = config.passes() as u64;
    // Encode work is proportional to the dimensions actually produced.
    let mut act = encode_activity(config, true);
    let scale = |v: u64| v * passes / full_passes.max(1);
    act.cycles = d + passes * d.max(rows) + rows + 4;
    act.feature_accesses = d + passes * d;
    act.level_reads = scale(act.level_reads);
    act.id_reads = scale(act.id_reads);
    act.xor_ops = scale(act.xor_ops);
    act.class_reads = passes * rows * N_CLASS_MEMORIES as u64;
    act.score_accesses = passes * rows * 2;
    act.norm2_accesses = rows * (dims / SUB_NORM_CHUNK) as u64;
    act.mac_ops = passes * rows * LANES as u64;
    act.divides = rows;
    act
}

/// Activity of re-scoring an *already encoded* query over the first
/// `dims` dimensions — an escalated redundant read. The encoded query is
/// replayed from the temporary dimension registers, so no encoder or
/// feature-memory work is charged; only the search side runs.
pub fn search_activity(dims: usize, rows: usize) -> ActivityCounts {
    let rows = rows as u64;
    let passes = dims.div_ceil(LANES) as u64;
    ActivityCounts {
        cycles: passes * rows + rows + 4,
        class_reads: passes * rows * N_CLASS_MEMORIES as u64,
        score_accesses: passes * rows * 2,
        norm2_accesses: rows * (dims / SUB_NORM_CHUNK) as u64,
        mac_ops: passes * rows * LANES as u64,
        divides: rows,
        ..Default::default()
    }
}

/// Activity of one class update during retraining/clustering
/// (§4.2.2: `3 · D/m` cycles).
pub fn update_activity(config: &AcceleratorConfig) -> ActivityCounts {
    let passes = config.passes() as u64;
    ActivityCounts {
        cycles: 3 * passes,
        class_reads: 2 * passes * N_CLASS_MEMORIES as u64,
        class_writes: passes * N_CLASS_MEMORIES as u64,
        ..Default::default()
    }
}

/// Activity of one class-memory scrub: re-writing every class row from
/// the golden copy and refreshing the norm2 memory — the same cost the
/// engine charges for a config-port model load.
pub fn scrub_activity(config: &AcceleratorConfig) -> ActivityCounts {
    let words = (config.n_classes * config.dim) as u64;
    let chunks = (config.n_classes * (config.dim / SUB_NORM_CHUNK)) as u64;
    ActivityCounts {
        cycles: words / N_CLASS_MEMORIES as u64,
        class_writes: words,
        mac_ops: words,
        norm2_accesses: chunks,
        ..Default::default()
    }
}

/// Prices a whole [`ResilienceStats`] record against `config`:
///
/// - every query's first pass as a full pipelined inference over
///   `reduced_dims` dimensions (equal to `config.dim` when the two-tier
///   scheme is off),
/// - every escalated redundant read as a search-only full-dimension pass
///   (the query is already encoded),
/// - every scrub as a class-memory re-write.
///
/// `reduced_dims` must match the `ResilienceConfig::reduced_dims` the
/// stats were collected under, after resolution (i.e. the wrapped
/// pipeline's `config().reduced_dims`).
pub fn resilience_activity(
    config: &AcceleratorConfig,
    stats: &ResilienceStats,
    reduced_dims: usize,
) -> ActivityCounts {
    let rows = config.n_classes;
    // full_passes mixes full-dimension *first* passes (reduced_dims ==
    // dim) with escalated revotes; only the latter skip the encode.
    let first_full = stats.queries.saturating_sub(stats.reduced_passes);
    let revotes = stats.full_passes.saturating_sub(first_full);

    let mut total = ActivityCounts::default();
    total.accumulate(&infer_activity(config, reduced_dims, rows).scaled(stats.queries));
    total.accumulate(&search_activity(config.dim, rows).scaled(revotes));
    total.accumulate(&scrub_activity(config).scaled(stats.scrubs));
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> AcceleratorConfig {
        AcceleratorConfig::new(2048, 64, 10)
    }

    #[test]
    fn search_is_strictly_cheaper_than_inference() {
        let c = config();
        let infer = infer_activity(&c, c.dim, c.n_classes);
        let search = search_activity(c.dim, c.n_classes);
        assert!(search.cycles < infer.cycles);
        assert_eq!(search.class_reads, infer.class_reads);
        assert_eq!(search.feature_accesses, 0);
        assert_eq!(search.level_reads, 0);
    }

    #[test]
    fn reduced_inference_scales_class_reads() {
        let c = config();
        let full = infer_activity(&c, c.dim, c.n_classes);
        let quarter = infer_activity(&c, c.dim / 4, c.n_classes);
        assert_eq!(quarter.class_reads * 4, full.class_reads);
        assert!(quarter.cycles < full.cycles);
    }

    #[test]
    fn scrub_writes_every_class_word() {
        let c = config();
        let act = scrub_activity(&c);
        assert_eq!(act.class_writes, (c.n_classes * c.dim) as u64);
        assert_eq!(act.class_reads, 0);
    }

    #[test]
    fn resilience_activity_decomposes_stats() {
        let c = config();
        let stats = ResilienceStats {
            queries: 10,
            reduced_passes: 10,
            full_passes: 6, // 2 escalations x 3 votes
            escalations: 2,
            scrubs: 1,
        };
        let total = resilience_activity(&c, &stats, 512);

        let mut expected = ActivityCounts::default();
        expected.accumulate(&infer_activity(&c, 512, c.n_classes).scaled(10));
        expected.accumulate(&search_activity(c.dim, c.n_classes).scaled(6));
        expected.accumulate(&scrub_activity(&c));
        assert_eq!(total, expected);
    }

    #[test]
    fn baseline_stats_price_like_plain_inference() {
        let c = config();
        // reduced_dims == dim: every query is a single full first pass.
        let stats = ResilienceStats {
            queries: 7,
            reduced_passes: 0,
            full_passes: 7,
            escalations: 0,
            scrubs: 0,
        };
        let total = resilience_activity(&c, &stats, c.dim);
        assert_eq!(total, infer_activity(&c, c.dim, c.n_classes).scaled(7));
    }
}
