//! Architectural configuration — the accelerator's `spec`-port parameters.

use std::fmt;

/// Number of encoding dimensions generated per pass over the input and the
/// number of class memories (the architectural constant *m*, §4.1).
pub const LANES: usize = 16;

/// Total class-dimension capacity: `D × n_C` products must fit in
/// 32 classes × 4K dimensions (§4.1: "class memories can store D = 4K for
/// up to 32 classes; for an application with fewer classes, more
/// dimensions can be used").
pub const CLASS_DIM_CAPACITY: usize = 32 * 4096;

/// Maximum features per input (the 1024×8b feature memory, §5.1).
pub const MAX_FEATURES: usize = 1024;

/// Number of quantization bins in the level memory (§5.1).
pub const LEVEL_BINS: usize = 64;

/// Sub-norm granularity for on-demand dimension reduction (§4.3.3).
pub const SUB_NORM_CHUNK: usize = 128;

/// Per-application configuration delivered over the `spec` port:
/// dimensionality, feature count, window length, class count, effective
/// bit-width, and mode-independent constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceleratorConfig {
    /// Hypervector dimensionality `D` (multiple of 128, ≤ capacity).
    pub dim: usize,
    /// Features per input `d` (≤ 1024).
    pub n_features: usize,
    /// Number of classes or centroids `n_C`.
    pub n_classes: usize,
    /// Sliding-window length `n`.
    pub window: usize,
    /// Effective class-element bit-width `bw` (1..=16).
    pub bit_width: u8,
    /// Whether per-window id binding is enabled (ids = 0 disables, §3.1).
    pub id_binding: bool,
    /// Clock frequency in MHz (synthesis target 500 MHz, §5.1).
    pub clock_mhz: f64,
    /// Item-memory seed (levels + seed id).
    pub seed: u64,
}

impl AcceleratorConfig {
    /// The paper's default configuration: D = 4K, n = 3, 16-bit model,
    /// id binding on, 500 MHz.
    pub fn new(dim: usize, n_features: usize, n_classes: usize) -> Self {
        AcceleratorConfig {
            dim,
            n_features,
            n_classes,
            window: 3,
            bit_width: 16,
            id_binding: true,
            clock_mhz: 500.0,
            seed: 0,
        }
    }

    /// Overrides the window length.
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Overrides the effective bit-width.
    pub fn with_bit_width(mut self, bit_width: u8) -> Self {
        self.bit_width = bit_width;
        self
    }

    /// Enables or disables id binding.
    pub fn with_id_binding(mut self, id_binding: bool) -> Self {
        self.id_binding = id_binding;
        self
    }

    /// Overrides the item-memory seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Checks the configuration against the architecture's hard limits.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.dim == 0 || !self.dim.is_multiple_of(SUB_NORM_CHUNK) {
            return Err(ConfigError::new(format!(
                "dim {} must be a positive multiple of {SUB_NORM_CHUNK}",
                self.dim
            )));
        }
        if self.n_classes == 0 {
            return Err(ConfigError::new("n_classes must be positive"));
        }
        if self.dim * self.n_classes > CLASS_DIM_CAPACITY {
            return Err(ConfigError::new(format!(
                "dim {} × n_classes {} exceeds the class-memory capacity of {CLASS_DIM_CAPACITY} dimensions",
                self.dim, self.n_classes
            )));
        }
        if self.n_features == 0 || self.n_features > MAX_FEATURES {
            return Err(ConfigError::new(format!(
                "n_features {} must be in 1..={MAX_FEATURES}",
                self.n_features
            )));
        }
        if self.window == 0 || self.window > self.n_features {
            return Err(ConfigError::new(format!(
                "window {} must be in 1..=n_features ({})",
                self.window, self.n_features
            )));
        }
        if !(1..=16).contains(&self.bit_width) {
            return Err(ConfigError::new(format!(
                "bit_width {} must be in 1..=16",
                self.bit_width
            )));
        }
        if self.clock_mhz <= 0.0 || self.clock_mhz.is_nan() {
            return Err(ConfigError::new("clock_mhz must be positive"));
        }
        Ok(())
    }

    /// Number of sliding windows per input: `d − n + 1`.
    pub fn n_windows(&self) -> usize {
        self.n_features - self.window + 1
    }

    /// Encoder passes per input: `D / m` (each pass yields `m` dimensions).
    pub fn passes(&self) -> usize {
        self.dim.div_ceil(LANES)
    }

    /// Fraction of the class memories this application occupies
    /// (`n_C · D / (32 · 4K)`, §4.3.2).
    pub fn class_memory_utilization(&self) -> f64 {
        (self.n_classes * self.dim) as f64 / CLASS_DIM_CAPACITY as f64
    }

    /// Clock period in seconds.
    pub fn clock_period_s(&self) -> f64 {
        1.0 / (self.clock_mhz * 1e6)
    }
}

/// An invalid [`AcceleratorConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid accelerator configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        let c = AcceleratorConfig::new(4096, 64, 10);
        assert!(c.validate().is_ok());
        assert_eq!(c.passes(), 256);
        assert_eq!(c.n_windows(), 62);
    }

    #[test]
    fn capacity_trades_dims_for_classes() {
        // 8K dimensions for 16 classes is legal (§4.1)...
        assert!(AcceleratorConfig::new(8192, 64, 16).validate().is_ok());
        // ...but not for 32 classes.
        assert!(AcceleratorConfig::new(8192, 64, 32).validate().is_err());
    }

    #[test]
    fn constraints_are_enforced() {
        assert!(AcceleratorConfig::new(4096, 0, 2).validate().is_err());
        assert!(AcceleratorConfig::new(4096, 2000, 2).validate().is_err());
        assert!(AcceleratorConfig::new(4000, 64, 2).validate().is_err());
        assert!(AcceleratorConfig::new(4096, 64, 0).validate().is_err());
        let c = AcceleratorConfig::new(4096, 64, 2).with_window(65);
        assert!(c.validate().is_err());
        let c = AcceleratorConfig::new(4096, 64, 2).with_bit_width(0);
        assert!(c.validate().is_err());
        let c = AcceleratorConfig::new(4096, 64, 2).with_bit_width(17);
        assert!(c.validate().is_err());
    }

    #[test]
    fn utilization_matches_paper_examples() {
        // EEG: 2 classes × 4K dims → 6.25% (paper: minimum 6% for EEG/FACE).
        let eeg = AcceleratorConfig::new(4096, 64, 2);
        assert!((eeg.class_memory_utilization() - 0.0625).abs() < 1e-12);
        // ISOLET with 26 classes → 81% (paper: maximum 81% for ISOLET).
        let isolet = AcceleratorConfig::new(4096, 617, 26);
        assert!((isolet.class_memory_utilization() - 0.8125).abs() < 1e-12);
    }
}
