//! Area and power breakdown of the accelerator (Fig. 7).

use crate::arch::AcceleratorConfig;
use crate::energy::{ActivityCounts, EnergyModel};
use crate::memory::N_CLASS_MEMORIES;

/// One component's share of the area / static-power / dynamic-power
/// breakdowns.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentShare {
    /// Component name (control, datapath, feature mem, level mem,
    /// base mem = id + score + norm2, class mem).
    pub name: &'static str,
    /// Area in mm².
    pub area_mm2: f64,
    /// Leakage in mW (all banks on — the worst-case column of §5.1).
    pub static_mw: f64,
    /// Dynamic energy share for the supplied activity, pJ.
    pub dynamic_pj: f64,
}

/// The full Fig. 7 breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaPowerBreakdown {
    /// Per-component figures.
    pub components: Vec<ComponentShare>,
}

impl AreaPowerBreakdown {
    /// Computes the breakdown for a configuration and a representative
    /// activity record (typically one inference).
    pub fn compute(
        model: &EnergyModel,
        config: &AcceleratorConfig,
        counts: &ActivityCounts,
    ) -> Self {
        let t = &model.tech;
        let m = &model.map;
        let lanes = crate::arch::LANES as f64;
        let bw_scale = (f64::from(config.bit_width) / 16.0).powi(2);

        let components = vec![
            ComponentShare {
                name: "control",
                area_mm2: t.control_area_mm2,
                static_mw: t.control_leak_mw,
                dynamic_pj: counts.cycles as f64 * t.control_energy_per_cycle_pj,
            },
            ComponentShare {
                name: "datapath",
                area_mm2: t.datapath_area_mm2,
                static_mw: t.datapath_leak_mw,
                dynamic_pj: counts.xor_ops as f64 * t.xor_energy_pj
                    + counts.mac_ops as f64 * t.mac_energy_pj * bw_scale
                    + counts.divides as f64 * t.divide_energy_pj,
            },
            ComponentShare {
                name: "feature mem",
                area_mm2: m.feature.area_mm2(t),
                static_mw: m.feature.leakage_mw(t) * t.peripheral_sram_leak_factor,
                dynamic_pj: counts.feature_accesses as f64 * m.feature.read_energy_pj(t),
            },
            ComponentShare {
                name: "level mem",
                area_mm2: m.level.area_mm2(t),
                static_mw: m.level.leakage_mw(t) * t.peripheral_sram_leak_factor,
                dynamic_pj: counts.level_reads as f64 * lanes * t.sram_read_energy_per_bit_pj,
            },
            ComponentShare {
                name: "base mem",
                area_mm2: m.id.area_mm2(t) + m.score.area_mm2(t) + m.norm2.area_mm2(t),
                static_mw: (m.id.leakage_mw(t) + m.score.leakage_mw(t) + m.norm2.leakage_mw(t))
                    * t.peripheral_sram_leak_factor,
                dynamic_pj: counts.id_reads as f64 * lanes * t.sram_read_energy_per_bit_pj
                    + counts.score_accesses as f64 * m.score.read_energy_pj(t)
                    + counts.norm2_accesses as f64 * m.norm2.read_energy_pj(t),
            },
            ComponentShare {
                name: "class mem",
                area_mm2: m.class.area_mm2(t) * N_CLASS_MEMORIES as f64,
                static_mw: m.class.leakage_mw(t) * N_CLASS_MEMORIES as f64,
                dynamic_pj: (counts.class_reads as f64 * m.class.read_energy_pj(t)
                    + counts.class_writes as f64 * m.class.write_energy_pj(t))
                    * t.class_sram_energy_factor,
            },
        ];
        AreaPowerBreakdown { components }
    }

    /// Total area in mm².
    pub fn total_area_mm2(&self) -> f64 {
        self.components.iter().map(|c| c.area_mm2).sum()
    }

    /// Total leakage in mW (all banks on).
    pub fn total_static_mw(&self) -> f64 {
        self.components.iter().map(|c| c.static_mw).sum()
    }

    /// Total dynamic energy for the supplied activity, pJ.
    pub fn total_dynamic_pj(&self) -> f64 {
        self.components.iter().map(|c| c.dynamic_pj).sum()
    }

    /// The named component's share.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not one of the six components.
    pub fn component(&self, name: &str) -> &ComponentShare {
        self.components
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("unknown component `{name}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn representative_counts() -> ActivityCounts {
        // One 4K-dim inference over 64 features, 10 classes.
        let passes = 256u64;
        ActivityCounts {
            cycles: 64 + passes * 64 + 10,
            feature_accesses: 64 + passes * 64,
            level_reads: passes * 64,
            id_reads: passes * 4,
            class_reads: passes * 10 * 16,
            class_writes: 0,
            score_accesses: passes * 10 * 2,
            norm2_accesses: 10 * 32,
            xor_ops: passes * 62 * 3,
            mac_ops: passes * 10 * 16,
            divides: 10,
        }
    }

    #[test]
    fn total_area_matches_paper() {
        // §5.1: GENERIC occupies 0.30 mm².
        let model = EnergyModel::paper_default();
        let config = AcceleratorConfig::new(4096, 64, 10);
        let b = AreaPowerBreakdown::compute(&model, &config, &representative_counts());
        let area = b.total_area_mm2();
        assert!((0.27..=0.33).contains(&area), "area = {area} mm²");
    }

    #[test]
    fn class_memories_dominate_every_breakdown() {
        let model = EnergyModel::paper_default();
        let config = AcceleratorConfig::new(4096, 64, 10);
        let b = AreaPowerBreakdown::compute(&model, &config, &representative_counts());
        let class = b.component("class mem");
        assert!(class.area_mm2 / b.total_area_mm2() > 0.7);
        assert!(class.static_mw / b.total_static_mw() > 0.8);
        assert!(class.dynamic_pj / b.total_dynamic_pj() > 0.5);
    }

    #[test]
    fn level_memory_is_under_ten_percent() {
        // §5.1: "the level memory contributes to less than 10% of area and
        // power".
        let model = EnergyModel::paper_default();
        let config = AcceleratorConfig::new(4096, 64, 10);
        let b = AreaPowerBreakdown::compute(&model, &config, &representative_counts());
        let level = b.component("level mem");
        assert!(level.area_mm2 / b.total_area_mm2() < 0.10);
        assert!(level.static_mw / b.total_static_mw() < 0.10);
        assert!(level.dynamic_pj / b.total_dynamic_pj() < 0.10);
    }

    #[test]
    #[should_panic(expected = "unknown component")]
    fn unknown_component_panics() {
        let model = EnergyModel::paper_default();
        let config = AcceleratorConfig::new(4096, 64, 10);
        let b = AreaPowerBreakdown::compute(&model, &config, &representative_counts());
        let _ = b.component("gpu");
    }
}
