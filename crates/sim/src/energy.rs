//! Activity counting and power/energy accounting.

use crate::arch::AcceleratorConfig;
use crate::memory::{MemoryMap, N_CLASS_MEMORIES};
use crate::tech::TechParams;
use crate::vos::VosOperatingPoint;

/// Per-component activity accumulated by the engine while executing a
/// workload. Each count is in natural units of the component (word reads,
/// lane operations, ...), so the energy model can price them directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ActivityCounts {
    /// Total clock cycles.
    pub cycles: u64,
    /// Feature-memory word accesses (reads + the serial-load writes).
    pub feature_accesses: u64,
    /// Level-memory `m`-bit row-slice reads.
    pub level_reads: u64,
    /// Id-memory reads (one per `m` windows thanks to the tmp register).
    pub id_reads: u64,
    /// Class-memory 16-bit word reads (across all 16 macros).
    pub class_reads: u64,
    /// Class-memory 16-bit word writes.
    pub class_writes: u64,
    /// Score-memory accesses (read-accumulate-write pairs count as 2).
    pub score_accesses: u64,
    /// norm2-memory accesses.
    pub norm2_accesses: u64,
    /// 16-lane XOR/permute slice operations in the encoder.
    pub xor_ops: u64,
    /// Multiply-accumulate operations in the search unit.
    pub mac_ops: u64,
    /// Mitchell log-divisions.
    pub divides: u64,
}

impl ActivityCounts {
    /// Element-wise accumulation of another activity record.
    pub fn accumulate(&mut self, other: &ActivityCounts) {
        self.cycles += other.cycles;
        self.feature_accesses += other.feature_accesses;
        self.level_reads += other.level_reads;
        self.id_reads += other.id_reads;
        self.class_reads += other.class_reads;
        self.class_writes += other.class_writes;
        self.score_accesses += other.score_accesses;
        self.norm2_accesses += other.norm2_accesses;
        self.xor_ops += other.xor_ops;
        self.mac_ops += other.mac_ops;
        self.divides += other.divides;
    }

    /// The activity of `n` repetitions of this record.
    pub fn scaled(&self, n: u64) -> ActivityCounts {
        ActivityCounts {
            cycles: self.cycles * n,
            feature_accesses: self.feature_accesses * n,
            level_reads: self.level_reads * n,
            id_reads: self.id_reads * n,
            class_reads: self.class_reads * n,
            class_writes: self.class_writes * n,
            score_accesses: self.score_accesses * n,
            norm2_accesses: self.norm2_accesses * n,
            xor_ops: self.xor_ops * n,
            mac_ops: self.mac_ops * n,
            divides: self.divides * n,
        }
    }
}

/// Power/energy knobs the LP (low-power) configuration toggles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyOptions {
    /// Application-opportunistic power gating of unused class-memory banks
    /// (§4.3.2). Always safe; the paper's averages assume it.
    pub power_gating: bool,
    /// Voltage over-scaling of the class memories (§4.3.4).
    pub vos: Option<VosOperatingPoint>,
}

impl Default for EnergyOptions {
    fn default() -> Self {
        EnergyOptions {
            power_gating: true,
            vos: None,
        }
    }
}

/// Power/energy accounting for one workload execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Wall-clock duration of the counted activity, seconds.
    pub duration_s: f64,
    /// Static (leakage) power over that window, mW.
    pub static_power_mw: f64,
    /// Dynamic power over that window, mW.
    pub dynamic_power_mw: f64,
    /// Static + dynamic energy, µJ.
    pub total_energy_uj: f64,
    /// Dynamic energy spent in the class memories, µJ (the dominant
    /// share, ~80 %).
    pub class_memory_energy_uj: f64,
}

impl EnergyReport {
    /// Total power (static + dynamic), mW.
    pub fn total_power_mw(&self) -> f64 {
        self.static_power_mw + self.dynamic_power_mw
    }
}

/// The analytic energy model: prices an [`ActivityCounts`] record under a
/// configuration and [`EnergyOptions`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Technology constants.
    pub tech: TechParams,
    /// Memory map.
    pub map: MemoryMap,
    /// Banks per class memory (4 minimizes area × power, §4.3.2).
    pub banks_per_class_memory: usize,
}

impl EnergyModel {
    /// The paper's default model (GF 14 nm, 4 banks per class memory).
    pub fn paper_default() -> Self {
        EnergyModel {
            tech: TechParams::gf14(),
            map: MemoryMap::paper_default(),
            banks_per_class_memory: 4,
        }
    }

    /// Fraction of class-memory banks left powered for this application
    /// (`ceil(utilization · banks) / banks`).
    pub fn active_bank_fraction(&self, config: &AcceleratorConfig, power_gating: bool) -> f64 {
        if !power_gating {
            return 1.0;
        }
        let util = config.class_memory_utilization();
        let banks = self.banks_per_class_memory as f64;
        (util * banks).ceil() / banks
    }

    /// Relative class-memory area overhead of splitting each macro into
    /// `banks` independently power-gated banks (duplicated decoders and
    /// sense amps; §4.3.2 reports ~20 % for four banks and ~55 % for
    /// eight).
    ///
    /// # Panics
    ///
    /// Panics if `banks` is not a power of two in `1..=16`.
    pub fn banking_area_overhead(banks: usize) -> f64 {
        match banks {
            1 => 0.0,
            2 => 0.08,
            4 => 0.20,
            8 => 0.55,
            16 => 1.3,
            other => panic!("unsupported bank count {other}"),
        }
    }

    /// Returns a copy of the model with a different class-memory bank
    /// count (for the §4.3.2 banking trade study).
    pub fn with_banks(mut self, banks: usize) -> Self {
        let _ = Self::banking_area_overhead(banks); // validates
        self.banks_per_class_memory = banks;
        self
    }

    /// Static power in mW under the given options.
    pub fn static_power_mw(&self, config: &AcceleratorConfig, opts: &EnergyOptions) -> f64 {
        let t = &self.tech;
        let class_leak = self.map.class.leakage_mw(t)
            * N_CLASS_MEMORIES as f64
            * self.active_bank_fraction(config, opts.power_gating)
            * opts.vos.map_or(1.0, |v| v.static_power_factor);
        let other_leak = (self.map.feature.leakage_mw(t)
            + self.map.level.leakage_mw(t)
            + self.map.id.leakage_mw(t)
            + self.map.score.leakage_mw(t)
            + self.map.norm2.leakage_mw(t))
            * t.peripheral_sram_leak_factor
            + t.datapath_leak_mw
            + t.control_leak_mw;
        class_leak + other_leak
    }

    /// Dynamic energy in pJ for an activity record.
    pub fn dynamic_energy_pj(
        &self,
        config: &AcceleratorConfig,
        counts: &ActivityCounts,
        opts: &EnergyOptions,
    ) -> f64 {
        self.dynamic_energy_split_pj(config, counts, opts).0
    }

    /// Dynamic energy in pJ, returned as `(total, class_memory_share)`.
    pub fn dynamic_energy_split_pj(
        &self,
        config: &AcceleratorConfig,
        counts: &ActivityCounts,
        opts: &EnergyOptions,
    ) -> (f64, f64) {
        let t = &self.tech;
        let vos_dyn = opts.vos.map_or(1.0, |v| v.dynamic_power_factor);
        let class = (counts.class_reads as f64 * self.map.class.read_energy_pj(t)
            + counts.class_writes as f64 * self.map.class.write_energy_pj(t))
            * t.class_sram_energy_factor
            * vos_dyn;
        // MAC energy scales quadratically with the effective bit-width
        // (quantized elements reduce dot-product switching, §4.3.4).
        let bw_scale = (f64::from(config.bit_width) / 16.0).powi(2);
        let mem = counts.feature_accesses as f64 * self.map.feature.read_energy_pj(t)
            + counts.level_reads as f64
                * (crate::arch::LANES as f64 * t.sram_read_energy_per_bit_pj)
            + counts.id_reads as f64 * (crate::arch::LANES as f64 * t.sram_read_energy_per_bit_pj)
            + counts.score_accesses as f64 * self.map.score.read_energy_pj(t)
            + counts.norm2_accesses as f64 * self.map.norm2.read_energy_pj(t);
        let datapath = counts.xor_ops as f64 * t.xor_energy_pj
            + counts.mac_ops as f64 * t.mac_energy_pj * bw_scale
            + counts.divides as f64 * t.divide_energy_pj;
        let control = counts.cycles as f64 * t.control_energy_per_cycle_pj;
        (class + mem + datapath + control, class)
    }

    /// Full accounting of an activity record.
    pub fn report(
        &self,
        config: &AcceleratorConfig,
        counts: &ActivityCounts,
        opts: &EnergyOptions,
    ) -> EnergyReport {
        let duration_s = counts.cycles as f64 * config.clock_period_s();
        let static_power_mw = self.static_power_mw(config, opts);
        let (dyn_pj, class_pj) = self.dynamic_energy_split_pj(config, counts, opts);
        let dynamic_power_mw = if duration_s > 0.0 {
            dyn_pj * 1e-12 / duration_s * 1e3
        } else {
            0.0
        };
        let static_uj = static_power_mw * 1e-3 * duration_s * 1e6;
        let dynamic_uj = dyn_pj * 1e-6;
        EnergyReport {
            duration_s,
            static_power_mw,
            dynamic_power_mw,
            total_energy_uj: static_uj + dynamic_uj,
            class_memory_energy_uj: class_pj * 1e-6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> AcceleratorConfig {
        AcceleratorConfig::new(4096, 64, 10)
    }

    #[test]
    fn worst_case_static_power_matches_paper() {
        // §5.1: worst-case static power 0.25 mW with all banks active.
        let model = EnergyModel::paper_default();
        let opts = EnergyOptions {
            power_gating: false,
            vos: None,
        };
        let p = model.static_power_mw(&config(), &opts);
        assert!((0.20..=0.30).contains(&p), "static = {p} mW");
    }

    #[test]
    fn power_gating_cuts_static_power_for_small_apps() {
        // EEG (2 classes): 6.25% utilization → 1 of 4 banks on.
        let model = EnergyModel::paper_default();
        let eeg = AcceleratorConfig::new(4096, 64, 2);
        let gated = model.static_power_mw(&eeg, &EnergyOptions::default());
        let ungated = model.static_power_mw(
            &eeg,
            &EnergyOptions {
                power_gating: false,
                vos: None,
            },
        );
        assert!(gated < 0.5 * ungated, "gated {gated} vs ungated {ungated}");
        assert_eq!(model.active_bank_fraction(&eeg, true), 0.25);
    }

    #[test]
    fn average_bank_activation_matches_paper_claim() {
        // §4.3.2: the benchmark apps average ~28 % utilization → 1.6 of 4
        // banks → ~59 % static saving on the class memories.
        let model = EnergyModel::paper_default();
        let utils = [
            0.0625f64, 0.0625, 0.375, 0.625, 0.25, 0.8125, 0.375, 0.3125, 0.15625, 0.25, 0.1875,
        ];
        let mean_active: f64 =
            utils.iter().map(|&u| (u * 4.0).ceil() / 4.0).sum::<f64>() / utils.len() as f64;
        assert!(
            (0.3..0.55).contains(&mean_active),
            "mean active fraction {mean_active}"
        );
        let _ = model;
    }

    #[test]
    fn vos_scales_both_power_terms() {
        let model = EnergyModel::paper_default();
        let vos = VosOperatingPoint::at_bit_error_rate(0.05);
        let base = model.report(
            &config(),
            &ActivityCounts {
                cycles: 1000,
                class_reads: 16_000,
                ..Default::default()
            },
            &EnergyOptions::default(),
        );
        let scaled = model.report(
            &config(),
            &ActivityCounts {
                cycles: 1000,
                class_reads: 16_000,
                ..Default::default()
            },
            &EnergyOptions {
                power_gating: true,
                vos: Some(vos),
            },
        );
        assert!(scaled.static_power_mw < base.static_power_mw);
        assert!(scaled.dynamic_power_mw < base.dynamic_power_mw);
    }

    #[test]
    fn narrow_bit_width_cuts_mac_energy() {
        let model = EnergyModel::paper_default();
        let counts = ActivityCounts {
            cycles: 1000,
            mac_ops: 1_000_000,
            ..Default::default()
        };
        let wide = model.dynamic_energy_pj(&config(), &counts, &EnergyOptions::default());
        let narrow_cfg = config().with_bit_width(4);
        let narrow = model.dynamic_energy_pj(&narrow_cfg, &counts, &EnergyOptions::default());
        assert!(narrow < wide / 8.0);
    }

    #[test]
    fn energy_report_is_consistent() {
        let model = EnergyModel::paper_default();
        let counts = ActivityCounts {
            cycles: 500_000,
            class_reads: 2_000_000,
            mac_ops: 2_000_000,
            ..Default::default()
        };
        let r = model.report(&config(), &counts, &EnergyOptions::default());
        assert!((r.duration_s - 0.001).abs() < 1e-9); // 500k cycles at 500 MHz
        assert!(r.total_energy_uj > 0.0);
        assert!(r.class_memory_energy_uj <= r.total_energy_uj);
        assert!(r.total_power_mw() > r.static_power_mw);
    }

    #[test]
    fn banking_overheads_match_the_paper() {
        assert_eq!(EnergyModel::banking_area_overhead(4), 0.20);
        assert_eq!(EnergyModel::banking_area_overhead(8), 0.55);
        assert_eq!(EnergyModel::banking_area_overhead(1), 0.0);
        let model = EnergyModel::paper_default().with_banks(8);
        assert_eq!(model.banks_per_class_memory, 8);
    }

    #[test]
    #[should_panic(expected = "unsupported bank count")]
    fn odd_bank_counts_panic() {
        let _ = EnergyModel::banking_area_overhead(3);
    }

    #[test]
    fn accumulate_sums_fields() {
        let mut a = ActivityCounts {
            cycles: 10,
            mac_ops: 5,
            ..Default::default()
        };
        let b = ActivityCounts {
            cycles: 7,
            divides: 2,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.cycles, 17);
        assert_eq!(a.mac_ops, 5);
        assert_eq!(a.divides, 2);
    }
}
