//! Mitchell's approximate logarithmic divider (§4.2.1 uses "an approximate
//! log-based division [18]" — J. N. Mitchell, 1962).
//!
//! `log2(x)` is approximated by the position of the leading one plus the
//! remaining bits read as a linear mantissa; a division becomes a
//! subtraction of two such approximate logs followed by the inverse
//! piecewise-linear antilog. The worst-case relative error of a single
//! log is ~5.7 %, which HDC's similarity ranking absorbs (the same
//! approximation is applied to every class score).

/// Approximate `a / b` with Mitchell's log-based method.
///
/// Returns `0.0` when `a == 0` and `f64::INFINITY` when `b == 0` (the
/// hardware never divides by zero: norms of trained classes are positive).
pub fn mitchell_divide(a: u64, b: u64) -> f64 {
    if a == 0 {
        return 0.0;
    }
    if b == 0 {
        return f64::INFINITY;
    }
    let la = mitchell_log2(a);
    let lb = mitchell_log2(b);
    mitchell_exp2(la - lb)
}

/// Approximate `a / b` where the numerator is a 128-bit integer — the
/// squared dot products of the similarity metric can exceed `u64` when
/// class elements saturate, and truncating them would corrupt the
/// cross-class ranking.
pub fn mitchell_divide_wide(a: u128, b: u64) -> f64 {
    if a == 0 {
        return 0.0;
    }
    if b == 0 {
        return f64::INFINITY;
    }
    let la = mitchell_log2_u128(a);
    let lb = mitchell_log2(b);
    mitchell_exp2(la - lb)
}

fn mitchell_log2_u128(x: u128) -> f64 {
    debug_assert!(x > 0);
    let k = 127 - x.leading_zeros() as i64;
    let mantissa = if k == 0 {
        0.0
    } else {
        (x - (1u128 << k)) as f64 / (1u128 << k) as f64
    };
    k as f64 + mantissa
}

/// Mitchell's piecewise-linear `log2` of a positive integer.
pub fn mitchell_log2(x: u64) -> f64 {
    debug_assert!(x > 0);
    let k = 63 - x.leading_zeros() as i64; // floor(log2 x)
    let mantissa = if k == 0 {
        0.0
    } else {
        (x - (1u64 << k)) as f64 / (1u64 << k) as f64
    };
    k as f64 + mantissa
}

/// The inverse piecewise-linear map: `2^y ≈ 2^floor(y) · (1 + frac(y))`.
pub fn mitchell_exp2(y: f64) -> f64 {
    let k = y.floor();
    let frac = y - k;
    (1.0 + frac) * k.exp2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_on_powers_of_two() {
        assert_eq!(mitchell_divide(8, 2), 4.0);
        assert_eq!(mitchell_divide(1024, 32), 32.0);
        assert_eq!(mitchell_log2(4096), 12.0);
    }

    #[test]
    fn error_is_bounded() {
        // Mitchell's division error stays within ~±12 % across operands
        // (two logs + one antilog, each within ~6 %).
        for a in [3u64, 7, 100, 999, 123_456, 999_999_937] {
            for b in [1u64, 5, 64, 1000, 54_321] {
                let exact = a as f64 / b as f64;
                let approx = mitchell_divide(a, b);
                let rel = (approx - exact).abs() / exact;
                assert!(rel < 0.125, "a={a} b={b}: rel error {rel}");
            }
        }
    }

    #[test]
    fn preserves_strong_ordering() {
        // Scores that differ by ≥ 25 % keep their order through the
        // approximate divider (the margin HDC class scores exhibit).
        let pairs = [(1000u64, 40u64), (1000, 80), (800, 16), (640, 8)];
        let mut approx: Vec<f64> = pairs.iter().map(|&(a, b)| mitchell_divide(a, b)).collect();
        let exact: Vec<f64> = pairs.iter().map(|&(a, b)| a as f64 / b as f64).collect();
        let mut exact_order: Vec<usize> = (0..exact.len()).collect();
        exact_order.sort_by(|&i, &j| exact[i].partial_cmp(&exact[j]).unwrap());
        let mut approx_order: Vec<usize> = (0..approx.len()).collect();
        approx_order.sort_by(|&i, &j| approx[i].partial_cmp(&approx[j]).unwrap());
        assert_eq!(exact_order, approx_order);
        approx.sort_by(|a, b| a.partial_cmp(b).unwrap());
    }

    #[test]
    fn zero_handling() {
        assert_eq!(mitchell_divide(0, 5), 0.0);
        assert_eq!(mitchell_divide(5, 0), f64::INFINITY);
        assert_eq!(mitchell_divide_wide(0, 5), 0.0);
        assert_eq!(mitchell_divide_wide(5, 0), f64::INFINITY);
    }

    #[test]
    fn wide_division_matches_narrow_in_u64_range() {
        for (a, b) in [(1000u64, 40u64), (123_456, 789), (1, 1)] {
            assert_eq!(
                mitchell_divide_wide(u128::from(a), b),
                mitchell_divide(a, b)
            );
        }
    }

    #[test]
    fn wide_division_handles_beyond_u64_numerators() {
        // dot ≈ 1.4e11 squared ≈ 1.96e22 > u64::MAX.
        let dot: i128 = 140_000_000_000;
        let a = (dot * dot) as u128;
        let exact = a as f64 / 1e9;
        let approx = mitchell_divide_wide(a, 1_000_000_000);
        let rel = (approx - exact).abs() / exact;
        assert!(rel < 0.125, "rel error {rel}");
    }

    #[test]
    fn log_of_one_is_zero() {
        assert_eq!(mitchell_log2(1), 0.0);
        assert_eq!(mitchell_exp2(0.0), 1.0);
    }
}
