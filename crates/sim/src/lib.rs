//! # generic-sim
//!
//! A cycle- and energy-level simulator of the **GENERIC** edge HDC
//! accelerator (Khaleghi et al., DAC 2022, §4–§5).
//!
//! The simulator models the architecture of Fig. 4:
//!
//! - input (feature) memory filled element-by-element over the serial
//!   input port,
//! - a 64-bin level memory and the compressed 4-Kbit id memory whose ids
//!   are generated on the fly by permuting a seed id (§4.3.1),
//! - an encoder producing `m = 16` encoding dimensions per pass over the
//!   stored input (sliding-window XOR of permuted levels, bound to the
//!   window id),
//! - 16 banked class memories holding up to 32 × 4K class dimensions in
//!   16-bit words, searched with a pipelined dot-product tree,
//! - score/norm2 memories and a Mitchell approximate log-divider for the
//!   cosine normalization (§4.2.1),
//! - training, retraining, and clustering dataflows with their exact cycle
//!   costs (a class update reads/latches/writes `3·D/m` rows, §4.2.2).
//!
//! On top of the functional model sit the paper's energy-reduction
//! techniques: application-opportunistic power gating of unused class
//! memory banks (§4.3.2), on-demand dimension reduction with per-128-dim
//! sub-norms (§4.3.3), and voltage over-scaling of the class memories with
//! bit-error injection (§4.3.4). The [`mitigation`] module exposes the
//! engine's activity formulas as public builders so the fault-tolerance
//! schemes of `generic_hdc::ResilientPipeline` (escalated reads, majority
//! votes, scrubbing) can be priced in cycles and energy.
//!
//! Everything is calibrated to the paper's reported silicon figures
//! (0.30 mm², 0.09 mW app-average static / 0.25 mW worst-case, ~1.8 mW
//! dynamic at 500 MHz in 14 nm) — see [`TechParams`]. The simulator's
//! *functional* outputs (predictions, cluster assignments) are
//! bit-faithful to `generic-hdc` up to the documented Mitchell-division
//! approximation, and the integration tests assert exactly that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arch;
mod divider;
mod energy;
mod engine;
mod memory;
pub mod mitigation;
mod report;
mod tech;
mod vos;

pub use arch::AcceleratorConfig;
pub use divider::{mitchell_divide, mitchell_divide_wide};
pub use energy::{ActivityCounts, EnergyModel, EnergyOptions, EnergyReport};
pub use engine::{Accelerator, ClusterOutcome, InferenceOutcome, SimError, TrainOutcome};
pub use memory::SramMacro;
pub use report::{AreaPowerBreakdown, ComponentShare};
pub use tech::TechParams;
pub use vos::VosOperatingPoint;
