//! Voltage over-scaling of the class memories (§4.3.4, Fig. 6).
//!
//! The class memories burn ~80 % of the accelerator's power, and HDC's
//! error resilience lets them run below nominal voltage without reducing
//! the clock. This module provides the voltage ↔ bit-error-rate ↔ power
//! model, fitted to the trends of Yang & Murmann's measured SRAM scaling
//! data ([20]): the bit-error rate grows super-exponentially once the
//! supply drops below ~75 % of nominal, dynamic power scales as `V²`, and
//! leakage drops roughly as `V³` in the near-threshold regime (DIBL).

use crate::engine::SimError;

/// One voltage operating point of the class memories.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VosOperatingPoint {
    /// Supply as a fraction of nominal (`1.0` = nominal).
    pub voltage_scale: f64,
    /// Read bit-error rate at this voltage.
    pub bit_error_rate: f64,
    /// Static (leakage) power as a fraction of nominal.
    pub static_power_factor: f64,
    /// Dynamic power as a fraction of nominal.
    pub dynamic_power_factor: f64,
}

/// Lowest modelled supply fraction.
pub const MIN_VOLTAGE_SCALE: f64 = 0.55;

/// BER at nominal voltage (effectively error-free).
const BER_AT_NOMINAL: f64 = 1e-12;

/// BER right at the knee voltage, where errors become observable.
const BER_AT_KNEE: f64 = 1e-4;

/// Voltage (fraction of nominal) below which errors take off.
const BER_KNEE: f64 = 0.78;

/// Exponential slope of the BER curve below the knee.
const BER_SLOPE: f64 = 30.0;

impl VosOperatingPoint {
    /// The operating point at a given supply fraction, or an error when
    /// the supply is outside the modelled `[MIN_VOLTAGE_SCALE, 1.0]`
    /// range (or not a number).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidArgument`] for an out-of-range scale.
    pub fn try_at_voltage(voltage_scale: f64) -> Result<Self, SimError> {
        if !(MIN_VOLTAGE_SCALE..=1.0).contains(&voltage_scale) {
            return Err(SimError::InvalidArgument {
                detail: format!("voltage scale {voltage_scale} outside [{MIN_VOLTAGE_SCALE}, 1.0]"),
            });
        }
        let ber = if voltage_scale >= BER_KNEE {
            BER_AT_NOMINAL
        } else {
            (BER_AT_KNEE.ln() + BER_SLOPE * (BER_KNEE - voltage_scale))
                .exp()
                .min(0.5)
        };
        Ok(VosOperatingPoint {
            voltage_scale,
            bit_error_rate: ber,
            static_power_factor: voltage_scale.powi(3),
            dynamic_power_factor: voltage_scale.powi(2),
        })
    }

    /// The operating point at a given supply fraction.
    ///
    /// # Panics
    ///
    /// Panics if `voltage_scale` is outside `[MIN_VOLTAGE_SCALE, 1.0]`;
    /// [`try_at_voltage`](Self::try_at_voltage) is the non-panicking
    /// form.
    pub fn at_voltage(voltage_scale: f64) -> Self {
        match Self::try_at_voltage(voltage_scale) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }

    /// The operating point that produces (approximately) a target
    /// bit-error rate, or an error when `ber` is outside `[0, 0.5]` (or
    /// NaN).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidArgument`] for an out-of-range rate.
    pub fn try_at_bit_error_rate(ber: f64) -> Result<Self, SimError> {
        if !(0.0..=0.5).contains(&ber) || ber.is_nan() {
            return Err(SimError::InvalidArgument {
                detail: format!("ber {ber} outside [0, 0.5]"),
            });
        }
        if ber <= BER_AT_KNEE {
            return Self::try_at_voltage(1.0);
        }
        // Invert the exponential: v = knee − (ln ber − ln ber_knee) / slope.
        let v = BER_KNEE - (ber.ln() - BER_AT_KNEE.ln()) / BER_SLOPE;
        Self::try_at_voltage(v.clamp(MIN_VOLTAGE_SCALE, 1.0))
    }

    /// The operating point that produces (approximately) a target
    /// bit-error rate — the inverse used to sweep Fig. 6 by BER.
    ///
    /// # Panics
    ///
    /// Panics if `ber` is not in `[0, 0.5]`;
    /// [`try_at_bit_error_rate`](Self::try_at_bit_error_rate) is the
    /// non-panicking form.
    pub fn at_bit_error_rate(ber: f64) -> Self {
        match Self::try_at_bit_error_rate(ber) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }

    /// Combined power-reduction factors `(static, dynamic)` expressed the
    /// way Fig. 6's right axis reports them (nominal ÷ scaled).
    pub fn power_reduction(&self) -> (f64, f64) {
        (
            1.0 / self.static_power_factor,
            1.0 / self.dynamic_power_factor,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_is_error_free_and_full_power() {
        let p = VosOperatingPoint::at_voltage(1.0);
        assert!(p.bit_error_rate < 1e-9);
        assert_eq!(p.static_power_factor, 1.0);
        assert_eq!(p.dynamic_power_factor, 1.0);
    }

    #[test]
    fn ber_grows_monotonically_as_voltage_drops() {
        let mut prev = VosOperatingPoint::at_voltage(1.0).bit_error_rate;
        for i in 1..=9 {
            let v = 1.0 - 0.045 * i as f64;
            let p = VosOperatingPoint::at_voltage(v);
            assert!(p.bit_error_rate >= prev, "v={v}");
            prev = p.bit_error_rate;
        }
    }

    #[test]
    fn ten_percent_ber_gives_multi_x_power_reduction() {
        // Fig. 6's right axis reaches ~6-7× static power reduction around
        // 10 % bit-error rate.
        let p = VosOperatingPoint::at_bit_error_rate(0.10);
        let (static_red, dyn_red) = p.power_reduction();
        assert!(static_red > 4.0, "static reduction = {static_red}");
        assert!(static_red < 12.0, "static reduction = {static_red}");
        assert!(
            dyn_red > 1.5 && dyn_red < 4.0,
            "dynamic reduction = {dyn_red}"
        );
    }

    #[test]
    fn ber_round_trips_through_voltage() {
        for target in [0.001, 0.01, 0.05, 0.1] {
            let p = VosOperatingPoint::at_bit_error_rate(target);
            let rel = (p.bit_error_rate - target).abs() / target;
            assert!(rel < 0.05, "target {target}: got {}", p.bit_error_rate);
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn voltage_below_floor_panics() {
        let _ = VosOperatingPoint::at_voltage(0.3);
    }

    #[test]
    fn try_constructors_reject_bad_arguments_without_panicking() {
        for v in [0.3, -1.0, 1.5, f64::NAN] {
            let err = VosOperatingPoint::try_at_voltage(v).unwrap_err();
            assert!(matches!(err, SimError::InvalidArgument { .. }), "v={v}");
        }
        for ber in [-0.01, 0.6, f64::NAN] {
            let err = VosOperatingPoint::try_at_bit_error_rate(ber).unwrap_err();
            assert!(matches!(err, SimError::InvalidArgument { .. }), "ber={ber}");
        }
    }

    #[test]
    fn try_constructors_agree_with_panicking_forms() {
        assert_eq!(
            VosOperatingPoint::try_at_voltage(0.7).unwrap(),
            VosOperatingPoint::at_voltage(0.7)
        );
        assert_eq!(
            VosOperatingPoint::try_at_bit_error_rate(0.1).unwrap(),
            VosOperatingPoint::at_bit_error_rate(0.1)
        );
    }
}
