//! Analytic SRAM macro model (the Artisan-compiler stand-in, §5.1).

use crate::tech::TechParams;

/// One SRAM macro: capacity, word width, and derived area/power figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SramMacro {
    /// Human-readable macro name (appears in the Fig. 7 breakdown).
    pub name: &'static str,
    /// Number of words.
    pub words: usize,
    /// Bits per word.
    pub word_bits: usize,
}

impl SramMacro {
    /// Creates a macro descriptor.
    pub const fn new(name: &'static str, words: usize, word_bits: usize) -> Self {
        SramMacro {
            name,
            words,
            word_bits,
        }
    }

    /// Total capacity in bits.
    pub fn bits(&self) -> usize {
        self.words * self.word_bits
    }

    /// Macro area in mm².
    pub fn area_mm2(&self, tech: &TechParams) -> f64 {
        self.bits() as f64 * tech.sram_area_per_bit_mm2
    }

    /// Leakage power in mW (all banks on).
    pub fn leakage_mw(&self, tech: &TechParams) -> f64 {
        self.bits() as f64 * tech.sram_leak_per_bit_mw
    }

    /// Energy of one word read in pJ.
    pub fn read_energy_pj(&self, tech: &TechParams) -> f64 {
        self.word_bits as f64 * tech.sram_read_energy_per_bit_pj
    }

    /// Energy of one word write in pJ.
    pub fn write_energy_pj(&self, tech: &TechParams) -> f64 {
        self.word_bits as f64 * tech.sram_write_energy_per_bit_pj
    }
}

/// The memory map of the accelerator (§5.1): sizes exactly as reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryMap {
    /// 1024 × 8 b feature (input) memory.
    pub feature: SramMacro,
    /// 64 levels × 4 Kbit level memory (32 KB).
    pub level: SramMacro,
    /// 4 Kbit seed-id memory (after the 1024× compression of §4.3.1).
    pub id: SramMacro,
    /// 16 class memories of 8K × 16 b (16 KB each, 256 KB total).
    pub class: SramMacro,
    /// Score memory: one 32-bit accumulator row per class (32 rows).
    pub score: SramMacro,
    /// norm2 memory: 32 classes × 32 sub-norm rows × 16 b (2 KB, §4.3.3).
    pub norm2: SramMacro,
}

/// Number of parallel class memories (matches the encoder lanes).
pub const N_CLASS_MEMORIES: usize = 16;

impl MemoryMap {
    /// The paper's memory map for a 4-Kbit-dimension, 32-class device.
    pub fn paper_default() -> Self {
        MemoryMap {
            feature: SramMacro::new("feature mem", 1024, 8),
            level: SramMacro::new("level mem", 64, 4096),
            id: SramMacro::new("id mem", 1, 4096),
            // One of the 16 class memories; callers multiply by
            // N_CLASS_MEMORIES.
            class: SramMacro::new("class mem", 8192, 16),
            score: SramMacro::new("score mem", 32, 32),
            norm2: SramMacro::new("norm2 mem", 1024, 16),
        }
    }

    /// Total class-memory bits across all 16 macros.
    pub fn class_bits_total(&self) -> usize {
        self.class.bits() * N_CLASS_MEMORIES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_match_section_5_1() {
        let m = MemoryMap::paper_default();
        assert_eq!(m.level.bits(), 64 * 4096); // 32 KB
        assert_eq!(m.feature.bits(), 1024 * 8); // 1 KB
        assert_eq!(m.class.bits(), 8192 * 16); // 16 KB each
        assert_eq!(m.class_bits_total(), 16 * 8192 * 16); // 256 KB
        assert_eq!(m.id.bits(), 4096); // 4 Kbit seed id
        assert_eq!(m.norm2.bits(), 1024 * 16); // 2 KB
    }

    #[test]
    fn id_memory_compression_is_1024x() {
        // Without compression the id memory would hold 1K ids × 4K bits.
        let uncompressed_bits = 1024 * 4096;
        let m = MemoryMap::paper_default();
        assert_eq!(uncompressed_bits / m.id.bits(), 1024);
    }

    #[test]
    fn area_scales_with_bits() {
        let tech = TechParams::gf14();
        let m = MemoryMap::paper_default();
        let class_total = m.class.area_mm2(&tech) * N_CLASS_MEMORIES as f64;
        assert!(class_total > m.level.area_mm2(&tech));
        assert!(m.level.area_mm2(&tech) > m.feature.area_mm2(&tech));
    }

    #[test]
    fn read_energy_scales_with_word_width() {
        let tech = TechParams::gf14();
        let m = MemoryMap::paper_default();
        assert!(m.level.read_energy_pj(&tech) > m.class.read_energy_pj(&tech));
    }
}
