//! The accelerator engine: functional execution with cycle-accurate
//! activity accounting.
//!
//! ## Cycle model (from §4.1–§4.2)
//!
//! With `d` features, `D` dimensions, `m = 16` lanes, `n_C` classes and
//! `P = D/m` encoder passes:
//!
//! - **input load**: `d` cycles over the serial port,
//! - **encode**: each pass streams the `d` stored features once and emits
//!   `m` dimensions → `P · d` cycles,
//! - **search**: each pass dot-products its `m` fresh dimensions against
//!   all `n_C` class rows (`n_C` cycles), pipelined with the next encode
//!   pass → per-pass cost `max(d, n_C)`; a final `n_C`-cycle score
//!   finalization runs the Mitchell divider,
//! - **class update** (retraining/clustering): read + latch the class
//!   rows, read the temporary encoded rows, write back → `3 · P` cycles
//!   per updated class (§4.2.2).

use generic_hdc::encoding::{Encoder, GenericEncoder, GenericEncoderSpec};
use generic_hdc::{HdcModel, IntHv, QuantizedModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::arch::{AcceleratorConfig, ConfigError, LEVEL_BINS, SUB_NORM_CHUNK};
use crate::divider::mitchell_divide_wide;
use crate::energy::{ActivityCounts, EnergyModel, EnergyOptions, EnergyReport};
use crate::memory::N_CLASS_MEMORIES;
use crate::report::AreaPowerBreakdown;

/// Errors returned by the simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The configuration violates an architectural limit.
    Config(ConfigError),
    /// An error bubbled up from the HDC library (bad sample widths, ...).
    Hdc(generic_hdc::HdcError),
    /// A model being loaded disagrees with the configuration.
    ModelMismatch {
        /// Human-readable description of the disagreement.
        detail: String,
    },
    /// An operation needs a trained/loaded model but none is present.
    NoModel,
    /// A runtime argument was invalid (dims not a multiple of 128, ...).
    InvalidArgument {
        /// Human-readable description.
        detail: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "{e}"),
            SimError::Hdc(e) => write!(f, "{e}"),
            SimError::ModelMismatch { detail } => write!(f, "model mismatch: {detail}"),
            SimError::NoModel => write!(f, "no model trained or loaded"),
            SimError::InvalidArgument { detail } => write!(f, "invalid argument: {detail}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

impl From<generic_hdc::HdcError> for SimError {
    fn from(e: generic_hdc::HdcError) -> Self {
        SimError::Hdc(e)
    }
}

/// Result of one inference.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceOutcome {
    /// Predicted class (highest hardware similarity score).
    pub prediction: usize,
    /// Per-class hardware scores: `sign(dot) · Mitchell(dot² / ‖C‖²)`.
    pub scores: Vec<f64>,
}

/// Result of on-device training.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainOutcome {
    /// Mispredictions per retraining epoch.
    pub epoch_errors: Vec<usize>,
}

/// Result of on-device clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterOutcome {
    /// Cluster index per input.
    pub assignments: Vec<usize>,
    /// Epochs executed.
    pub epochs_run: usize,
    /// Whether assignments stabilized early.
    pub converged: bool,
}

/// The GENERIC accelerator simulator.
///
/// ```
/// use generic_sim::{Accelerator, AcceleratorConfig, EnergyOptions};
///
/// # fn main() -> Result<(), generic_sim::SimError> {
/// let features: Vec<Vec<f64>> = (0..16)
///     .map(|i| vec![if i % 2 == 0 { 1.0 } else { 9.0 }; 8])
///     .collect();
/// let labels: Vec<usize> = (0..16).map(|i| i % 2).collect();
///
/// let config = AcceleratorConfig::new(1024, 8, 2).with_seed(7);
/// let mut accelerator = Accelerator::new(config, &features)?;
/// accelerator.train(&features, &labels, 5)?;
///
/// let outcome = accelerator.infer(&features[0])?;
/// assert_eq!(outcome.prediction, 0);
///
/// let report = accelerator.energy_report(&EnergyOptions::default());
/// assert!(report.total_energy_uj > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Accelerator {
    config: AcceleratorConfig,
    energy: EnergyModel,
    encoder: GenericEncoder,
    /// Class rows as 16-bit words (hardware storage format).
    classes: Vec<Vec<i16>>,
    /// Per-class, per-128-dim squared sub-norms (the norm2 memory).
    norm2: Vec<Vec<u64>>,
    has_model: bool,
    counts: ActivityCounts,
}

impl Accelerator {
    /// Builds an accelerator: validates the configuration and programs the
    /// item memories (levels fitted to `train_features`, seed id).
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid configuration or unusable training
    /// features.
    pub fn new(config: AcceleratorConfig, train_features: &[Vec<f64>]) -> Result<Self, SimError> {
        config.validate()?;
        let spec = GenericEncoderSpec::new(config.dim, config.n_features)
            .with_levels(LEVEL_BINS)
            .with_window(config.window)
            .with_id_binding(config.id_binding)
            .with_seeded_ids(true)
            .with_seed(config.seed);
        let encoder = GenericEncoder::from_data(spec, train_features)?;
        let n_chunks = config.dim / SUB_NORM_CHUNK;
        Ok(Accelerator {
            config,
            energy: EnergyModel::paper_default(),
            encoder,
            classes: vec![vec![0i16; config.dim]; config.n_classes],
            norm2: vec![vec![0u64; n_chunks]; config.n_classes],
            has_model: false,
            counts: ActivityCounts::default(),
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// The cumulative activity since construction or the last
    /// [`Accelerator::reset_activity`].
    pub fn activity(&self) -> &ActivityCounts {
        &self.counts
    }

    /// Clears the activity counters.
    pub fn reset_activity(&mut self) {
        self.counts = ActivityCounts::default();
    }

    /// Prices the cumulative activity under the given options.
    pub fn energy_report(&self, opts: &EnergyOptions) -> EnergyReport {
        self.energy.report(&self.config, &self.counts, opts)
    }

    /// Energy burnt while idle for `duration_s` seconds (leakage only —
    /// the year-long-battery budget of §1 is dominated by this term, which
    /// is why power gating and voltage over-scaling target static power).
    ///
    /// # Panics
    ///
    /// Panics if `duration_s` is negative or not finite.
    pub fn idle_energy_uj(&self, duration_s: f64, opts: &EnergyOptions) -> f64 {
        assert!(
            duration_s >= 0.0 && duration_s.is_finite(),
            "idle duration must be a non-negative finite time"
        );
        self.energy.static_power_mw(&self.config, opts) * 1e-3 * duration_s * 1e6
    }

    /// Area/power breakdown for the cumulative activity (Fig. 7).
    pub fn breakdown(&self) -> AreaPowerBreakdown {
        AreaPowerBreakdown::compute(&self.energy, &self.config, &self.counts)
    }

    /// Loads an offline-trained model over the `config` port, quantizing
    /// it to the configured bit-width.
    ///
    /// # Errors
    ///
    /// Returns an error if the model's dimensionality or class count
    /// disagrees with the configuration.
    pub fn load_model(&mut self, model: &HdcModel) -> Result<(), SimError> {
        if model.dim() != self.config.dim {
            return Err(SimError::ModelMismatch {
                detail: format!(
                    "model dim {} vs configured {}",
                    model.dim(),
                    self.config.dim
                ),
            });
        }
        if model.n_classes() != self.config.n_classes {
            return Err(SimError::ModelMismatch {
                detail: format!(
                    "model has {} classes vs configured {}",
                    model.n_classes(),
                    self.config.n_classes
                ),
            });
        }
        let quantized = QuantizedModel::from_model(model, self.config.bit_width)
            .expect("bit width validated by config");
        for (c, row) in self.classes.iter_mut().enumerate() {
            row.copy_from_slice(quantized.class(c));
        }
        self.refresh_all_norms();
        // Config-port load: one write per class word + norm computation.
        let words = (self.config.n_classes * self.config.dim) as u64;
        self.counts.class_writes += words;
        self.counts.mac_ops += words;
        self.counts.norm2_accesses += (self.config.n_classes * self.norm2[0].len()) as u64;
        self.counts.cycles += words / N_CLASS_MEMORIES as u64;
        self.has_model = true;
        Ok(())
    }

    /// Encodes one sample exactly as the encoder unit does (and charges
    /// the encode activity).
    ///
    /// # Errors
    ///
    /// Returns an error on a wrong-width sample.
    pub fn encode(&mut self, sample: &[f64]) -> Result<IntHv, SimError> {
        let hv = self.encoder.encode(sample)?;
        let act = self.encode_activity(true);
        self.counts.accumulate(&act);
        Ok(hv)
    }

    /// Runs one inference (§4.2.1).
    ///
    /// # Errors
    ///
    /// Returns an error if no model is present or the sample is malformed.
    pub fn infer(&mut self, sample: &[f64]) -> Result<InferenceOutcome, SimError> {
        self.infer_reduced(sample, self.config.dim)
    }

    /// Runs one inference using only the first `dims` dimensions
    /// (on-demand dimension reduction, §4.3.3). `dims` must be a positive
    /// multiple of 128.
    ///
    /// # Errors
    ///
    /// Returns an error if no model is present, the sample is malformed,
    /// or `dims` is not a valid reduction target.
    pub fn infer_reduced(
        &mut self,
        sample: &[f64],
        dims: usize,
    ) -> Result<InferenceOutcome, SimError> {
        if !self.has_model {
            return Err(SimError::NoModel);
        }
        self.check_dims(dims)?;
        let query = self.encoder.encode(sample)?;
        let scores = self.hw_scores(&query, dims);
        let act = self.infer_activity(dims, self.config.n_classes);
        self.counts.accumulate(&act);
        Ok(InferenceOutcome {
            prediction: argmax(&scores),
            scores,
        })
    }

    /// On-device training (§4.2.2): single-pass initialization followed by
    /// mispredict-driven retraining epochs with hardware scoring.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed samples or labels.
    pub fn train(
        &mut self,
        features: &[Vec<f64>],
        labels: &[usize],
        epochs: usize,
    ) -> Result<TrainOutcome, SimError> {
        if features.is_empty() || features.len() != labels.len() {
            return Err(SimError::InvalidArgument {
                detail: format!("{} samples vs {} labels", features.len(), labels.len()),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= self.config.n_classes) {
            return Err(SimError::InvalidArgument {
                detail: format!(
                    "label {bad} out of range for {} classes",
                    self.config.n_classes
                ),
            });
        }

        // Encode once functionally (the hardware re-encodes every epoch;
        // the activity accounting below charges for that).
        let encoded: Result<Vec<IntHv>, _> =
            features.iter().map(|s| self.encoder.encode(s)).collect();
        let encoded = encoded?;

        // Model initialization: bundle every sample into its class.
        for row in &mut self.classes {
            row.fill(0);
        }
        for (hv, &label) in encoded.iter().zip(labels) {
            let act = self.encode_activity(true);
            self.counts.accumulate(&act);
            self.bundle_into_class(hv, label);
            // Accumulation overlaps encoding; charge the row traffic.
            self.counts.class_reads += (self.config.passes() * N_CLASS_MEMORIES) as u64;
            self.counts.class_writes += (self.config.passes() * N_CLASS_MEMORIES) as u64;
        }
        self.refresh_all_norms();
        self.charge_norm_refresh(self.config.n_classes);
        self.has_model = true;

        // Retraining epochs.
        let mut epoch_errors = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let mut errors = 0;
            for (hv, &label) in encoded.iter().zip(labels) {
                let scores = self.hw_scores(hv, self.config.dim);
                let mut act = self.infer_activity(self.config.dim, self.config.n_classes);
                // The encoded hypervector is stored in the temporary class
                // rows while the similarity check runs (§4.2.2).
                act.class_writes += (self.config.passes() * N_CLASS_MEMORIES) as u64;
                self.counts.accumulate(&act);
                let predicted = argmax(&scores);
                if predicted != label {
                    errors += 1;
                    self.subtract_from_class(hv, predicted);
                    self.bundle_into_class(hv, label);
                    self.refresh_class_norms(predicted);
                    self.refresh_class_norms(label);
                    let update = self.update_activity();
                    self.counts.accumulate(&update);
                    self.counts.accumulate(&update);
                    self.charge_norm_refresh(2);
                }
            }
            let done = errors == 0;
            epoch_errors.push(errors);
            if done {
                break;
            }
        }
        Ok(TrainOutcome { epoch_errors })
    }

    /// On-device clustering (§4.2.3): the first `k` encoded inputs seed
    /// the centroids; each epoch assigns every input to its most similar
    /// centroid and bundles it into a copy centroid that replaces the
    /// model next epoch.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed samples or `k` outside
    /// `1..=n_classes.min(n_samples)`.
    pub fn cluster(
        &mut self,
        features: &[Vec<f64>],
        k: usize,
        max_epochs: usize,
    ) -> Result<ClusterOutcome, SimError> {
        if features.is_empty() {
            return Err(SimError::InvalidArgument {
                detail: "clustering requires at least one input".to_string(),
            });
        }
        if k == 0 || k > self.config.n_classes || k > features.len() {
            return Err(SimError::InvalidArgument {
                detail: format!(
                    "k = {k} outside 1..=min(n_classes = {}, n = {})",
                    self.config.n_classes,
                    features.len()
                ),
            });
        }
        let encoded: Result<Vec<IntHv>, _> =
            features.iter().map(|s| self.encoder.encode(s)).collect();
        let encoded = encoded?;

        // Seed centroids with the first k encoded inputs.
        for row in &mut self.classes {
            row.fill(0);
        }
        for (c, hv) in encoded[..k].iter().enumerate() {
            self.bundle_into_class(hv, c);
            let act = self.encode_activity(true);
            self.counts.accumulate(&act);
            self.counts.class_writes += (self.config.passes() * N_CLASS_MEMORIES) as u64;
        }
        for c in 0..k {
            self.refresh_class_norms(c);
        }
        self.charge_norm_refresh(k);
        self.has_model = true;

        let mut assignments = vec![0usize; encoded.len()];
        let mut epochs_run = 0;
        let mut converged = false;
        for _ in 0..max_epochs {
            epochs_run += 1;
            let mut copies = vec![vec![0i32; self.config.dim]; k];
            let mut members = vec![0usize; k];
            let mut new_assignments = Vec::with_capacity(encoded.len());
            for hv in &encoded {
                let scores = self.hw_scores_k(hv, self.config.dim, k);
                let best = argmax(&scores);
                let mut act = self.infer_activity(self.config.dim, k);
                // Store encoded dims to temp rows, then update the copy
                // centroid (one class update, §4.2.3).
                act.class_writes += (self.config.passes() * N_CLASS_MEMORIES) as u64;
                self.counts.accumulate(&act);
                let update = self.update_activity();
                self.counts.accumulate(&update);
                for (acc, &v) in copies[best].iter_mut().zip(hv.values()) {
                    *acc += v;
                }
                members[best] += 1;
                new_assignments.push(best);
            }
            for c in 0..k {
                if members[c] > 0 {
                    for (slot, &v) in self.classes[c].iter_mut().zip(&copies[c]) {
                        *slot = saturate(v);
                    }
                    self.refresh_class_norms(c);
                }
            }
            self.charge_norm_refresh(k);
            let stable = new_assignments == assignments && epochs_run > 1;
            assignments = new_assignments;
            if stable {
                converged = true;
                break;
            }
        }
        Ok(ClusterOutcome {
            assignments,
            epochs_run,
            converged,
        })
    }

    /// Re-quantizes the stored model to a narrower effective bit-width
    /// (the `bw` spec-port parameter plus the mask unit, §4.3.4) — the
    /// prerequisite for aggressive voltage over-scaling, since narrow
    /// models tolerate far more bit flips (Fig. 6).
    ///
    /// # Errors
    ///
    /// Returns an error if no model is present or `bit_width` is invalid.
    pub fn requantize(&mut self, bit_width: u8) -> Result<(), SimError> {
        if !self.has_model {
            return Err(SimError::NoModel);
        }
        if !(1..=16).contains(&bit_width) {
            return Err(SimError::InvalidArgument {
                detail: format!("bit_width {bit_width} must be in 1..=16"),
            });
        }
        let class_vectors: Result<Vec<IntHv>, _> = self
            .classes
            .iter()
            .map(|row| IntHv::from_values(row.iter().map(|&v| i32::from(v)).collect()))
            .collect();
        let reference = HdcModel::from_class_vectors(class_vectors?)?;
        let quantized = QuantizedModel::from_model(&reference, bit_width)?;
        for (c, row) in self.classes.iter_mut().enumerate() {
            row.copy_from_slice(quantized.class(c));
        }
        self.config.bit_width = bit_width;
        self.refresh_all_norms();
        let words = (self.config.n_classes * self.config.dim) as u64;
        self.counts.class_reads += words;
        self.counts.class_writes += words;
        self.counts.cycles += 2 * words / N_CLASS_MEMORIES as u64;
        Ok(())
    }

    /// Flips each effective class-memory bit with probability `ber`
    /// (voltage over-scaling fault injection, §4.3.4). Returns the number
    /// of flipped bits.
    ///
    /// # Errors
    ///
    /// Returns an error if `ber` is not a probability.
    pub fn inject_class_bit_errors(&mut self, ber: f64, seed: u64) -> Result<usize, SimError> {
        if !(0.0..=1.0).contains(&ber) || ber.is_nan() {
            return Err(SimError::InvalidArgument {
                detail: format!("ber {ber} is not a probability"),
            });
        }
        if ber == 0.0 {
            return Ok(0);
        }
        let bw = u32::from(self.config.bit_width);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut flipped = 0;
        for row in &mut self.classes {
            for v in row.iter_mut() {
                if bw == 1 {
                    if rng.random_bool(ber) {
                        *v = -*v;
                        flipped += 1;
                    }
                } else {
                    let mask: u16 = if bw >= 16 { u16::MAX } else { (1u16 << bw) - 1 };
                    let mut bits = (*v as u16) & mask;
                    for b in 0..bw {
                        if rng.random_bool(ber) {
                            bits ^= 1 << b;
                            flipped += 1;
                        }
                    }
                    *v = sign_extend(bits, bw);
                }
            }
        }
        self.refresh_all_norms();
        Ok(flipped)
    }

    /// The stored class row for `label` (hardware 16-bit words).
    ///
    /// # Panics
    ///
    /// Panics if `label >= n_classes`.
    pub fn class_row(&self, label: usize) -> &[i16] {
        &self.classes[label]
    }

    // ---- internals -------------------------------------------------

    fn check_dims(&self, dims: usize) -> Result<(), SimError> {
        if dims == 0 || dims > self.config.dim || !dims.is_multiple_of(SUB_NORM_CHUNK) {
            return Err(SimError::InvalidArgument {
                detail: format!(
                    "dims {dims} must be a positive multiple of {SUB_NORM_CHUNK} up to {}",
                    self.config.dim
                ),
            });
        }
        Ok(())
    }

    fn hw_scores(&self, query: &IntHv, dims: usize) -> Vec<f64> {
        self.hw_scores_k(query, dims, self.config.n_classes)
    }

    /// Hardware similarity: `sign(dot) · Mitchell(dot² / ‖C‖²)` over the
    /// first `dims` dimensions against the first `rows` classes.
    fn hw_scores_k(&self, query: &IntHv, dims: usize, rows: usize) -> Vec<f64> {
        let chunks = dims / SUB_NORM_CHUNK;
        (0..rows)
            .map(|c| {
                let dot: i64 = query.values()[..dims]
                    .iter()
                    .zip(&self.classes[c][..dims])
                    .map(|(&q, &w)| i64::from(q) * i64::from(w))
                    .sum();
                let norm2: u64 = self.norm2[c][..chunks].iter().sum();
                if norm2 == 0 {
                    return 0.0;
                }
                // Square in 128 bits: saturated class rows can push the
                // dot product past 3e9, whose square overflows i64.
                let dot2 = (i128::from(dot) * i128::from(dot)) as u128;
                let quotient = mitchell_divide_wide(dot2, norm2);
                if dot < 0 {
                    -quotient
                } else {
                    quotient
                }
            })
            .collect()
    }

    fn bundle_into_class(&mut self, hv: &IntHv, label: usize) {
        for (slot, &v) in self.classes[label].iter_mut().zip(hv.values()) {
            *slot = saturate(i32::from(*slot) + v);
        }
    }

    fn subtract_from_class(&mut self, hv: &IntHv, label: usize) {
        for (slot, &v) in self.classes[label].iter_mut().zip(hv.values()) {
            *slot = saturate(i32::from(*slot) - v);
        }
    }

    fn refresh_class_norms(&mut self, label: usize) {
        for (ci, chunk) in self.classes[label].chunks(SUB_NORM_CHUNK).enumerate() {
            self.norm2[label][ci] = chunk
                .iter()
                .map(|&v| (i64::from(v) * i64::from(v)) as u64)
                .sum();
        }
    }

    fn refresh_all_norms(&mut self) {
        for c in 0..self.config.n_classes {
            self.refresh_class_norms(c);
        }
    }

    fn charge_norm_refresh(&mut self, n_classes: usize) {
        // Squared-norm computation reuses the dot-product multipliers
        // while the class rows stream by (§4.2.2).
        self.counts.mac_ops += (n_classes * self.config.dim) as u64;
        self.counts.class_reads += (n_classes * self.config.dim) as u64;
        self.counts.norm2_accesses += (n_classes * self.norm2[0].len()) as u64;
        self.counts.cycles += (n_classes * self.config.passes()) as u64;
    }

    /// Activity of encoding one input. `with_load` charges the serial
    /// input-port load.
    fn encode_activity(&self, with_load: bool) -> ActivityCounts {
        crate::mitigation::encode_activity(&self.config, with_load)
    }

    /// Activity of one inference over `dims` dimensions against `rows`
    /// classes, including the pipelined encode (formula lives in
    /// [`crate::mitigation`] so resilience schemes price identically).
    fn infer_activity(&self, dims: usize, rows: usize) -> ActivityCounts {
        crate::mitigation::infer_activity(&self.config, dims, rows)
    }

    /// Activity of one class update (§4.2.2: `3 · D/m` cycles).
    fn update_activity(&self) -> ActivityCounts {
        crate::mitigation::update_activity(&self.config)
    }
}

fn saturate(v: i32) -> i16 {
    v.clamp(i32::from(i16::MIN), i32::from(i16::MAX)) as i16
}

fn sign_extend(bits: u16, bw: u32) -> i16 {
    if bw >= 16 {
        bits as i16
    } else if bits & (1 << (bw - 1)) != 0 {
        (bits | !((1u16 << bw) - 1)) as i16
    } else {
        bits as i16
    }
}

fn argmax(values: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in values.iter().enumerate().skip(1) {
        if v > values[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Well-separated two-class toy data over 16 features.
    fn toy() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..24 {
            let c = i % 2;
            let base = if c == 0 { 1.0 } else { 9.0 };
            xs.push(
                (0..16)
                    .map(|j| base + ((i * 5 + j * 3) % 4) as f64 * 0.2)
                    .collect(),
            );
            ys.push(c);
        }
        (xs, ys)
    }

    fn accelerator() -> Accelerator {
        let (xs, _) = toy();
        Accelerator::new(AcceleratorConfig::new(1024, 16, 2).with_seed(3), &xs).unwrap()
    }

    #[test]
    fn train_then_infer_classifies() {
        let (xs, ys) = toy();
        let mut acc = accelerator();
        let outcome = acc.train(&xs, &ys, 5).unwrap();
        assert!(!outcome.epoch_errors.is_empty());
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(acc.infer(x).unwrap().prediction, y);
        }
    }

    #[test]
    fn matches_library_predictions_at_16_bit() {
        let (xs, ys) = toy();
        let mut acc = accelerator();
        // Train the reference model with the *same* encoder settings.
        let encoded: Vec<IntHv> = xs.iter().map(|x| acc.encoder.encode(x).unwrap()).collect();
        let mut model = HdcModel::fit(&encoded, &ys, 2).unwrap();
        model.retrain(&encoded, &ys, 5).unwrap();
        acc.load_model(&model).unwrap();
        for (x, hv) in xs.iter().zip(&encoded) {
            assert_eq!(
                acc.infer(x).unwrap().prediction,
                model.predict(hv),
                "simulator and library disagree"
            );
        }
    }

    #[test]
    fn infer_without_model_errors() {
        let (xs, _) = toy();
        let mut acc = accelerator();
        assert!(matches!(acc.infer(&xs[0]), Err(SimError::NoModel)));
    }

    #[test]
    fn cycle_counts_follow_the_dataflow_formulas() {
        let (xs, ys) = toy();
        let mut acc = accelerator();
        acc.train(&xs, &ys, 1).unwrap();
        acc.reset_activity();
        let _ = acc.infer(&xs[0]).unwrap();
        let c = acc.activity();
        // d + P·max(d, nC) + nC + 4 with d=16, P=64, nC=2.
        assert_eq!(c.cycles, 16 + 64 * 16 + 2 + 4);
        assert_eq!(c.class_reads, 64 * 2 * 16);
        assert_eq!(c.divides, 2);
    }

    #[test]
    fn update_costs_three_passes() {
        let acc = accelerator();
        let u = acc.update_activity();
        assert_eq!(u.cycles, 3 * 64);
        assert_eq!(u.class_writes, 64 * 16);
    }

    #[test]
    fn reduced_dimensions_cost_fewer_cycles() {
        let (xs, ys) = toy();
        let mut acc = accelerator();
        acc.train(&xs, &ys, 2).unwrap();
        acc.reset_activity();
        let _ = acc.infer_reduced(&xs[0], 1024).unwrap();
        let full = acc.activity().cycles;
        acc.reset_activity();
        let _ = acc.infer_reduced(&xs[0], 256).unwrap();
        let reduced = acc.activity().cycles;
        assert!(reduced < full / 2, "full {full} vs reduced {reduced}");
    }

    #[test]
    fn reduced_dimensions_keep_accuracy_on_easy_data() {
        let (xs, ys) = toy();
        let mut acc = accelerator();
        acc.train(&xs, &ys, 3).unwrap();
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(acc.infer_reduced(x, 512).unwrap().prediction, y);
        }
    }

    #[test]
    fn invalid_dims_rejected() {
        let (xs, ys) = toy();
        let mut acc = accelerator();
        acc.train(&xs, &ys, 1).unwrap();
        assert!(acc.infer_reduced(&xs[0], 100).is_err());
        assert!(acc.infer_reduced(&xs[0], 0).is_err());
        assert!(acc.infer_reduced(&xs[0], 2048).is_err());
    }

    #[test]
    fn clustering_groups_separable_inputs() {
        let (xs, _) = toy();
        let mut acc = accelerator();
        let outcome = acc.cluster(&xs, 2, 10).unwrap();
        // All class-0 inputs share a cluster, all class-1 inputs the other.
        let c0 = outcome.assignments[0];
        let c1 = outcome.assignments[1];
        assert_ne!(c0, c1);
        for (i, &a) in outcome.assignments.iter().enumerate() {
            assert_eq!(a, if i % 2 == 0 { c0 } else { c1 });
        }
    }

    #[test]
    fn fault_injection_at_zero_is_identity() {
        let (xs, ys) = toy();
        let mut acc = accelerator();
        acc.train(&xs, &ys, 2).unwrap();
        let before = acc.class_row(0).to_vec();
        assert_eq!(acc.inject_class_bit_errors(0.0, 1).unwrap(), 0);
        assert_eq!(acc.class_row(0), &before[..]);
    }

    #[test]
    fn small_fault_rates_preserve_easy_predictions() {
        let (xs, ys) = toy();
        let mut acc = accelerator();
        acc.train(&xs, &ys, 3).unwrap();
        acc.inject_class_bit_errors(0.001, 7).unwrap();
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|&(x, &y)| acc.infer(x).unwrap().prediction == y)
            .count();
        assert!(correct >= xs.len() - 1, "correct = {correct}/{}", xs.len());
    }

    #[test]
    fn energy_report_has_sane_power_figures() {
        let (xs, ys) = toy();
        let mut acc = accelerator();
        acc.train(&xs, &ys, 3).unwrap();
        acc.reset_activity();
        for x in &xs {
            let _ = acc.infer(x).unwrap();
        }
        let report = acc.energy_report(&EnergyOptions::default());
        // Active power in the low-mW range (paper: ~1.8 mW dynamic).
        assert!(
            report.dynamic_power_mw > 0.1 && report.dynamic_power_mw < 10.0,
            "dynamic = {} mW",
            report.dynamic_power_mw
        );
        assert!(report.static_power_mw < 0.3);
        assert!(report.total_energy_uj > 0.0);
    }

    #[test]
    fn idle_energy_is_linear_in_time() {
        let acc = accelerator();
        let opts = EnergyOptions::default();
        let one = acc.idle_energy_uj(1.0, &opts);
        let ten = acc.idle_energy_uj(10.0, &opts);
        assert!((ten - 10.0 * one).abs() < 1e-9);
        assert!(one > 0.0);
        // Gating reduces idle energy.
        let ungated = acc.idle_energy_uj(
            1.0,
            &EnergyOptions {
                power_gating: false,
                vos: None,
            },
        );
        assert!(one < ungated);
    }

    #[test]
    fn requantize_narrows_and_preserves_predictions() {
        let (xs, ys) = toy();
        let mut acc = accelerator();
        acc.train(&xs, &ys, 3).unwrap();
        acc.requantize(8).unwrap();
        assert_eq!(acc.config().bit_width, 8);
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(acc.infer(x).unwrap().prediction, y);
        }
        assert!(acc.requantize(0).is_err());
    }

    #[test]
    fn load_model_validates_shape() {
        let (xs, ys) = toy();
        let mut acc = accelerator();
        let encoded: Vec<IntHv> = xs.iter().map(|x| acc.encoder.encode(x).unwrap()).collect();
        let wrong_classes = HdcModel::fit(&encoded, &ys, 3).unwrap();
        assert!(matches!(
            acc.load_model(&wrong_classes),
            Err(SimError::ModelMismatch { .. })
        ));
    }

    #[test]
    fn config_errors_propagate() {
        let (xs, _) = toy();
        let bad = AcceleratorConfig::new(4000, 16, 2);
        assert!(matches!(
            Accelerator::new(bad, &xs),
            Err(SimError::Config(_))
        ));
    }
}
