//! Property-based tests for the dataset generators: every benchmark must
//! be valid, deterministic, and structurally faithful for *any* seed, not
//! just the defaults used in the harness.

use generic_datasets::{
    generate_sequence, generate_spatial, generate_tabular, generate_temporal, Benchmark,
    ClusteringBenchmark, SequenceSpec, SpatialSpec, TabularSpec, TemporalSpec,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every classification benchmark validates and is reproducible under
    /// any seed.
    #[test]
    fn benchmarks_valid_for_any_seed(seed in any::<u64>()) {
        for benchmark in Benchmark::ALL {
            let a = benchmark.load(seed);
            a.validate();
            prop_assert_eq!(a, benchmark.load(seed));
        }
    }

    /// Clustering benchmarks keep their FCPS cardinalities and label
    /// ranges under any seed.
    #[test]
    fn clustering_benchmarks_valid_for_any_seed(seed in any::<u64>()) {
        for benchmark in ClusteringBenchmark::ALL {
            let ds = benchmark.load(seed);
            prop_assert!(!ds.is_empty());
            prop_assert!(ds.labels.iter().all(|&l| l < ds.k));
            prop_assert!(ds.points.iter().all(|p| p.len() == ds.n_features()));
        }
    }

    /// Tabular generation respects the requested shape for any
    /// configuration in range.
    #[test]
    fn tabular_respects_shape(
        seed in any::<u64>(),
        n_features in 2usize..24,
        n_classes in 2usize..5,
    ) {
        let spec = TabularSpec {
            n_features,
            n_classes,
            n_train: 40,
            n_test: 20,
            ..TabularSpec::default()
        };
        let ds = generate_tabular("prop", spec, seed);
        prop_assert_eq!(ds.n_features, n_features);
        prop_assert_eq!(ds.n_classes, n_classes);
        prop_assert_eq!(ds.train.len(), 40);
        prop_assert_eq!(ds.test.len(), 20);
    }

    /// Sequence symbols always stay inside the alphabet.
    #[test]
    fn sequence_symbols_in_alphabet(seed in any::<u64>(), alphabet in 4usize..20) {
        let spec = SequenceSpec {
            alphabet,
            n_train: 30,
            n_test: 10,
            ..SequenceSpec::default()
        };
        let ds = generate_sequence("prop", spec, seed);
        for row in ds.train.features.iter().chain(&ds.test.features) {
            prop_assert!(row.iter().all(|&v| v >= 0.0 && v < alphabet as f64));
            prop_assert!(row.iter().all(|&v| v == v.floor()));
        }
    }

    /// Temporal generation terminates (the motif-decorrelation rejection
    /// loop must relax rather than spin) for crowded class counts.
    #[test]
    fn temporal_terminates_with_many_classes(seed in any::<u64>(), n_classes in 2usize..10) {
        let spec = TemporalSpec {
            n_classes,
            n_train: 40.max(n_classes * 4),
            n_test: 20.max(n_classes * 2),
            ..TemporalSpec::default()
        };
        let ds = generate_temporal("prop", spec, seed);
        ds.validate();
    }

    /// Spatial class layouts are distinct: at least one pair of classes
    /// must place motifs differently (with overwhelming probability).
    #[test]
    fn spatial_classes_are_not_identical(seed in any::<u64>()) {
        let spec = SpatialSpec {
            n_train: 60,
            n_test: 20,
            noise: 0.0,
            placement_jitter: 0,
            ..SpatialSpec::default()
        };
        let ds = generate_spatial("prop", spec, seed);
        // With zero noise and jitter, same-class rows are identical and
        // cross-class rows differ unless layouts collide.
        let row_of = |class: usize| {
            ds.train
                .features
                .iter()
                .zip(&ds.train.labels)
                .find(|&(_, &l)| l == class)
                .map(|(r, _)| r.clone())
                .expect("class coverage guaranteed")
        };
        let distinct = (1..ds.n_classes).any(|c| row_of(0) != row_of(c));
        prop_assert!(distinct);
    }
}
