//! Dataset containers shared by all generators.

/// One split (train or test) of a classification dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Split {
    /// Feature rows, `n_samples × n_features`.
    pub features: Vec<Vec<f64>>,
    /// Class label per row, in `0..n_classes`.
    pub labels: Vec<usize>,
}

impl Split {
    /// Number of samples in the split.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the split is empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }
}

/// A classification dataset with a train/test split.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Short dataset name (Table 1 row label).
    pub name: &'static str,
    /// Training split.
    pub train: Split,
    /// Held-out test split.
    pub test: Split,
    /// Number of classes.
    pub n_classes: usize,
    /// Number of features per sample.
    pub n_features: usize,
}

impl Dataset {
    /// Sanity-checks internal consistency (row widths, label ranges,
    /// non-emptiness). Generators call this before returning; it is public
    /// so integration tests can assert it too.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on any inconsistency.
    pub fn validate(&self) {
        assert!(
            self.n_classes >= 2,
            "{}: need at least 2 classes",
            self.name
        );
        assert!(
            self.n_features >= 1,
            "{}: need at least 1 feature",
            self.name
        );
        for (split_name, split) in [("train", &self.train), ("test", &self.test)] {
            assert!(!split.is_empty(), "{}: {split_name} split empty", self.name);
            assert_eq!(
                split.features.len(),
                split.labels.len(),
                "{}: {split_name} features/labels length mismatch",
                self.name
            );
            for row in &split.features {
                assert_eq!(
                    row.len(),
                    self.n_features,
                    "{}: {split_name} row width mismatch",
                    self.name
                );
            }
            for &l in &split.labels {
                assert!(
                    l < self.n_classes,
                    "{}: {split_name} label {l} out of range",
                    self.name
                );
            }
        }
        // Every class should appear in training data.
        let mut seen = vec![false; self.n_classes];
        for &l in &self.train.labels {
            seen[l] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "{}: some classes missing from the train split",
            self.name
        );
    }
}
