//! # generic-datasets
//!
//! Benchmark datasets for the GENERIC (DAC'22) reproduction.
//!
//! The paper evaluates on eleven classification datasets (Table 1) and five
//! clustering datasets (Table 2, Fig. 10). The original data (UCI, MNIST,
//! ISOLET, ...) cannot be shipped, so this crate provides *synthetic
//! equivalents*: parameterized generators matched to each dataset's shape —
//! feature count, class count, and, critically, the structural property
//! each HDC encoding is sensitive to:
//!
//! - **Tabular** (CARDIO, PAGE): per-feature class means; no ordering
//!   structure, every encoder has a fair shot.
//! - **Spatial** (MNIST, FACE, ISOLET): discriminative motifs at
//!   class-specific *positions* — bag-of-windows (ngram) encodings fail by
//!   construction, position-aware encodings succeed, exactly the failure
//!   mode §3.2 describes.
//! - **Temporal** (EEG, EMG, PAMAP2, UCIHAR): class-specific motifs at
//!   *random* positions — encodings without local windows (random
//!   projection) fail, windowed encodings succeed.
//! - **Sequence** (LANG, DNA): categorical symbol streams whose classes are
//!   signature n-grams at arbitrary offsets — strict-order (permutation)
//!   and value-linear (RP) encodings fail, n-gram style encodings succeed.
//!
//! The clustering suite re-implements the published FCPS shape definitions
//! (Hepta, Tetra, TwoDiamonds, WingNut) and approximates the Iris data from
//! its documented per-class feature statistics.
//!
//! Everything is deterministic given a seed.
//!
//! ```
//! use generic_datasets::Benchmark;
//!
//! let ds = Benchmark::Eeg.load(42);
//! assert_eq!(ds.n_features, ds.train.features[0].len());
//! assert!(ds.n_classes >= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod benchmarks;
mod clustering;
mod data;
mod rand_util;
mod sequence;
mod spatial;
mod tabular;
mod temporal;

pub use benchmarks::Benchmark;
pub use clustering::{ClusterDataset, ClusteringBenchmark};
pub use data::{Dataset, Split};
pub use sequence::{generate_sequence, SequenceSpec};
pub use spatial::{generate_spatial, SpatialSpec};
pub use tabular::{generate_tabular, TabularSpec};
pub use temporal::{generate_temporal, TemporalSpec};
