//! Temporal dataset generator — the EEG/EMG/PAMAP2/UCIHAR stand-ins.
//!
//! Each class is defined by characteristic zero-mean waveforms (motifs)
//! that appear at **random** positions within the window. Because the
//! motifs are zero-mean and their positions are uniform, a fixed linear
//! projection (random projection encoding) sees almost no class signal —
//! the paper's observation that "RP encoding fails in time-series datasets
//! that require temporal information (e.g., EEG)". Windowed encodings
//! (ngram, GENERIC) detect the motifs wherever they occur. An optional weak
//! per-position bias gives position-bound encodings (level-id, permutation)
//! a moderate but not leading score, matching the Table 1 pattern.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::data::{Dataset, Split};
use crate::rand_util::normal_with;
use crate::spatial::non_overlapping_positions;

/// Parameters of a temporal dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemporalSpec {
    /// Time steps (features) per sample.
    pub n_features: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Training samples (total).
    pub n_train: usize,
    /// Test samples (total).
    pub n_test: usize,
    /// Length of each class motif.
    pub motif_len: usize,
    /// How many motif instances each sample contains.
    pub motifs_per_sample: usize,
    /// Amplitude of the class motifs.
    pub motif_amplitude: f64,
    /// Strength of the weak class-dependent positional bias (0 disables).
    pub positional_bias: f64,
    /// Background noise standard deviation.
    pub noise: f64,
    /// Class imbalance: weight ratio between consecutive classes
    /// (`1.0` = balanced; `3.0` on a 2-class task gives a 3:1 split, the
    /// seizure-vs-background skew of clinical EEG).
    pub imbalance: f64,
}

impl Default for TemporalSpec {
    fn default() -> Self {
        TemporalSpec {
            n_features: 64,
            n_classes: 4,
            n_train: 400,
            n_test: 150,
            motif_len: 6,
            motifs_per_sample: 3,
            motif_amplitude: 2.0,
            positional_bias: 0.4,
            noise: 0.5,
            imbalance: 1.0,
        }
    }
}

/// Generates a temporal dataset.
///
/// # Panics
///
/// Panics if the spec is inconsistent (motifs cannot fit, zero classes, ...).
pub fn generate_temporal(name: &'static str, spec: TemporalSpec, seed: u64) -> Dataset {
    assert!(spec.n_classes >= 2 && spec.n_features >= 1);
    assert!(spec.motif_len >= 2);
    assert!(
        spec.motifs_per_sample * spec.motif_len <= spec.n_features,
        "motifs do not fit in the window"
    );
    assert!(spec.imbalance >= 1.0, "imbalance must be >= 1.0");
    let mut rng = StdRng::seed_from_u64(seed);

    // Class weights: w_c ∝ imbalance^(n_classes - 1 - c).
    let weights: Vec<f64> = (0..spec.n_classes)
        .map(|c| spec.imbalance.powi((spec.n_classes - 1 - c) as i32))
        .collect();
    let weight_sum: f64 = weights.iter().sum();

    // Class motifs: zero-mean random waveforms (so a fixed linear
    // projection of a randomly-placed motif has expectation ~0).
    // Reject motifs that correlate strongly (in any cyclic shift) with an
    // earlier class's motif, so class separability does not hinge on a
    // lucky seed. Short motifs cannot host many mutually decorrelated
    // classes, so the threshold relaxes if sampling keeps failing.
    let mut motifs: Vec<Vec<f64>> = Vec::with_capacity(spec.n_classes);
    let mut threshold = 0.35;
    let mut attempts = 0usize;
    while motifs.len() < spec.n_classes {
        let mut m: Vec<f64> = (0..spec.motif_len)
            .map(|_| normal_with(&mut rng, 0.0, spec.motif_amplitude))
            .collect();
        let mean = m.iter().sum::<f64>() / m.len() as f64;
        for v in &mut m {
            *v -= mean;
        }
        let distinct = motifs
            .iter()
            .all(|other| max_cyclic_correlation(&m, other) < threshold);
        if distinct {
            motifs.push(m);
        } else {
            attempts += 1;
            if attempts.is_multiple_of(200) {
                threshold = (threshold + 0.05).min(1.0);
            }
        }
    }

    // Weak per-position class bias over a smooth random profile.
    let biases: Vec<Vec<f64>> = (0..spec.n_classes)
        .map(|_| {
            (0..spec.n_features)
                .map(|_| normal_with(&mut rng, 0.0, spec.positional_bias))
                .collect()
        })
        .collect();

    let sample = |rng: &mut StdRng, class: usize| -> Vec<f64> {
        let mut row: Vec<f64> = (0..spec.n_features)
            .map(|j| biases[class][j] + normal_with(rng, 0.0, spec.noise))
            .collect();
        let positions =
            non_overlapping_positions(rng, spec.n_features, spec.motifs_per_sample, spec.motif_len);
        for &start in &positions {
            for (k, &v) in motifs[class].iter().enumerate() {
                row[start + k] += v;
            }
        }
        row
    };

    let make_split = |rng: &mut StdRng, n: usize| -> Split {
        let mut features = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = if i < spec.n_classes {
                i // guarantee coverage
            } else {
                let mut t: f64 = rng.random_range(0.0..weight_sum);
                let mut chosen = spec.n_classes - 1;
                for (c, &w) in weights.iter().enumerate() {
                    if t < w {
                        chosen = c;
                        break;
                    }
                    t -= w;
                }
                chosen
            };
            features.push(sample(rng, class));
            labels.push(class);
        }
        Split { features, labels }
    };

    let train = make_split(&mut rng, spec.n_train);
    let test = make_split(&mut rng, spec.n_test);
    let ds = Dataset {
        name,
        train,
        test,
        n_classes: spec.n_classes,
        n_features: spec.n_features,
    };
    ds.validate();
    ds
}

/// Maximum absolute normalized correlation between `a` and all cyclic
/// shifts of `b` (windowed encoders see motifs at arbitrary offsets, so
/// distinctness must hold under shifts too).
fn max_cyclic_correlation(a: &[f64], b: &[f64]) -> f64 {
    let na = a.iter().map(|v| v * v).sum::<f64>().sqrt();
    let nb = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 1.0; // degenerate motifs count as identical
    }
    let len = a.len();
    (0..len)
        .map(|shift| {
            let dot: f64 = (0..len).map(|i| a[i] * b[(i + shift) % len]).sum();
            (dot / (na * nb)).abs()
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_skews_class_frequencies() {
        let spec = TemporalSpec {
            n_classes: 2,
            imbalance: 3.0,
            ..TemporalSpec::default()
        };
        let ds = generate_temporal("toy", spec, 8);
        let c0 = ds.train.labels.iter().filter(|&&l| l == 0).count();
        let frac = c0 as f64 / ds.train.len() as f64;
        assert!((0.65..0.85).contains(&frac), "class-0 fraction {frac}");
    }

    #[test]
    fn motifs_are_pairwise_decorrelated() {
        let spec = TemporalSpec::default();
        for seed in [1u64, 7, 13, 99] {
            let ds = generate_temporal("toy", spec, seed);
            ds.validate();
        }
        // Correlation helper sanity.
        let a = [1.0, -1.0, 1.0, -1.0];
        assert!((max_cyclic_correlation(&a, &a) - 1.0).abs() < 1e-12);
        let b = [1.0, 1.0, -1.0, -1.0];
        assert!(max_cyclic_correlation(&a, &b) < 0.6);
    }

    #[test]
    fn shapes_are_consistent() {
        let ds = generate_temporal("toy", TemporalSpec::default(), 1);
        ds.validate();
        assert_eq!(ds.train.len(), 400);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate_temporal("toy", TemporalSpec::default(), 5);
        let b = generate_temporal("toy", TemporalSpec::default(), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn class_means_are_weak_relative_to_motifs() {
        // The global per-position class signal (bias) must be much weaker
        // than the motif amplitude, otherwise RP would not fail.
        let spec = TemporalSpec::default();
        let ds = generate_temporal("toy", spec, 6);
        let mut mean0 = vec![0.0f64; ds.n_features];
        let mut n0 = 0usize;
        for (row, &l) in ds.train.features.iter().zip(&ds.train.labels) {
            if l == 0 {
                n0 += 1;
                for (j, &v) in row.iter().enumerate() {
                    mean0[j] += v;
                }
            }
        }
        let max_mean = mean0
            .iter()
            .map(|v| (v / n0 as f64).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_mean < spec.motif_amplitude,
            "positional bias dominates: {max_mean}"
        );
    }

    #[test]
    fn motif_energy_is_present() {
        let spec = TemporalSpec {
            noise: 0.1,
            positional_bias: 0.0,
            ..TemporalSpec::default()
        };
        let ds = generate_temporal("toy", spec, 7);
        // With low noise, sample variance should exceed the noise floor
        // because motifs inject energy.
        let row = &ds.train.features[0];
        let mean = row.iter().sum::<f64>() / row.len() as f64;
        let var = row.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / row.len() as f64;
        assert!(var > 0.05, "var = {var}");
    }
}
