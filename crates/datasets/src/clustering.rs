//! Clustering benchmarks: the FCPS suite (Ultsch, "Clustering with SOM",
//! 2005) regenerated from its published geometric definitions, plus an
//! Iris approximation synthesized from the dataset's documented per-class
//! feature statistics (the real data cannot be embedded verbatim here, but
//! its first two moments are public and define the clustering task).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::rand_util::normal_with;

/// An unlabeled-learning dataset with ground-truth cluster labels for
/// scoring (normalized mutual information, Table 2).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterDataset {
    /// Short dataset name (Table 2 column label).
    pub name: &'static str,
    /// Data points, `n × n_features`.
    pub points: Vec<Vec<f64>>,
    /// Ground-truth cluster index per point.
    pub labels: Vec<usize>,
    /// True number of clusters.
    pub k: usize,
}

impl ClusterDataset {
    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the dataset is empty (never true for a generated dataset).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Feature count per point.
    pub fn n_features(&self) -> usize {
        self.points[0].len()
    }
}

/// The clustering benchmarks of Table 2 / Fig. 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ClusteringBenchmark {
    /// FCPS Hepta: 212 points, 7 well-separated Gaussian clusters in 3-D.
    Hepta,
    /// FCPS Tetra: 400 points, 4 almost-touching clusters at tetrahedron
    /// vertices in 3-D.
    Tetra,
    /// FCPS TwoDiamonds: 800 points, two touching diamond shapes in 2-D.
    TwoDiamonds,
    /// FCPS WingNut: 1016 points, two density-graded rectangles in 2-D.
    WingNut,
    /// Iris flowers: 150 points, 3 species, 4 features (statistical
    /// approximation, see module docs).
    Iris,
}

impl ClusteringBenchmark {
    /// All benchmarks in the column order of Table 2.
    pub const ALL: [ClusteringBenchmark; 5] = [
        ClusteringBenchmark::Hepta,
        ClusteringBenchmark::Tetra,
        ClusteringBenchmark::TwoDiamonds,
        ClusteringBenchmark::WingNut,
        ClusteringBenchmark::Iris,
    ];

    /// The Table 2 column label.
    pub fn name(self) -> &'static str {
        match self {
            ClusteringBenchmark::Hepta => "Hepta",
            ClusteringBenchmark::Tetra => "Tetra",
            ClusteringBenchmark::TwoDiamonds => "TwoDiamonds",
            ClusteringBenchmark::WingNut => "WingNut",
            ClusteringBenchmark::Iris => "Iris",
        }
    }

    /// Generates the benchmark deterministically from `seed`.
    pub fn load(self, seed: u64) -> ClusterDataset {
        let seed = seed.wrapping_mul(0xD1B5_4A32_D192_ED03) ^ (self as u64) << 32;
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            ClusteringBenchmark::Hepta => hepta(&mut rng),
            ClusteringBenchmark::Tetra => tetra(&mut rng),
            ClusteringBenchmark::TwoDiamonds => two_diamonds(&mut rng),
            ClusteringBenchmark::WingNut => wingnut(&mut rng),
            ClusteringBenchmark::Iris => iris(&mut rng),
        }
    }
}

impl std::fmt::Display for ClusteringBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Hepta: one cluster at the origin and six on the axes at distance 4,
/// each a tight isotropic Gaussian — "clearly defined clusters".
fn hepta(rng: &mut StdRng) -> ClusterDataset {
    let centers: [[f64; 3]; 7] = [
        [0.0, 0.0, 0.0],
        [4.0, 0.0, 0.0],
        [-4.0, 0.0, 0.0],
        [0.0, 4.0, 0.0],
        [0.0, -4.0, 0.0],
        [0.0, 0.0, 4.0],
        [0.0, 0.0, -4.0],
    ];
    let mut points = Vec::with_capacity(212);
    let mut labels = Vec::with_capacity(212);
    for i in 0..212 {
        let c = i % 7;
        points.push(
            centers[c]
                .iter()
                .map(|&m| normal_with(rng, m, 0.6))
                .collect(),
        );
        labels.push(c);
    }
    ClusterDataset {
        name: "Hepta",
        points,
        labels,
        k: 7,
    }
}

/// Tetra: four clusters at the vertices of a regular tetrahedron with a
/// spread large enough that the clusters almost touch.
fn tetra(rng: &mut StdRng) -> ClusterDataset {
    let s = 1.8;
    let centers: [[f64; 3]; 4] = [[s, s, s], [s, -s, -s], [-s, s, -s], [-s, -s, s]];
    let mut points = Vec::with_capacity(400);
    let mut labels = Vec::with_capacity(400);
    for i in 0..400 {
        let c = i % 4;
        points.push(
            centers[c]
                .iter()
                .map(|&m| normal_with(rng, m, 1.0))
                .collect(),
        );
        labels.push(c);
    }
    ClusterDataset {
        name: "Tetra",
        points,
        labels,
        k: 4,
    }
}

/// TwoDiamonds: two axis-rotated squares (diamonds) side by side in 2-D,
/// filled uniformly, nearly touching at one corner.
fn two_diamonds(rng: &mut StdRng) -> ClusterDataset {
    let mut points = Vec::with_capacity(800);
    let mut labels = Vec::with_capacity(800);
    for i in 0..800 {
        let c = i % 2;
        let cx = if c == 0 { -1.1 } else { 1.1 };
        // Uniform over the L1 ball |x| + |y| <= 1 via rejection.
        let (dx, dy) = loop {
            let x: f64 = rng.random_range(-1.0..1.0);
            let y: f64 = rng.random_range(-1.0..1.0);
            if x.abs() + y.abs() <= 1.0 {
                break (x, y);
            }
        };
        points.push(vec![cx + dx, dy]);
        labels.push(c);
    }
    ClusterDataset {
        name: "TwoDiamonds",
        points,
        labels,
        k: 2,
    }
}

/// WingNut: two rectangles with opposing linear density gradients, offset
/// so their dense corners face each other.
fn wingnut(rng: &mut StdRng) -> ClusterDataset {
    let mut points = Vec::with_capacity(1016);
    let mut labels = Vec::with_capacity(1016);
    for i in 0..1016 {
        let c = i % 2;
        // Density increases toward x = 1 via sqrt warp of a uniform sample.
        let u: f64 = rng.random_range(0.0f64..1.0);
        let x = u.sqrt() * 2.0; // in [0, 2], denser near 2
        let y: f64 = rng.random_range(0.0..1.0);
        let (px, py) = if c == 0 {
            (x, y)
        } else {
            // Mirrored rectangle shifted so dense edges face each other
            // across a small gap.
            (-(x) + 4.3, y + 0.3)
        };
        points.push(vec![px, py]);
        labels.push(c);
    }
    ClusterDataset {
        name: "WingNut",
        points,
        labels,
        k: 2,
    }
}

/// Iris approximation from the documented per-class means and standard
/// deviations of the four features (sepal length/width, petal
/// length/width).
fn iris(rng: &mut StdRng) -> ClusterDataset {
    const MEANS: [[f64; 4]; 3] = [
        [5.006, 3.428, 1.462, 0.246], // setosa
        [5.936, 2.770, 4.260, 1.326], // versicolor
        [6.588, 2.974, 5.552, 2.026], // virginica
    ];
    const STDS: [[f64; 4]; 3] = [
        [0.352, 0.379, 0.174, 0.105],
        [0.516, 0.314, 0.470, 0.198],
        [0.636, 0.322, 0.552, 0.275],
    ];
    let mut points = Vec::with_capacity(150);
    let mut labels = Vec::with_capacity(150);
    for i in 0..150 {
        let c = i % 3;
        points.push(
            (0..4)
                .map(|j| normal_with(rng, MEANS[c][j], STDS[c][j]).max(0.05))
                .collect(),
        );
        labels.push(c);
    }
    ClusterDataset {
        name: "Iris",
        points,
        labels,
        k: 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_fcps_definitions() {
        assert_eq!(ClusteringBenchmark::Hepta.load(1).len(), 212);
        assert_eq!(ClusteringBenchmark::Tetra.load(1).len(), 400);
        assert_eq!(ClusteringBenchmark::TwoDiamonds.load(1).len(), 800);
        assert_eq!(ClusteringBenchmark::WingNut.load(1).len(), 1016);
        assert_eq!(ClusteringBenchmark::Iris.load(1).len(), 150);
    }

    #[test]
    fn labels_cover_k_clusters() {
        for b in ClusteringBenchmark::ALL {
            let ds = b.load(2);
            let max = ds.labels.iter().max().unwrap() + 1;
            assert_eq!(max, ds.k, "{b}");
            assert_eq!(ds.points.len(), ds.labels.len());
        }
    }

    #[test]
    fn deterministic_under_seed() {
        for b in ClusteringBenchmark::ALL {
            assert_eq!(b.load(5), b.load(5), "{b}");
        }
    }

    #[test]
    fn hepta_clusters_are_well_separated() {
        let ds = ClusteringBenchmark::Hepta.load(3);
        // Points of cluster 0 (origin) stay within radius 3 of the origin.
        for (p, &l) in ds.points.iter().zip(&ds.labels) {
            let r = p.iter().map(|v| v * v).sum::<f64>().sqrt();
            if l == 0 {
                assert!(r < 3.0, "origin cluster point at radius {r}");
            }
        }
    }

    #[test]
    fn diamonds_respect_their_shape() {
        let ds = ClusteringBenchmark::TwoDiamonds.load(4);
        for (p, &l) in ds.points.iter().zip(&ds.labels) {
            let cx = if l == 0 { -1.1 } else { 1.1 };
            assert!((p[0] - cx).abs() + p[1].abs() <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn iris_feature_ranges_are_plausible() {
        let ds = ClusteringBenchmark::Iris.load(6);
        for p in &ds.points {
            assert!(p[0] > 3.0 && p[0] < 9.0, "sepal length {}", p[0]);
            assert!(p[2] > 0.0 && p[2] < 8.5, "petal length {}", p[2]);
        }
    }
}
