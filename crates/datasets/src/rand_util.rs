//! Small random-sampling helpers (the approved `rand` crate has no
//! distributions beyond uniform, so Gaussians are Box–Muller).

use rand::rngs::StdRng;
use rand::Rng;

/// Standard normal sample via the Box–Muller transform.
pub fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal sample with explicit mean and standard deviation.
pub fn normal_with(rng: &mut StdRng, mean: f64, std: f64) -> f64 {
    mean + std * normal(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.1, "var = {var}");
    }

    #[test]
    fn normal_with_scales() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal_with(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean = {mean}");
    }
}
