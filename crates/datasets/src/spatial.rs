//! Spatial dataset generator — the MNIST/FACE/ISOLET stand-ins.
//!
//! Classes share one motif vocabulary; what distinguishes a class is
//! **where** each motif sits. A bag-of-windows encoding (ngram) sees the
//! same multiset of local windows for every class and fails, while
//! position-aware encodings (random projection, level-id, permutation,
//! GENERIC) succeed — reproducing the §3.2 observation that ngram fails on
//! image/speech data.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::data::{Dataset, Split};
use crate::rand_util::normal_with;

/// Parameters of a spatial dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpatialSpec {
    /// Features per sample (the flattened "image").
    pub n_features: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Training samples (total).
    pub n_train: usize,
    /// Test samples (total).
    pub n_test: usize,
    /// Number of motifs every class places (the shared vocabulary).
    pub n_motifs: usize,
    /// Length of each motif in features.
    pub motif_len: usize,
    /// Maximum per-sample positional jitter of each motif.
    pub placement_jitter: usize,
    /// Additive noise standard deviation.
    pub noise: f64,
}

impl Default for SpatialSpec {
    fn default() -> Self {
        SpatialSpec {
            n_features: 64,
            n_classes: 10,
            n_train: 400,
            n_test: 150,
            n_motifs: 4,
            motif_len: 5,
            placement_jitter: 1,
            noise: 0.3,
        }
    }
}

/// Generates a spatial dataset.
///
/// # Panics
///
/// Panics if the spec is inconsistent (motifs cannot fit, zero classes, ...).
pub fn generate_spatial(name: &'static str, spec: SpatialSpec, seed: u64) -> Dataset {
    assert!(spec.n_classes >= 2 && spec.n_features >= 1);
    assert!(spec.motif_len >= 1 && spec.n_motifs >= 1);
    assert!(
        spec.n_motifs * (spec.motif_len + 2 * spec.placement_jitter) <= spec.n_features,
        "motifs do not fit in the feature vector"
    );
    let mut rng = StdRng::seed_from_u64(seed);

    // Shared motif vocabulary: smooth bumps with distinct shapes.
    let motifs: Vec<Vec<f64>> = (0..spec.n_motifs)
        .map(|_| {
            (0..spec.motif_len)
                .map(|_| normal_with(&mut rng, 0.0, 1.0) + 2.0)
                .collect()
        })
        .collect();

    // Class-specific placements: a random non-overlapping layout of the
    // SAME motifs for each class.
    let placements: Vec<Vec<usize>> = (0..spec.n_classes)
        .map(|_| {
            non_overlapping_positions(
                &mut rng,
                spec.n_features,
                spec.n_motifs,
                spec.motif_len + 2 * spec.placement_jitter,
            )
        })
        .collect();

    let sample = |rng: &mut StdRng, class: usize| -> Vec<f64> {
        let mut row: Vec<f64> = (0..spec.n_features)
            .map(|_| normal_with(rng, 0.0, spec.noise))
            .collect();
        for (m, &base) in placements[class].iter().enumerate() {
            let jitter = if spec.placement_jitter > 0 {
                rng.random_range(0..=2 * spec.placement_jitter)
            } else {
                0
            };
            let start = base + jitter;
            for (k, &v) in motifs[m].iter().enumerate() {
                row[start + k] += v;
            }
        }
        row
    };

    let make_split = |rng: &mut StdRng, n: usize| -> Split {
        let mut features = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = if i < spec.n_classes {
                i
            } else {
                rng.random_range(0..spec.n_classes)
            };
            features.push(sample(rng, class));
            labels.push(class);
        }
        Split { features, labels }
    };

    let train = make_split(&mut rng, spec.n_train);
    let test = make_split(&mut rng, spec.n_test);
    let ds = Dataset {
        name,
        train,
        test,
        n_classes: spec.n_classes,
        n_features: spec.n_features,
    };
    ds.validate();
    ds
}

/// Picks `count` starts for blocks of `block_len` features such that no two
/// blocks overlap.
pub(crate) fn non_overlapping_positions(
    rng: &mut StdRng,
    n_features: usize,
    count: usize,
    block_len: usize,
) -> Vec<usize> {
    // Partition the vector into equal slots and place one block at a random
    // offset inside each chosen slot — simple and guaranteed collision-free.
    let slot = n_features / count;
    assert!(slot >= block_len, "blocks do not fit");
    let mut slots: Vec<usize> = (0..count).collect();
    // Shuffle which motif goes to which slot.
    for i in (1..slots.len()).rev() {
        let j = rng.random_range(0..=i);
        slots.swap(i, j);
    }
    let mut positions = vec![0usize; count];
    for (m, &s) in slots.iter().enumerate() {
        let offset = rng.random_range(0..=slot - block_len);
        positions[m] = s * slot + offset;
    }
    positions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_consistent() {
        let ds = generate_spatial("toy", SpatialSpec::default(), 1);
        assert_eq!(ds.train.len(), 400);
        assert_eq!(ds.n_classes, 10);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate_spatial("toy", SpatialSpec::default(), 3);
        let b = generate_spatial("toy", SpatialSpec::default(), 3);
        assert_eq!(a, b);
    }

    #[test]
    fn placements_never_overlap() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let pos = non_overlapping_positions(&mut rng, 64, 4, 7);
            let mut sorted = pos.clone();
            sorted.sort_unstable();
            for w in sorted.windows(2) {
                assert!(w[1] >= w[0] + 7, "overlap: {sorted:?}");
            }
            assert!(sorted.iter().all(|&p| p + 7 <= 64));
        }
    }

    #[test]
    fn different_classes_have_different_energy_profiles() {
        let ds = generate_spatial("toy", SpatialSpec::default(), 4);
        // Mean feature profile of class 0 vs class 1 must differ markedly
        // somewhere (motifs sit at different places).
        let mut profile = vec![vec![0.0f64; ds.n_features]; 2];
        let mut counts = [0usize; 2];
        for (row, &l) in ds.train.features.iter().zip(&ds.train.labels) {
            if l < 2 {
                counts[l] += 1;
                for (j, &v) in row.iter().enumerate() {
                    profile[l][j] += v;
                }
            }
        }
        let max_diff = (0..ds.n_features)
            .map(|j| (profile[0][j] / counts[0] as f64 - profile[1][j] / counts[1] as f64).abs())
            .fold(0.0f64, f64::max);
        assert!(max_diff > 1.0, "max profile difference = {max_diff}");
    }
}
