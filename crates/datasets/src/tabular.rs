//! Tabular (order-free) dataset generator — the CARDIO/PAGE stand-ins.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::data::{Dataset, Split};
use crate::rand_util::normal_with;

/// Parameters of a tabular (Gaussian-blob) dataset.
///
/// Each class has a per-feature mean drawn from `N(0, class_sep²)`; samples
/// add `N(0, noise²)`. There is no ordering structure at all, so every
/// encoding family can in principle solve it — accuracy is governed purely
/// by `class_sep / noise`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TabularSpec {
    /// Features per sample.
    pub n_features: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Training samples (total, spread evenly over classes).
    pub n_train: usize,
    /// Test samples (total).
    pub n_test: usize,
    /// Standard deviation of class means.
    pub class_sep: f64,
    /// Per-sample noise standard deviation.
    pub noise: f64,
    /// Fraction of features that are pure noise (carry no class signal).
    pub nuisance_fraction: f64,
}

impl Default for TabularSpec {
    fn default() -> Self {
        TabularSpec {
            n_features: 20,
            n_classes: 3,
            n_train: 300,
            n_test: 120,
            class_sep: 1.0,
            noise: 1.0,
            nuisance_fraction: 0.3,
        }
    }
}

/// Generates a tabular dataset.
///
/// # Panics
///
/// Panics if the spec has zero classes, features, or samples.
pub fn generate_tabular(name: &'static str, spec: TabularSpec, seed: u64) -> Dataset {
    assert!(spec.n_classes >= 2 && spec.n_features >= 1);
    assert!(spec.n_train >= spec.n_classes && spec.n_test >= 1);
    let mut rng = StdRng::seed_from_u64(seed);

    let n_nuisance = ((spec.n_features as f64) * spec.nuisance_fraction) as usize;
    let means: Vec<Vec<f64>> = (0..spec.n_classes)
        .map(|_| {
            (0..spec.n_features)
                .map(|j| {
                    if j < spec.n_features - n_nuisance {
                        normal_with(&mut rng, 0.0, spec.class_sep)
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();

    let sample = |rng: &mut StdRng, class: usize| -> Vec<f64> {
        means[class]
            .iter()
            .map(|&m| normal_with(rng, m, spec.noise))
            .collect()
    };

    let make_split = |rng: &mut StdRng, n: usize| -> Split {
        let mut features = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = if i < spec.n_classes {
                i // guarantee coverage
            } else {
                rng.random_range(0..spec.n_classes)
            };
            features.push(sample(rng, class));
            labels.push(class);
        }
        Split { features, labels }
    };

    let train = make_split(&mut rng, spec.n_train);
    let test = make_split(&mut rng, spec.n_test);
    let ds = Dataset {
        name,
        train,
        test,
        n_classes: spec.n_classes,
        n_features: spec.n_features,
    };
    ds.validate();
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_consistent() {
        let ds = generate_tabular("toy", TabularSpec::default(), 1);
        assert_eq!(ds.train.len(), 300);
        assert_eq!(ds.test.len(), 120);
        assert_eq!(ds.n_features, 20);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate_tabular("toy", TabularSpec::default(), 7);
        let b = generate_tabular("toy", TabularSpec::default(), 7);
        assert_eq!(a, b);
        let c = generate_tabular("toy", TabularSpec::default(), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn classes_are_linearly_separable_when_far() {
        let spec = TabularSpec {
            class_sep: 5.0,
            noise: 0.2,
            n_classes: 2,
            nuisance_fraction: 0.0,
            ..TabularSpec::default()
        };
        let ds = generate_tabular("far", spec, 2);
        // Nearest-class-mean classifier should be perfect.
        let mut means = vec![vec![0.0; ds.n_features]; 2];
        let mut counts = [0usize; 2];
        for (row, &l) in ds.train.features.iter().zip(&ds.train.labels) {
            counts[l] += 1;
            for (j, &v) in row.iter().enumerate() {
                means[l][j] += v;
            }
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c as f64;
            }
        }
        let correct = ds
            .test
            .features
            .iter()
            .zip(&ds.test.labels)
            .filter(|(row, &l)| {
                let d: Vec<f64> = means
                    .iter()
                    .map(|m| {
                        row.iter()
                            .zip(m.iter())
                            .map(|(a, b)| (a - b).powi(2))
                            .sum::<f64>()
                    })
                    .collect();
                let pred = if d[0] < d[1] { 0 } else { 1 };
                pred == l
            })
            .count();
        assert_eq!(correct, ds.test.len());
    }
}
