//! The eleven Table 1 benchmarks as named, pre-parameterized generators.
//!
//! Feature/class counts follow the originals where practical; sample counts
//! are scaled down to keep the full evaluation harness fast on a laptop
//! (the *relative* difficulty and structure are what matter for the
//! reproduction, see DESIGN.md §2).

use crate::data::Dataset;
use crate::sequence::{generate_sequence, SequenceSpec};
use crate::spatial::{generate_spatial, SpatialSpec};
use crate::tabular::{generate_tabular, TabularSpec};
use crate::temporal::{generate_temporal, TemporalSpec};

/// The classification benchmarks of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Benchmark {
    /// Cardiotocography (fetal state, tabular clinical features).
    Cardio,
    /// DNA splice-junction recognition (base sequences, easy).
    Dna,
    /// Seizure detection from skull-surface EEG (time-series).
    Eeg,
    /// Hand-gesture recognition from EMG (time-series).
    Emg,
    /// Face detection (image patches).
    Face,
    /// ISOLET spoken-letter recognition (speech spectral features).
    Isolet,
    /// Language identification from text (character sequences).
    Lang,
    /// MNIST handwritten digits (images).
    Mnist,
    /// Page-blocks layout classification (tabular document features).
    Page,
    /// PAMAP2 physical-activity monitoring (wearable motion sensors).
    Pamap2,
    /// UCI human-activity recognition (smartphone inertial data).
    Ucihar,
}

impl Benchmark {
    /// All benchmarks in the row order of Table 1.
    pub const ALL: [Benchmark; 11] = [
        Benchmark::Cardio,
        Benchmark::Dna,
        Benchmark::Eeg,
        Benchmark::Emg,
        Benchmark::Face,
        Benchmark::Isolet,
        Benchmark::Lang,
        Benchmark::Mnist,
        Benchmark::Page,
        Benchmark::Pamap2,
        Benchmark::Ucihar,
    ];

    /// The Table 1 row label.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Cardio => "CARDIO",
            Benchmark::Dna => "DNA",
            Benchmark::Eeg => "EEG",
            Benchmark::Emg => "EMG",
            Benchmark::Face => "FACE",
            Benchmark::Isolet => "ISOLET",
            Benchmark::Lang => "LANG",
            Benchmark::Mnist => "MNIST",
            Benchmark::Page => "PAGE",
            Benchmark::Pamap2 => "PAMAP2",
            Benchmark::Ucihar => "UCIHAR",
        }
    }

    /// Generates the benchmark deterministically from `seed`.
    pub fn load(self, seed: u64) -> Dataset {
        // Mix the benchmark identity into the seed so "same seed, different
        // dataset" never aliases.
        let seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (self as u64) << 32;
        match self {
            Benchmark::Cardio => generate_tabular(
                self.name(),
                TabularSpec {
                    n_features: 21,
                    n_classes: 3,
                    n_train: 400,
                    n_test: 160,
                    class_sep: 1.2,
                    noise: 1.0,
                    nuisance_fraction: 0.35,
                },
                seed,
            ),
            Benchmark::Page => generate_tabular(
                self.name(),
                TabularSpec {
                    n_features: 10,
                    n_classes: 5,
                    n_train: 400,
                    n_test: 160,
                    class_sep: 1.6,
                    noise: 1.0,
                    nuisance_fraction: 0.2,
                },
                seed,
            ),
            Benchmark::Dna => generate_sequence(
                self.name(),
                SequenceSpec {
                    n_features: 60,
                    n_classes: 3,
                    n_train: 400,
                    n_test: 160,
                    alphabet: 4,
                    signatures_per_class: 3,
                    signatures_per_sample: 8,
                    marginal_bias: 0.7,
                },
                seed,
            ),
            Benchmark::Lang => generate_sequence(
                self.name(),
                SequenceSpec {
                    n_features: 64,
                    n_classes: 12,
                    n_train: 480,
                    n_test: 180,
                    alphabet: 16,
                    signatures_per_class: 5,
                    signatures_per_sample: 9,
                    marginal_bias: 0.6,
                },
                seed,
            ),
            Benchmark::Eeg => generate_temporal(
                self.name(),
                TemporalSpec {
                    n_features: 64,
                    n_classes: 2,
                    n_train: 400,
                    n_test: 160,
                    motif_len: 6,
                    motifs_per_sample: 4,
                    motif_amplitude: 1.7,
                    // Kept low: with only two classes a stronger bias
                    // profile can hand random projection a positional
                    // shortcut the paper says EEG must not have (§3.2).
                    positional_bias: 0.05,
                    noise: 0.9,
                    imbalance: 3.0,
                },
                seed,
            ),
            Benchmark::Emg => generate_temporal(
                self.name(),
                TemporalSpec {
                    n_features: 64,
                    n_classes: 5,
                    n_train: 450,
                    n_test: 160,
                    motif_len: 7,
                    motifs_per_sample: 3,
                    motif_amplitude: 1.8,
                    positional_bias: 0.4,
                    noise: 0.85,
                    imbalance: 1.0,
                },
                seed,
            ),
            Benchmark::Pamap2 => generate_temporal(
                self.name(),
                TemporalSpec {
                    n_features: 54,
                    n_classes: 8,
                    n_train: 480,
                    n_test: 180,
                    motif_len: 6,
                    motifs_per_sample: 3,
                    motif_amplitude: 1.8,
                    positional_bias: 0.5,
                    noise: 0.85,
                    imbalance: 1.0,
                },
                seed,
            ),
            Benchmark::Ucihar => generate_temporal(
                self.name(),
                TemporalSpec {
                    n_features: 64,
                    n_classes: 6,
                    n_train: 450,
                    n_test: 160,
                    motif_len: 6,
                    motifs_per_sample: 3,
                    motif_amplitude: 1.8,
                    positional_bias: 0.6,
                    noise: 0.85,
                    imbalance: 1.0,
                },
                seed,
            ),
            Benchmark::Mnist => generate_spatial(
                self.name(),
                SpatialSpec {
                    n_features: 64,
                    n_classes: 10,
                    n_train: 500,
                    n_test: 180,
                    n_motifs: 4,
                    motif_len: 5,
                    placement_jitter: 2,
                    noise: 0.6,
                },
                seed,
            ),
            Benchmark::Face => generate_spatial(
                self.name(),
                SpatialSpec {
                    n_features: 64,
                    n_classes: 2,
                    n_train: 400,
                    n_test: 160,
                    n_motifs: 4,
                    motif_len: 5,
                    placement_jitter: 2,
                    noise: 0.85,
                },
                seed,
            ),
            Benchmark::Isolet => generate_spatial(
                self.name(),
                SpatialSpec {
                    n_features: 64,
                    n_classes: 13,
                    n_train: 520,
                    n_test: 195,
                    n_motifs: 4,
                    motif_len: 5,
                    placement_jitter: 2,
                    noise: 0.8,
                },
                seed,
            ),
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_load_and_validate() {
        for b in Benchmark::ALL {
            let ds = b.load(1);
            ds.validate();
            assert_eq!(ds.name, b.name());
        }
    }

    #[test]
    fn benchmarks_are_deterministic() {
        for b in [Benchmark::Eeg, Benchmark::Lang, Benchmark::Mnist] {
            assert_eq!(b.load(9), b.load(9));
        }
    }

    #[test]
    fn different_benchmarks_do_not_alias() {
        // EEG and EMG are both temporal but must differ under one seed.
        let a = Benchmark::Eeg.load(3);
        let b = Benchmark::Emg.load(3);
        assert_ne!(a.train.features[0], b.train.features[0]);
    }
}
