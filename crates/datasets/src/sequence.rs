//! Categorical-sequence dataset generator — the LANG/DNA stand-ins.
//!
//! Samples are streams of symbols (character/base codes). A class is a
//! "language": a set of signature trigrams inserted at arbitrary offsets,
//! plus an optionally biased symbol marginal (letter-frequency profile).
//! Subsequence content — not position — carries the class, so n-gram style
//! encodings (ngram, GENERIC) excel while strict-order (permutation) and
//! value-linear (RP) encodings fail, matching LANG in Table 1.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::data::{Dataset, Split};

/// Parameters of a categorical-sequence dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequenceSpec {
    /// Sequence length (features per sample).
    pub n_features: usize,
    /// Number of classes ("languages").
    pub n_classes: usize,
    /// Training samples (total).
    pub n_train: usize,
    /// Test samples (total).
    pub n_test: usize,
    /// Alphabet size.
    pub alphabet: usize,
    /// Signature trigrams per class.
    pub signatures_per_class: usize,
    /// Signature trigram instances inserted per sample.
    pub signatures_per_sample: usize,
    /// Interpolation between a uniform symbol marginal (0.0) and a
    /// class-specific skewed marginal (1.0) for the background symbols.
    pub marginal_bias: f64,
}

impl Default for SequenceSpec {
    fn default() -> Self {
        SequenceSpec {
            n_features: 64,
            n_classes: 8,
            n_train: 400,
            n_test: 150,
            alphabet: 12,
            signatures_per_class: 4,
            signatures_per_sample: 5,
            marginal_bias: 0.35,
        }
    }
}

/// Generates a categorical-sequence dataset. Symbols are exposed as `f64`
/// feature values `0.0..alphabet` so the common encoder interface applies.
///
/// # Panics
///
/// Panics if the spec is inconsistent (signatures cannot fit, tiny
/// alphabet, ...).
pub fn generate_sequence(name: &'static str, spec: SequenceSpec, seed: u64) -> Dataset {
    assert!(spec.n_classes >= 2 && spec.alphabet >= 4);
    assert!(spec.n_features >= 3, "sequences must fit a trigram");
    assert!(
        spec.signatures_per_sample * 3 <= spec.n_features,
        "signature trigrams do not fit"
    );
    let mut rng = StdRng::seed_from_u64(seed);

    // Class signature trigrams, distinct across classes.
    let mut used: std::collections::HashSet<[usize; 3]> = std::collections::HashSet::new();
    let signatures: Vec<Vec<[usize; 3]>> = (0..spec.n_classes)
        .map(|_| {
            let mut sigs = Vec::with_capacity(spec.signatures_per_class);
            while sigs.len() < spec.signatures_per_class {
                let t = [
                    rng.random_range(0..spec.alphabet),
                    rng.random_range(0..spec.alphabet),
                    rng.random_range(0..spec.alphabet),
                ];
                if used.insert(t) {
                    sigs.push(t);
                }
            }
            sigs
        })
        .collect();

    // Class symbol marginals: skewed random distributions mixed with
    // uniform according to `marginal_bias`.
    let marginals: Vec<Vec<f64>> = (0..spec.n_classes)
        .map(|_| {
            let raw: Vec<f64> = (0..spec.alphabet)
                .map(|_| rng.random_range(0.1f64..1.0))
                .collect();
            let sum: f64 = raw.iter().sum();
            raw.iter()
                .map(|v| {
                    spec.marginal_bias * (v / sum)
                        + (1.0 - spec.marginal_bias) / spec.alphabet as f64
                })
                .collect()
        })
        .collect();

    let sample = |rng: &mut StdRng, class: usize| -> Vec<f64> {
        let mut symbols: Vec<usize> = (0..spec.n_features)
            .map(|_| sample_categorical(rng, &marginals[class]))
            .collect();
        // Insert signature trigrams at non-overlapping random offsets.
        let positions = crate::spatial::non_overlapping_positions(
            rng,
            spec.n_features,
            spec.signatures_per_sample,
            3,
        );
        for &start in &positions {
            let sig = signatures[class][rng.random_range(0..signatures[class].len())];
            symbols[start] = sig[0];
            symbols[start + 1] = sig[1];
            symbols[start + 2] = sig[2];
        }
        symbols.iter().map(|&s| s as f64).collect()
    };

    let make_split = |rng: &mut StdRng, n: usize| -> Split {
        let mut features = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = if i < spec.n_classes {
                i
            } else {
                rng.random_range(0..spec.n_classes)
            };
            features.push(sample(rng, class));
            labels.push(class);
        }
        Split { features, labels }
    };

    let train = make_split(&mut rng, spec.n_train);
    let test = make_split(&mut rng, spec.n_test);
    let ds = Dataset {
        name,
        train,
        test,
        n_classes: spec.n_classes,
        n_features: spec.n_features,
    };
    ds.validate();
    ds
}

fn sample_categorical(rng: &mut StdRng, probs: &[f64]) -> usize {
    let mut t: f64 = rng.random_range(0.0..1.0);
    for (i, &p) in probs.iter().enumerate() {
        if t < p {
            return i;
        }
        t -= p;
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_consistent() {
        let ds = generate_sequence("toy", SequenceSpec::default(), 1);
        ds.validate();
        assert_eq!(ds.n_classes, 8);
    }

    #[test]
    fn symbols_are_integral_and_in_alphabet() {
        let spec = SequenceSpec::default();
        let ds = generate_sequence("toy", spec, 2);
        for row in ds.train.features.iter().chain(&ds.test.features) {
            for &v in row {
                assert_eq!(v, v.floor());
                assert!(v >= 0.0 && v < spec.alphabet as f64);
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate_sequence("toy", SequenceSpec::default(), 3);
        let b = generate_sequence("toy", SequenceSpec::default(), 3);
        assert_eq!(a, b);
    }

    #[test]
    fn signature_trigrams_separate_classes() {
        // Count class-0 vs class-1 trigram overlap: the signature design
        // guarantees each class plants trigrams no other class plants.
        let spec = SequenceSpec {
            marginal_bias: 0.0,
            ..SequenceSpec::default()
        };
        let ds = generate_sequence("toy", spec, 4);
        let trigrams = |rows: Vec<&Vec<f64>>| -> std::collections::HashMap<[usize; 3], usize> {
            let mut map = std::collections::HashMap::new();
            for row in rows {
                for w in row.windows(3) {
                    let key = [w[0] as usize, w[1] as usize, w[2] as usize];
                    *map.entry(key).or_insert(0) += 1;
                }
            }
            map
        };
        let class_rows = |c: usize| -> Vec<&Vec<f64>> {
            ds.train
                .features
                .iter()
                .zip(&ds.train.labels)
                .filter(|&(_, &l)| l == c)
                .map(|(r, _)| r)
                .collect()
        };
        let t0 = trigrams(class_rows(0));
        let t1 = trigrams(class_rows(1));
        // The most frequent trigram of class 0 should be much rarer in
        // class 1 (it is a planted signature).
        let (top0, &count0) = t0.iter().max_by_key(|(_, &c)| c).unwrap();
        let count_in_1 = t1.get(top0).copied().unwrap_or(0);
        assert!(
            count0 >= 3 * (count_in_1 + 1),
            "top trigram of class 0 appears {count0}x there but {count_in_1}x in class 1"
        );
    }
}
