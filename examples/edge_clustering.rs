//! Edge clustering: unsupervised learning on the accelerator (§4.2.3) —
//! cluster sensor data without labels and compare against K-means, both in
//! quality (NMI) and in simulated on-device energy.
//!
//! Run with: `cargo run -p generic-bench --release --example edge_clustering`

use generic_datasets::ClusteringBenchmark;
use generic_hdc::metrics::normalized_mutual_information;
use generic_ml::{KMeans, KMeansSpec};
use generic_sim::{Accelerator, AcceleratorConfig, EnergyOptions};

fn main() {
    for benchmark in [ClusteringBenchmark::Hepta, ClusteringBenchmark::Iris] {
        let ds = benchmark.load(42);
        println!(
            "{}: {} points, {} features, k = {}",
            benchmark,
            ds.len(),
            ds.n_features(),
            ds.k
        );

        // K-means reference (software).
        let (_, kmeans) = KMeans::fit(&ds.points, KMeansSpec::new(ds.k).with_seed(42))
            .expect("well-formed points");
        let kmeans_nmi =
            normalized_mutual_information(&kmeans.assignments, &ds.labels).expect("equal lengths");

        // HDC clustering on the simulated accelerator.
        let config = AcceleratorConfig::new(4096, ds.n_features(), ds.k.max(2))
            .with_window(3.min(ds.n_features()))
            .with_seed(42);
        let mut acc = Accelerator::new(config, &ds.points).expect("fits the architecture");
        let outcome = acc.cluster(&ds.points, ds.k, 10).expect("k <= n");
        let hdc_nmi =
            normalized_mutual_information(&outcome.assignments, &ds.labels).expect("equal lengths");

        let report = acc.energy_report(&EnergyOptions::default());
        let per_input_uj = report.total_energy_uj / (ds.len() * outcome.epochs_run) as f64;
        println!("  K-means NMI: {kmeans_nmi:.3}");
        println!(
            "  HDC NMI:     {hdc_nmi:.3}  ({} epochs, converged: {})",
            outcome.epochs_run, outcome.converged
        );
        println!(
            "  on-device cost: {:.1} nJ and {:.2} us per input per epoch\n",
            per_input_uj * 1e3,
            report.duration_s / (ds.len() * outcome.epochs_run) as f64 * 1e6
        );
    }
}
