//! Seizure monitor: the paper's motivating wearable scenario — detect
//! seizures from skull-surface EEG under a year-long battery budget.
//!
//! Shows the full energy-reduction toolbox on a time-series workload:
//! dimension reduction with updated sub-norms (§4.3.3), model
//! quantization, and the accuracy cost of voltage-over-scaling bit errors
//! (§4.3.4).
//!
//! Run with: `cargo run -p generic-bench --release --example seizure_monitor`

use generic_bench::runners::{DEFAULT_DIM, DEFAULT_EPOCHS};
use generic_bench::train_hdc;
use generic_datasets::Benchmark;
use generic_hdc::encoding::EncodingKind;
use generic_hdc::{NormMode, PredictOptions, QuantizedModel};
use generic_sim::VosOperatingPoint;

fn main() {
    let dataset = Benchmark::Eeg.load(42);
    println!(
        "EEG seizure detection: {} train / {} test windows, {} samples each\n",
        dataset.train.len(),
        dataset.test.len(),
        dataset.n_features
    );

    let run = train_hdc(
        EncodingKind::Generic,
        &dataset,
        DEFAULT_DIM,
        DEFAULT_EPOCHS,
        42,
    );
    let full = run.test_accuracy(&dataset);
    println!(
        "full model (D = {DEFAULT_DIM}, 16-bit): {:.1}% accuracy",
        100.0 * full
    );

    // On-demand dimension reduction: trade energy for accuracy at runtime.
    println!("\ndimension reduction (energy scales ~linearly with D):");
    for dims in [1024usize, 2048, 4096] {
        let acc = run.model.accuracy_with(
            &run.test_encoded,
            &dataset.test.labels,
            PredictOptions::reduced(dims, NormMode::Updated),
        );
        println!(
            "  D = {dims}: {:.1}% accuracy (~{:.1}x energy saving)",
            100.0 * acc,
            4096.0 / dims as f64
        );
    }

    // Quantization + voltage over-scaling: narrow models shrug off the
    // bit errors that let the class memories run below nominal voltage.
    println!("\nquantized model under voltage over-scaling:");
    for bw in [8u8, 4, 1] {
        for ber in [0.0f64, 0.02, 0.05] {
            let mut q = QuantizedModel::from_model(&run.model, bw).expect("valid bit width");
            q.inject_bit_flips(ber, 7).expect("valid probability");
            let acc = q.accuracy(&run.test_encoded, &dataset.test.labels);
            let point = VosOperatingPoint::at_bit_error_rate(ber);
            let (s_red, _) = point.power_reduction();
            println!(
                "  {bw}-bit at {:>4.1}% BER (V = {:.0}%): {:.1}% accuracy, {:.1}x static power saving",
                100.0 * ber,
                100.0 * point.voltage_scale,
                100.0 * acc,
                s_red
            );
        }
    }
}
