//! Quickstart: train an HDC classifier with the GENERIC encoding and run
//! inference — the whole pipeline in ~40 lines.
//!
//! Run with: `cargo run -p generic-bench --release --example quickstart`

use generic_hdc::encoding::{Encoder, GenericEncoder, GenericEncoderSpec};
use generic_hdc::HdcModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A toy 3-class problem over 16 features: each class concentrates its
    // energy in a different band.
    let mut train: Vec<Vec<f64>> = Vec::new();
    let mut labels: Vec<usize> = Vec::new();
    for i in 0..120 {
        let class = i % 3;
        let row: Vec<f64> = (0..16)
            .map(|j| {
                let band = j / 6; // 0, 1, or 2
                let base = if band == class { 8.0 } else { 1.0 };
                base + ((i * 7 + j * 3) % 5) as f64 * 0.3
            })
            .collect();
        train.push(row);
        labels.push(class);
    }

    // 1. Build the encoder: D = 4096 dimensions over 16 features, window
    //    n = 3, per-window id binding, quantizer fitted to the data.
    let spec = GenericEncoderSpec::new(4096, 16).with_seed(42);
    let encoder = GenericEncoder::from_data(spec, &train)?;

    // 2. Encode and train: single-pass bundling + retraining epochs.
    let encoded = encoder.encode_batch(&train)?;
    let mut model = HdcModel::fit(&encoded, &labels, 3)?;
    let history = model.retrain(&encoded, &labels, 10)?;
    println!("retraining errors per epoch: {history:?}");

    // 3. Inference on fresh samples.
    for class in 0..3 {
        let query: Vec<f64> = (0..16)
            .map(|j| if j / 6 == class { 8.2 } else { 1.1 })
            .collect();
        let hv = encoder.encode(&query)?;
        let scores = model.scores(&hv);
        println!(
            "query for class {class}: predicted {} (scores: {:.3?})",
            model.predict(&hv),
            scores
        );
        assert_eq!(model.predict(&hv), class);
    }

    println!(
        "train accuracy: {:.1}%",
        100.0 * model.accuracy(&encoded, &labels)
    );
    Ok(())
}
