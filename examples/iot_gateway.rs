//! IoT gateway: the paper's deployment target — a battery-powered hub
//! that trains on-device and serves burst inference (§1: "fast enough
//! during training and burst inference, e.g., when it serves as an IoT
//! gateway").
//!
//! Drives the accelerator *simulator* end to end: on-device training,
//! burst inference, the power-gating benefit, and a year-long battery
//! estimate.
//!
//! Run with: `cargo run -p generic-bench --release --example iot_gateway`

use generic_datasets::Benchmark;
use generic_sim::{Accelerator, AcceleratorConfig, EnergyOptions};

fn main() {
    // A wearable-activity workload (UCIHAR shape).
    let dataset = Benchmark::Ucihar.load(42);
    let config = AcceleratorConfig::new(4096, dataset.n_features, dataset.n_classes).with_seed(42);
    let mut acc =
        Accelerator::new(config, &dataset.train.features).expect("benchmark fits the architecture");

    // --- on-device training ---
    let outcome = acc
        .train(&dataset.train.features, &dataset.train.labels, 20)
        .expect("well-formed dataset");
    let train_report = acc.energy_report(&EnergyOptions::default());
    println!(
        "on-device training: {} epochs, final epoch errors {}",
        outcome.epoch_errors.len(),
        outcome.epoch_errors.last().copied().unwrap_or(0)
    );
    println!(
        "  {:.2} ms, {:.2} uJ total ({:.2} mW average power)",
        train_report.duration_s * 1e3,
        train_report.total_energy_uj,
        train_report.total_power_mw()
    );

    // --- burst inference ---
    acc.reset_activity();
    let mut correct = 0;
    for (x, &y) in dataset.test.features.iter().zip(&dataset.test.labels) {
        if acc.infer(x).expect("model trained").prediction == y {
            correct += 1;
        }
    }
    let burst = acc.energy_report(&EnergyOptions::default());
    let n = dataset.test.len() as f64;
    println!(
        "\nburst inference over {} inputs: {:.1}% accuracy",
        dataset.test.len(),
        100.0 * correct as f64 / n
    );
    println!(
        "  {:.1} us and {:.1} nJ per input ({:.0} inferences/s)",
        burst.duration_s / n * 1e6,
        burst.total_energy_uj / n * 1e3,
        n / burst.duration_s
    );

    // --- application-opportunistic power gating (§4.3.2) ---
    let gated = acc.energy_report(&EnergyOptions::default()).static_power_mw;
    let ungated = acc
        .energy_report(&EnergyOptions {
            power_gating: false,
            vos: None,
        })
        .static_power_mw;
    println!(
        "\npower gating: static power {:.3} mW gated vs {:.3} mW ungated ({:.0}% saving)",
        gated,
        ungated,
        100.0 * (1.0 - gated / ungated)
    );

    // --- battery-life estimate ---
    // A CR123A-class cell holds ~4.5 Wh. Duty cycle: 1 inference/second.
    let idle_w = gated * 1e-3;
    let per_inference_j = burst.total_energy_uj / n * 1e-6;
    let daily_j = idle_w * 86_400.0 + per_inference_j * 86_400.0;
    let battery_wh = 4.5;
    let days = battery_wh * 3600.0 / daily_j;
    println!(
        "\nat 1 inference/s on a 4.5 Wh cell: ~{days:.0} days of operation \
         (year-long battery operation, as §1 targets)"
    );
}
