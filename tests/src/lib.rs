//! Integration-test host crate for the GENERIC reproduction workspace.
//!
//! This crate contains no library code; the cross-crate integration tests
//! live under `tests/tests/`.
