//! Property-based tests for HDC clustering and the evaluation metrics:
//! NMI symmetry and permutation invariance, range clamping, degenerate
//! labelings, and the clustering engine's documented edge behaviors
//! (single cluster, empty clusters, invalid k).

use generic_hdc::metrics::{accuracy, confusion_matrix, normalized_mutual_information};
use generic_hdc::{HdcClustering, HdcClusteringSpec, IntHv};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const EPS: f64 = 1e-9;

/// A labeling: values in a small alphabet so clusters actually repeat.
fn arb_labels() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..4, 1..40)
}

/// Applies a value-level relabeling (label `v` becomes `perm[v]`).
fn relabel(labels: &[usize], perm: &[usize; 4]) -> Vec<usize> {
    labels.iter().map(|&v| perm[v]).collect()
}

/// Seeded random hypervectors for clustering inputs.
fn random_hvs(n: usize, dim: usize, seed: u64) -> Vec<IntHv> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let values: Vec<i32> = (0..dim).map(|_| rng.random_range(-5i32..=5)).collect();
            IntHv::from_values(values).expect("non-empty")
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// NMI is symmetric in its arguments.
    #[test]
    fn nmi_is_symmetric(a in arb_labels(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let b: Vec<usize> = a.iter().map(|_| rng.random_range(0..4usize)).collect();
        let ab = normalized_mutual_information(&a, &b).unwrap();
        let ba = normalized_mutual_information(&b, &a).unwrap();
        prop_assert!((ab - ba).abs() < EPS, "nmi(a,b)={ab} nmi(b,a)={ba}");
    }

    /// NMI only depends on the partition, not on which integers name the
    /// clusters: relabeling either side through a permutation of the
    /// label alphabet leaves it unchanged.
    #[test]
    fn nmi_is_permutation_invariant(a in arb_labels(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let b: Vec<usize> = a.iter().map(|_| rng.random_range(0..4usize)).collect();
        // Fisher–Yates over the 4-symbol alphabet.
        let mut perm = [0usize, 1, 2, 3];
        for i in (1..4).rev() {
            perm.swap(i, rng.random_range(0..=i));
        }
        let base = normalized_mutual_information(&a, &b).unwrap();
        let relabeled_b = normalized_mutual_information(&a, &relabel(&b, &perm)).unwrap();
        let relabeled_a = normalized_mutual_information(&relabel(&a, &perm), &b).unwrap();
        prop_assert!((base - relabeled_b).abs() < EPS);
        prop_assert!((base - relabeled_a).abs() < EPS);
    }

    /// NMI is clamped to [0, 1], and a labeling carries full information
    /// about itself.
    #[test]
    fn nmi_range_and_self_information(a in arb_labels(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let b: Vec<usize> = a.iter().map(|_| rng.random_range(0..4usize)).collect();
        let nmi = normalized_mutual_information(&a, &b).unwrap();
        prop_assert!((0.0..=1.0).contains(&nmi), "nmi={nmi}");
        let self_nmi = normalized_mutual_information(&a, &a).unwrap();
        prop_assert!((self_nmi - 1.0).abs() < EPS, "nmi(a,a)={self_nmi}");
    }

    /// Accuracy is a [0, 1] fraction, exact on self-comparison, and the
    /// confusion matrix accounts for every sample.
    #[test]
    fn accuracy_and_confusion_agree(labels in arb_labels(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let predictions: Vec<usize> =
            labels.iter().map(|_| rng.random_range(0..4usize)).collect();
        let acc = accuracy(&predictions, &labels).unwrap();
        prop_assert!((0.0..=1.0).contains(&acc));
        prop_assert!((accuracy(&labels, &labels).unwrap() - 1.0).abs() < EPS);

        let matrix = confusion_matrix(&predictions, &labels, 4).unwrap();
        let total: usize = matrix.iter().flatten().sum();
        prop_assert_eq!(total, labels.len());
        let diagonal: usize = (0..4).map(|c| matrix[c][c]).sum();
        prop_assert!((acc - diagonal as f64 / labels.len() as f64).abs() < EPS);
    }

    /// Clustering assignments always index a valid cluster, every epoch
    /// count respects the cap, and refitting is deterministic.
    #[test]
    fn clustering_is_valid_and_deterministic(
        seed in any::<u64>(),
        k in 1usize..5,
        extra in 0usize..20,
    ) {
        let n = k + extra;
        let encoded = random_hvs(n, 64, seed);
        let spec = HdcClusteringSpec::new(k).with_max_epochs(10);
        let (model, outcome) = HdcClustering::fit(&encoded, spec).unwrap();
        prop_assert_eq!(model.k(), k);
        prop_assert_eq!(outcome.assignments.len(), n);
        prop_assert!(outcome.assignments.iter().all(|&c| c < k));

        let spec = HdcClusteringSpec::new(k).with_max_epochs(10);
        let (_, again) = HdcClustering::fit(&encoded, spec).unwrap();
        prop_assert_eq!(outcome.assignments, again.assignments);
    }

    /// k = 1 degenerates to a single cluster holding every input.
    #[test]
    fn single_cluster_takes_everything(seed in any::<u64>(), n in 1usize..20) {
        let encoded = random_hvs(n, 64, seed);
        let (model, outcome) =
            HdcClustering::fit(&encoded, HdcClusteringSpec::new(1)).unwrap();
        prop_assert_eq!(model.k(), 1);
        prop_assert!(outcome.assignments.iter().all(|&c| c == 0));
    }
}

#[test]
fn nmi_of_constant_labelings_is_one() {
    // Two zero-entropy labelings: degenerate but defined as 1.0 (both
    // partitions are identical up to renaming).
    let a = vec![0usize; 7];
    let b = vec![3usize; 7];
    assert!((normalized_mutual_information(&a, &b).unwrap() - 1.0).abs() < EPS);
}

#[test]
fn nmi_rejects_empty_and_mismatched_inputs() {
    assert!(normalized_mutual_information(&[], &[]).is_err());
    assert!(normalized_mutual_information(&[0, 1], &[0]).is_err());
    assert!(accuracy(&[], &[]).is_err());
    assert!(accuracy(&[0, 1], &[0]).is_err());
}

#[test]
fn clustering_rejects_degenerate_specs() {
    let encoded = random_hvs(3, 64, 9);
    assert!(
        HdcClustering::fit(&encoded, HdcClusteringSpec::new(0)).is_err(),
        "k = 0"
    );
    assert!(
        HdcClustering::fit(&encoded, HdcClusteringSpec::new(4)).is_err(),
        "k > n"
    );
    assert!(
        HdcClustering::fit(&[], HdcClusteringSpec::new(1)).is_err(),
        "empty input"
    );
}

#[test]
fn empty_clusters_retain_their_centroid() {
    // Every input is identical, so after the first epoch cluster 0 wins
    // every assignment and cluster 1 goes empty; the engine must keep
    // cluster 1's previous centroid instead of collapsing or crashing.
    let point = IntHv::from_values(vec![1; 64]).unwrap();
    let encoded = vec![point.clone(); 6];
    let (model, outcome) =
        HdcClustering::fit(&encoded, HdcClusteringSpec::new(2).with_max_epochs(5)).unwrap();
    assert_eq!(model.k(), 2);
    assert!(outcome.assignments.iter().all(|&c| c == 0));
    assert_eq!(model.centroid(1).dim(), 64);
    assert_eq!(model.assign(&point).unwrap(), 0);
}
