//! Golden-vector tests for the GHDC wire format.
//!
//! Tiny committed fixture files under `tests/fixtures/` pin the exact
//! bytes of the v2 (sealed, CRC32) and v1 (legacy, unsealed) formats for
//! both payload kinds. Round-trips must be byte-exact; any unintentional
//! format change — header layout, endianness, payload width, checksum —
//! fails these tests instead of silently orphaning persisted models.
//!
//! Regenerate the fixtures (only after a *deliberate*, version-bumped
//! format change) with:
//!
//! ```text
//! cargo test -p generic-tests --test wire_golden -- --ignored regenerate
//! ```

use std::path::{Path, PathBuf};

use generic_hdc::io::{read_model, read_quantized, write_model, write_quantized, ReadModelError};
use generic_hdc::{HdcModel, IntHv, QuantizedModel};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn fixture(name: &str) -> Vec<u8> {
    let path = fixture_dir().join(name);
    std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); see module docs",
            path.display()
        )
    })
}

/// The deterministic tiny model every fixture derives from: 2 classes ×
/// 8 dims with distinctive, sign-mixed values.
fn golden_model() -> HdcModel {
    let classes = vec![
        IntHv::from_values(vec![3, -1, 4, -1, 5, -9, 2, 6]).unwrap(),
        IntHv::from_values(vec![-2, 7, -1, 8, -2, 8, -1, 8]).unwrap(),
    ];
    HdcModel::from_class_vectors(classes).unwrap()
}

/// A 4-bit quantization of the golden model's shape, with every value
/// representable in 4 bits.
fn golden_quantized() -> QuantizedModel {
    QuantizedModel::from_parts(
        8,
        4,
        vec![
            vec![3, -1, 4, -1, 5, -7, 2, 6],
            vec![-2, 7, -1, 7, -2, 7, -1, 7],
        ],
    )
    .unwrap()
}

/// A 1-bit quantization: sign-only rows (the historical pack/unpack
/// regression surface — +1 must survive the wire round-trip).
fn golden_one_bit() -> QuantizedModel {
    QuantizedModel::from_parts(
        8,
        1,
        vec![
            vec![1, -1, 1, -1, 1, -1, 1, 1],
            vec![-1, -1, 1, 1, -1, 1, -1, -1],
        ],
    )
    .unwrap()
}

/// Converts sealed v2 bytes to the legacy v1 encoding: version byte 1,
/// no CRC32 footer (mirrors how pre-seal files were written).
fn to_legacy(v2: &[u8]) -> Vec<u8> {
    let mut bytes = v2[..v2.len() - 4].to_vec();
    bytes[4] = 1;
    bytes
}

#[test]
fn model_v2_fixture_round_trips_byte_exact() {
    let bytes = fixture("model_v2.ghdc");
    let model = read_model(&bytes[..]).expect("golden v2 model parses");
    assert_eq!(model, golden_model());
    let mut rewritten = Vec::new();
    write_model(&model, &mut rewritten).unwrap();
    assert_eq!(rewritten, bytes, "v2 serialization is no longer canonical");
}

#[test]
fn quantized_v2_fixtures_round_trip_byte_exact() {
    for (name, expected) in [
        ("quantized_v2.ghdc", golden_quantized()),
        ("quantized1bit_v2.ghdc", golden_one_bit()),
    ] {
        let bytes = fixture(name);
        let model = read_quantized(&bytes[..]).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(model, expected, "{name}");
        let mut rewritten = Vec::new();
        write_quantized(&model, &mut rewritten).unwrap();
        assert_eq!(
            rewritten, bytes,
            "{name}: serialization is no longer canonical"
        );
    }
}

#[test]
fn legacy_v1_fixtures_decode_to_the_same_models() {
    let model = read_model(&fixture("model_v1.ghdc")[..]).expect("golden v1 model parses");
    assert_eq!(model, golden_model());
    let quantized =
        read_quantized(&fixture("quantized_v1.ghdc")[..]).expect("golden v1 quantized parses");
    assert_eq!(quantized, golden_quantized());
}

#[test]
fn header_layout_is_pinned() {
    let bytes = fixture("model_v2.ghdc");
    assert_eq!(&bytes[..4], b"GHDC", "magic");
    assert_eq!(bytes[4], 2, "version");
    assert_eq!(bytes[6], 16, "full models declare 16-bit width");
    assert_eq!(bytes[7], 0, "pad");
    assert_eq!(
        u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
        8,
        "dim"
    );
    assert_eq!(
        u32::from_le_bytes(bytes[12..16].try_into().unwrap()),
        2,
        "n_classes"
    );
    // header (16) + 2 classes × 8 dims × 4 bytes + CRC footer (4).
    assert_eq!(bytes.len(), 16 + 2 * 8 * 4 + 4, "total length");

    let quantized = fixture("quantized_v2.ghdc");
    assert_eq!(quantized[6], 4, "quantized bit width");
    // header (16) + 2 classes × 8 dims × 2 bytes + CRC footer (4).
    assert_eq!(quantized.len(), 16 + 2 * 8 * 2 + 4, "quantized length");
}

#[test]
fn corrupted_fixture_bytes_are_rejected() {
    let mut bytes = fixture("model_v2.ghdc");
    let payload_byte = 20;
    bytes[payload_byte] ^= 0xFF;
    match read_model(&bytes[..]) {
        Err(ReadModelError::ChecksumMismatch { .. }) => {}
        other => panic!("tampered v2 stream must fail the CRC, got {other:?}"),
    }
}

/// Writes the fixture files. `#[ignore]`d: run explicitly after a
/// deliberate format change, then commit the new bytes.
#[test]
#[ignore = "regenerates the committed golden fixtures"]
fn regenerate() {
    let dir = fixture_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let mut model_v2 = Vec::new();
    write_model(&golden_model(), &mut model_v2).unwrap();
    std::fs::write(dir.join("model_v2.ghdc"), &model_v2).unwrap();
    std::fs::write(dir.join("model_v1.ghdc"), to_legacy(&model_v2)).unwrap();

    let mut quantized_v2 = Vec::new();
    write_quantized(&golden_quantized(), &mut quantized_v2).unwrap();
    std::fs::write(dir.join("quantized_v2.ghdc"), &quantized_v2).unwrap();
    std::fs::write(dir.join("quantized_v1.ghdc"), to_legacy(&quantized_v2)).unwrap();

    let mut one_bit_v2 = Vec::new();
    write_quantized(&golden_one_bit(), &mut one_bit_v2).unwrap();
    std::fs::write(dir.join("quantized1bit_v2.ghdc"), &one_bit_v2).unwrap();
}
