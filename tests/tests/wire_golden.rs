//! Golden-vector tests for the GHDC wire format.
//!
//! Tiny committed fixture files under `tests/fixtures/` pin the exact
//! bytes of the v2 (sealed, CRC32) and v1 (legacy, unsealed) formats for
//! both payload kinds. Round-trips must be byte-exact; any unintentional
//! format change — header layout, endianness, payload width, checksum —
//! fails these tests instead of silently orphaning persisted models.
//!
//! Regenerate the fixtures (only after a *deliberate*, version-bumped
//! format change) with:
//!
//! ```text
//! cargo test -p generic-tests --test wire_golden -- --ignored regenerate
//! ```

use std::path::{Path, PathBuf};

use generic_hdc::io::{
    read_model, read_packed, read_quantized, write_model, write_packed, write_packed_pruned,
    write_quantized, PackedLayout, ReadModelError, PACKED_ALIGN,
};
use generic_hdc::{BinaryHv, HdcModel, IntHv, Mapping, PackedModelView, QuantizedModel};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn fixture(name: &str) -> Vec<u8> {
    let path = fixture_dir().join(name);
    std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); see module docs",
            path.display()
        )
    })
}

/// The deterministic tiny model every fixture derives from: 2 classes ×
/// 8 dims with distinctive, sign-mixed values.
fn golden_model() -> HdcModel {
    let classes = vec![
        IntHv::from_values(vec![3, -1, 4, -1, 5, -9, 2, 6]).unwrap(),
        IntHv::from_values(vec![-2, 7, -1, 8, -2, 8, -1, 8]).unwrap(),
    ];
    HdcModel::from_class_vectors(classes).unwrap()
}

/// A 4-bit quantization of the golden model's shape, with every value
/// representable in 4 bits.
fn golden_quantized() -> QuantizedModel {
    QuantizedModel::from_parts(
        8,
        4,
        vec![
            vec![3, -1, 4, -1, 5, -7, 2, 6],
            vec![-2, 7, -1, 7, -2, 7, -1, 7],
        ],
    )
    .unwrap()
}

/// A 1-bit quantization: sign-only rows (the historical pack/unpack
/// regression surface — +1 must survive the wire round-trip).
fn golden_one_bit() -> QuantizedModel {
    QuantizedModel::from_parts(
        8,
        1,
        vec![
            vec![1, -1, 1, -1, 1, -1, 1, 1],
            vec![-1, -1, 1, 1, -1, 1, -1, -1],
        ],
    )
    .unwrap()
}

/// Converts sealed v2 bytes to the legacy v1 encoding: version byte 1,
/// no CRC32 footer (mirrors how pre-seal files were written).
fn to_legacy(v2: &[u8]) -> Vec<u8> {
    let mut bytes = v2[..v2.len() - 4].to_vec();
    bytes[4] = 1;
    bytes
}

#[test]
fn model_v2_fixture_round_trips_byte_exact() {
    let bytes = fixture("model_v2.ghdc");
    let model = read_model(&bytes[..]).expect("golden v2 model parses");
    assert_eq!(model, golden_model());
    let mut rewritten = Vec::new();
    write_model(&model, &mut rewritten).unwrap();
    assert_eq!(rewritten, bytes, "v2 serialization is no longer canonical");
}

#[test]
fn quantized_v2_fixtures_round_trip_byte_exact() {
    for (name, expected) in [
        ("quantized_v2.ghdc", golden_quantized()),
        ("quantized1bit_v2.ghdc", golden_one_bit()),
    ] {
        let bytes = fixture(name);
        let model = read_quantized(&bytes[..]).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(model, expected, "{name}");
        let mut rewritten = Vec::new();
        write_quantized(&model, &mut rewritten).unwrap();
        assert_eq!(
            rewritten, bytes,
            "{name}: serialization is no longer canonical"
        );
    }
}

#[test]
fn legacy_v1_fixtures_decode_to_the_same_models() {
    let model = read_model(&fixture("model_v1.ghdc")[..]).expect("golden v1 model parses");
    assert_eq!(model, golden_model());
    let quantized =
        read_quantized(&fixture("quantized_v1.ghdc")[..]).expect("golden v1 quantized parses");
    assert_eq!(quantized, golden_quantized());
}

#[test]
fn header_layout_is_pinned() {
    let bytes = fixture("model_v2.ghdc");
    assert_eq!(&bytes[..4], b"GHDC", "magic");
    assert_eq!(bytes[4], 2, "version");
    assert_eq!(bytes[6], 16, "full models declare 16-bit width");
    assert_eq!(bytes[7], 0, "pad");
    assert_eq!(
        u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
        8,
        "dim"
    );
    assert_eq!(
        u32::from_le_bytes(bytes[12..16].try_into().unwrap()),
        2,
        "n_classes"
    );
    // header (16) + 2 classes × 8 dims × 4 bytes + CRC footer (4).
    assert_eq!(bytes.len(), 16 + 2 * 8 * 4 + 4, "total length");

    let quantized = fixture("quantized_v2.ghdc");
    assert_eq!(quantized[6], 4, "quantized bit width");
    // header (16) + 2 classes × 8 dims × 2 bytes + CRC footer (4).
    assert_eq!(quantized.len(), 16 + 2 * 8 * 2 + 4, "quantized length");
}

#[test]
fn packed_v3_fixture_round_trips_byte_exact() {
    for (name, expected) in [
        ("packed_v3.ghdc", golden_quantized()),
        ("packed1bit_v3.ghdc", golden_one_bit()),
    ] {
        let bytes = fixture(name);
        let model = read_packed(&bytes[..]).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(model, expected, "{name}");
        let mut rewritten = Vec::new();
        write_packed(&model, &mut rewritten).unwrap();
        assert_eq!(
            rewritten, bytes,
            "{name}: v3 serialization is no longer canonical"
        );
    }
}

#[test]
fn packed_v3_header_layout_is_pinned() {
    let bytes = fixture("packed_v3.ghdc");
    assert_eq!(&bytes[..4], b"GHDC", "magic");
    assert_eq!(bytes[4], 3, "version");
    assert_eq!(bytes[5], 2, "kind (packed)");
    assert_eq!(bytes[6], 4, "bit width");
    assert_eq!(bytes[7], 0, "pad");
    assert_eq!(
        u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
        8,
        "dim"
    );
    assert_eq!(
        u32::from_le_bytes(bytes[12..16].try_into().unwrap()),
        2,
        "n_classes"
    );
    // max |v| = 7 → 3 magnitude planes.
    assert_eq!(
        u32::from_le_bytes(bytes[16..20].try_into().unwrap()),
        3,
        "n_planes"
    );
    assert!(
        bytes[20..64].iter().all(|&b| b == 0),
        "reserved header tail must be zero"
    );

    // The section map is header-computable and 64-byte aligned. With
    // dim 8 every plane occupies one padded 64-byte stride.
    let layout = PackedLayout::validate(&bytes).expect("sealed v3 stream");
    assert_eq!(layout.norms_offset(), 64, "norms follow the header");
    assert_eq!(layout.plane_pop_offset(), 128, "2×f64 norms pad to 64");
    assert_eq!(layout.planes_offset(), 192, "2×3 i64 pops pad to 64");
    assert_eq!(layout.plane_stride(), PACKED_ALIGN, "8 dims pad to 64 B");
    // 2 classes × (1 sign + 3 magnitude) planes × 64 B + CRC footer.
    assert_eq!(layout.total_len(), 192 + 2 * 4 * 64 + 4, "total length");
    assert_eq!(bytes.len(), layout.total_len());

    // Alignment padding between planes is zero (canonical bytes).
    let n_words = 8usize.div_ceil(64);
    for c in 0..2 {
        for p in 0..4 {
            let start = layout.class_offset(c) + p * layout.plane_stride();
            let pad = &bytes[start + n_words * 8..start + layout.plane_stride()];
            assert!(pad.iter().all(|&b| b == 0), "class {c} plane {p} padding");
        }
    }
}

#[test]
fn packed_v3_fixture_serves_through_the_mapped_view() {
    let bytes = fixture("packed_v3.ghdc");
    let mapping = Mapping::from_bytes(&bytes).expect("aligned copy allocates");
    let view = PackedModelView::new(&mapping).expect("fixture is servable");
    let packed = golden_quantized().pack().expect("packs");
    let query = generic_hdc::BinaryHv::random_seeded(8, 7).expect("dim > 0");
    let mapped = view.scores(&query).expect("mapped scores");
    let heap = packed.scores(&query).expect("heap scores");
    assert_eq!(
        mapped.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
        heap.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
        "fixture scores must be bit-identical to the heap path"
    );
}

#[test]
fn tampered_v3_fixture_fails_the_checksum() {
    let bytes = fixture("packed_v3.ghdc");
    // Flip one bit in a plane word (past every header check): only the
    // CRC footer can catch it, and it must.
    let mut tampered = bytes.clone();
    let layout = PackedLayout::validate(&bytes).expect("sealed v3 stream");
    tampered[layout.planes_offset()] ^= 0x01;
    match PackedLayout::validate(&tampered) {
        Err(ReadModelError::ChecksumMismatch { .. }) => {}
        other => panic!("tampered v3 stream must fail the CRC, got {other:?}"),
    }
    // And a tampered CRC footer itself is equally fatal.
    let mut tampered = bytes;
    let last = tampered.len() - 1;
    tampered[last] ^= 0x01;
    assert!(matches!(
        PackedLayout::validate(&tampered),
        Err(ReadModelError::ChecksumMismatch { .. })
    ));
}

/// Support set of the golden pruned fixture: 8 of 16 parent dims kept,
/// chosen to exercise both halves of the mask word and uneven gaps.
const GOLDEN_SUPPORT: [usize; 8] = [0, 2, 3, 5, 8, 11, 13, 15];
const GOLDEN_PARENT_DIM: usize = 16;

/// The support mask word the fixture stores: bits of [`GOLDEN_SUPPORT`].
fn golden_support_mask() -> Vec<u64> {
    let mut mask = vec![0u64; GOLDEN_PARENT_DIM.div_ceil(64)];
    for d in GOLDEN_SUPPORT {
        mask[d / 64] |= 1 << (d % 64);
    }
    mask
}

#[test]
fn packed_pruned_v3_fixture_round_trips_byte_exact() {
    let bytes = fixture("packed_pruned_v3.ghdc");
    let mapping = Mapping::from_bytes(&bytes).expect("aligned copy allocates");
    let view = PackedModelView::new(&mapping).expect("sealed pruned stream");
    assert!(view.is_pruned());
    assert_eq!(view.parent_dim(), GOLDEN_PARENT_DIM);
    assert_eq!(view.dim(), 8);
    assert_eq!(view.support().expect("mask present"), golden_support_mask());
    assert_eq!(view.to_quantized().expect("decodes"), golden_quantized());

    let mut rewritten = Vec::new();
    write_packed_pruned(
        &golden_quantized(),
        GOLDEN_PARENT_DIM,
        &golden_support_mask(),
        &mut rewritten,
    )
    .unwrap();
    assert_eq!(
        rewritten, bytes,
        "pruned v3 serialization is no longer canonical"
    );
}

#[test]
fn packed_pruned_v3_header_and_mask_layout_are_pinned() {
    let bytes = fixture("packed_pruned_v3.ghdc");
    assert_eq!(&bytes[..4], b"GHDC", "magic");
    assert_eq!(bytes[4], 3, "version");
    assert_eq!(bytes[5], 2, "kind (packed)");
    assert_eq!(bytes[6], 4, "bit width");
    assert_eq!(bytes[7], 0, "pad");
    assert_eq!(
        u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
        8,
        "compacted dim"
    );
    assert_eq!(
        u32::from_le_bytes(bytes[12..16].try_into().unwrap()),
        2,
        "n_classes"
    );
    assert_eq!(
        u32::from_le_bytes(bytes[16..20].try_into().unwrap()),
        3,
        "n_planes"
    );
    // The support extension claims header bytes [20..24): parent_dim,
    // u32 LE, 0 = full support. Everything after stays reserved-zero.
    assert_eq!(
        u32::from_le_bytes(bytes[20..24].try_into().unwrap()),
        GOLDEN_PARENT_DIM as u32,
        "parent_dim"
    );
    assert!(
        bytes[24..64].iter().all(|&b| b == 0),
        "reserved header tail must be zero"
    );

    // The mask section sits after the planes, one 64-byte-aligned run
    // of u64 LE words with exactly `dim` set bits.
    let layout = PackedLayout::validate(&bytes).expect("sealed pruned stream");
    assert!(layout.is_pruned());
    assert_eq!(
        layout.support_offset(),
        192 + 2 * 4 * 64,
        "mask after planes"
    );
    assert_eq!(layout.support_words(), 1, "16 parent dims fit one word");
    assert_eq!(layout.support_mask(&bytes), Some(golden_support_mask()));
    assert_eq!(
        u64::from_le_bytes(
            bytes[layout.support_offset()..layout.support_offset() + 8]
                .try_into()
                .unwrap()
        ),
        0xA92D,
        "mask word bytes"
    );
    assert!(
        bytes[layout.support_offset() + 8..layout.total_len() - 4]
            .iter()
            .all(|&b| b == 0),
        "mask section padding must be zero"
    );
    // planes end + 64 B aligned mask section + CRC footer.
    assert_eq!(
        layout.total_len(),
        192 + 2 * 4 * 64 + 64 + 4,
        "total length"
    );
    assert_eq!(bytes.len(), layout.total_len());

    // A full-support image of the same model must carry no mask — and
    // stay byte-identical to the pre-extension v3 encoding.
    let full = fixture("packed_v3.ghdc");
    let full_layout = PackedLayout::validate(&full).expect("sealed v3 stream");
    assert!(!full_layout.is_pruned());
    assert_eq!(
        u32::from_le_bytes(full[20..24].try_into().unwrap()),
        0,
        "full support encodes parent_dim 0"
    );
}

#[test]
fn packed_pruned_v3_fixture_serves_full_width_queries() {
    let bytes = fixture("packed_pruned_v3.ghdc");
    let mapping = Mapping::from_bytes(&bytes).expect("aligned copy allocates");
    let view = PackedModelView::new(&mapping).expect("fixture is servable");
    // Queries arrive at parent width; the view compacts them through
    // the support. The scalar oracle compacts by hand and scores the
    // heap model.
    let query = BinaryHv::random_seeded(GOLDEN_PARENT_DIM, 7).expect("dim > 0");
    let bits: Vec<bool> = GOLDEN_SUPPORT.iter().map(|&d| query.bit(d)).collect();
    let compact = BinaryHv::from_bits(&bits).expect("dim > 0");
    let oracle = golden_quantized().scores(&IntHv::from(compact));
    let mapped = view.scores(&query).expect("mapped scores");
    assert_eq!(
        mapped.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
        oracle.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
        "pruned fixture scores must be bit-identical to the compacted oracle"
    );
}

#[test]
fn tampered_pruned_v3_fixture_fails_the_checksum() {
    let bytes = fixture("packed_pruned_v3.ghdc");
    let layout = PackedLayout::validate(&bytes).expect("sealed pruned stream");
    // Flip one support-mask bit: the CRC gate must catch it before the
    // popcount cross-check even runs.
    let mut tampered = bytes.clone();
    tampered[layout.support_offset()] ^= 0x02;
    match PackedLayout::validate(&tampered) {
        Err(ReadModelError::ChecksumMismatch { .. }) => {}
        other => panic!("tampered mask must fail the CRC, got {other:?}"),
    }
    // And a truncated mask section is reported as exactly that.
    let mut truncated = bytes;
    truncated.truncate(layout.support_offset() + 8);
    assert!(matches!(
        PackedLayout::validate(&truncated),
        Err(ReadModelError::Truncated { .. })
    ));
}

#[test]
fn corrupted_fixture_bytes_are_rejected() {
    let mut bytes = fixture("model_v2.ghdc");
    let payload_byte = 20;
    bytes[payload_byte] ^= 0xFF;
    match read_model(&bytes[..]) {
        Err(ReadModelError::ChecksumMismatch { .. }) => {}
        other => panic!("tampered v2 stream must fail the CRC, got {other:?}"),
    }
}

/// Writes the fixture files. `#[ignore]`d: run explicitly after a
/// deliberate format change, then commit the new bytes.
#[test]
#[ignore = "regenerates the committed golden fixtures"]
fn regenerate() {
    let dir = fixture_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let mut model_v2 = Vec::new();
    write_model(&golden_model(), &mut model_v2).unwrap();
    std::fs::write(dir.join("model_v2.ghdc"), &model_v2).unwrap();
    std::fs::write(dir.join("model_v1.ghdc"), to_legacy(&model_v2)).unwrap();

    let mut quantized_v2 = Vec::new();
    write_quantized(&golden_quantized(), &mut quantized_v2).unwrap();
    std::fs::write(dir.join("quantized_v2.ghdc"), &quantized_v2).unwrap();
    std::fs::write(dir.join("quantized_v1.ghdc"), to_legacy(&quantized_v2)).unwrap();

    let mut one_bit_v2 = Vec::new();
    write_quantized(&golden_one_bit(), &mut one_bit_v2).unwrap();
    std::fs::write(dir.join("quantized1bit_v2.ghdc"), &one_bit_v2).unwrap();

    let mut packed_v3 = Vec::new();
    write_packed(&golden_quantized(), &mut packed_v3).unwrap();
    std::fs::write(dir.join("packed_v3.ghdc"), &packed_v3).unwrap();
    let mut one_bit_v3 = Vec::new();
    write_packed(&golden_one_bit(), &mut one_bit_v3).unwrap();
    std::fs::write(dir.join("packed1bit_v3.ghdc"), &one_bit_v3).unwrap();

    let mut pruned_v3 = Vec::new();
    write_packed_pruned(
        &golden_quantized(),
        GOLDEN_PARENT_DIM,
        &golden_support_mask(),
        &mut pruned_v3,
    )
    .unwrap();
    std::fs::write(dir.join("packed_pruned_v3.ghdc"), &pruned_v3).unwrap();
}
