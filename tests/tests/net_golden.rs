//! Golden-vector tests for the framed TCP wire protocol.
//!
//! Tiny committed fixture files under `tests/fixtures/` pin the exact
//! bytes of every request opcode and every response status. Round-trips
//! must be byte-exact; any unintentional protocol change — header
//! layout, endianness, payload width, CRC trailer — fails these tests
//! instead of silently breaking deployed peers.
//!
//! Regenerate the fixtures (only after a *deliberate*, version-bumped
//! protocol change) with:
//!
//! ```text
//! cargo test -p generic-tests --test net_golden -- --ignored regenerate
//! ```

use std::path::{Path, PathBuf};

use generic_hdc::net::PROTOCOL_VERSION;
use generic_hdc::{Frame, FrameError, NetStatus};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn fixture(name: &str) -> Vec<u8> {
    let path = fixture_dir().join(name);
    std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); see module docs",
            path.display()
        )
    })
}

/// Every pinned frame: one per request opcode (tenant and tenant-free
/// Infer both) and one per response status, all with distinctive,
/// deterministic field values.
fn golden_frames() -> Vec<(&'static str, Frame)> {
    let refusal = |status: NetStatus, detail: &str| Frame::Refusal {
        request_id: 0xFEED_F00D,
        status,
        detail: detail.to_owned(),
    };
    vec![
        (
            "net_infer.bin",
            Frame::Infer {
                request_id: 0x0123_4567_89AB_CDEF,
                deadline_us: 1500,
                tenant: None,
                features: vec![1.0, -2.5, 0.0, 3.25],
            },
        ),
        (
            "net_infer_tenant.bin",
            Frame::Infer {
                request_id: 7,
                deadline_us: 0,
                tenant: Some("acme".to_owned()),
                features: vec![0.5],
            },
        ),
        (
            "net_learn.bin",
            Frame::Learn {
                request_id: 8,
                label: 2,
                features: vec![4.0, 5.0],
            },
        ),
        ("net_ping.bin", Frame::Ping { request_id: 9 }),
        (
            "net_answer.bin",
            Frame::Answer {
                request_id: 0x0123_4567_89AB_CDEF,
                elapsed_us: 412,
                label: 1,
                dims_used: 2048,
                tier: 4,
                shard: 1,
                degraded: true,
            },
        ),
        ("net_accepted.bin", Frame::Accepted { request_id: 8 }),
        ("net_goodbye.bin", Frame::Goodbye),
        (
            "net_refusal_queue_full.bin",
            refusal(NetStatus::QueueFull, "work queue is full"),
        ),
        (
            "net_refusal_shed.bin",
            refusal(NetStatus::Shed, "deadline hopeless"),
        ),
        (
            "net_refusal_malformed.bin",
            refusal(NetStatus::Malformed, "checksum mismatch"),
        ),
        (
            "net_refusal_unavailable.bin",
            refusal(NetStatus::Unavailable, "no live shard"),
        ),
        (
            "net_refusal_shutting_down.bin",
            refusal(NetStatus::ShuttingDown, "draining"),
        ),
        (
            "net_refusal_tenant_unavailable.bin",
            refusal(NetStatus::TenantUnavailable, "tenant quarantined"),
        ),
        (
            "net_refusal_canceled.bin",
            refusal(NetStatus::Canceled, "server stopped"),
        ),
    ]
}

#[test]
fn fixtures_round_trip_byte_exact() {
    for (name, expected) in golden_frames() {
        let bytes = fixture(name);
        let frame = Frame::decode(&bytes).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(frame, expected, "{name}");
        assert_eq!(
            frame.encode(),
            bytes,
            "{name}: encoding is no longer canonical"
        );
    }
}

/// The header layout is pinned positionally: length prefix, magic,
/// version, opcode, status, reserved byte, request id, time slot, and
/// tenant length all live at fixed little-endian offsets.
#[test]
fn header_layout_is_pinned() {
    let bytes = fixture("net_infer_tenant.bin");
    let body_len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
    assert_eq!(4 + body_len, bytes.len(), "length prefix covers the body");
    assert_eq!(&bytes[4..8], b"GNET", "magic");
    assert_eq!(bytes[8], PROTOCOL_VERSION, "version");
    assert_eq!(bytes[9], 0x01, "opcode (Infer)");
    assert_eq!(bytes[10], 0, "status (Ok on requests)");
    assert_eq!(bytes[11], 0, "reserved");
    assert_eq!(
        u64::from_le_bytes(bytes[12..20].try_into().unwrap()),
        7,
        "request id"
    );
    assert_eq!(
        u64::from_le_bytes(bytes[20..28].try_into().unwrap()),
        0,
        "deadline slot"
    );
    assert_eq!(
        u16::from_le_bytes(bytes[28..30].try_into().unwrap()),
        4,
        "tenant length"
    );
    assert_eq!(&bytes[30..34], b"acme", "tenant id");
    // 1 feature: u32 count + f64 value, then the 4-byte CRC trailer.
    assert_eq!(
        u32::from_le_bytes(bytes[34..38].try_into().unwrap()),
        1,
        "feature count"
    );
    assert_eq!(
        f64::from_le_bytes(bytes[38..46].try_into().unwrap()),
        0.5,
        "feature value"
    );
    assert_eq!(bytes.len(), 46 + 4, "CRC trailer ends the frame");

    // Every response status byte is pinned to its wire value.
    for (name, want) in [
        ("net_answer.bin", 0u8),
        ("net_accepted.bin", 8),
        ("net_goodbye.bin", 5),
        ("net_refusal_queue_full.bin", 1),
        ("net_refusal_shed.bin", 2),
        ("net_refusal_malformed.bin", 3),
        ("net_refusal_unavailable.bin", 4),
        ("net_refusal_shutting_down.bin", 5),
        ("net_refusal_tenant_unavailable.bin", 6),
        ("net_refusal_canceled.bin", 7),
    ] {
        let bytes = fixture(name);
        assert_eq!(bytes[10], want, "{name}: status byte");
    }
}

/// Tampering with any fixture's CRC trailer (or a payload byte the
/// trailer covers) is fatal: the decoder refuses with the typed
/// checksum error, never a silently-corrupt frame.
#[test]
fn tampered_fixtures_fail_the_checksum() {
    for (name, _) in golden_frames() {
        let bytes = fixture(name);
        // Flip a payload byte past every pre-CRC header check.
        let mut tampered = bytes.clone();
        tampered[12] ^= 0x01; // low request-id byte
        match Frame::decode(&tampered) {
            Err(FrameError::ChecksumMismatch { .. }) => {}
            other => panic!("{name}: tampered payload must fail the CRC, got {other:?}"),
        }
        // And a tampered trailer itself is equally fatal.
        let mut tampered = bytes;
        let last = tampered.len() - 1;
        tampered[last] ^= 0x01;
        match Frame::decode(&tampered) {
            Err(FrameError::ChecksumMismatch { .. }) => {}
            other => panic!("{name}: tampered trailer must fail the CRC, got {other:?}"),
        }
    }
}

/// Writes the fixture files. `#[ignore]`d: run explicitly after a
/// deliberate protocol change, then commit the new bytes.
#[test]
#[ignore = "regenerates the committed golden fixtures"]
fn regenerate() {
    let dir = fixture_dir();
    std::fs::create_dir_all(&dir).unwrap();
    for (name, frame) in golden_frames() {
        std::fs::write(dir.join(name), frame.encode()).unwrap();
    }
}
