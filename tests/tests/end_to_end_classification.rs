//! End-to-end classification: the full encode → train → retrain → infer
//! pipeline across crates, asserting the Table 1 qualitative structure.

use generic_bench::runners::{evaluate_hdc, train_hdc, DEFAULT_EPOCHS};
use generic_datasets::Benchmark;
use generic_hdc::encoding::EncodingKind;

const DIM: usize = 2048; // half the default keeps these tests quick

#[test]
fn generic_encoding_is_accurate_on_every_domain() {
    // One representative per structural family.
    for (benchmark, floor) in [
        (Benchmark::Cardio, 0.90), // tabular
        (Benchmark::Eeg, 0.75),    // temporal
        (Benchmark::Mnist, 0.70),  // spatial
        (Benchmark::Lang, 0.85),   // sequence
    ] {
        let dataset = benchmark.load(7);
        let acc = evaluate_hdc(EncodingKind::Generic, &dataset, DIM, DEFAULT_EPOCHS, 7);
        assert!(
            acc >= floor,
            "{benchmark}: GENERIC accuracy {acc} below floor {floor}"
        );
    }
}

#[test]
fn rp_fails_on_time_series_but_windowed_encodings_succeed() {
    // §3.2: "RP encoding fails in time-series datasets that require
    // temporal information (e.g., EEG)".
    let dataset = Benchmark::Eeg.load(7);
    let rp = evaluate_hdc(
        EncodingKind::RandomProjection,
        &dataset,
        DIM,
        DEFAULT_EPOCHS,
        7,
    );
    let generic = evaluate_hdc(EncodingKind::Generic, &dataset, DIM, DEFAULT_EPOCHS, 7);
    assert!(
        generic > rp + 0.10,
        "GENERIC ({generic}) should clearly beat RP ({rp}) on EEG"
    );
}

#[test]
fn ngram_fails_on_spatial_data_but_generic_does_not() {
    // §3.2: "the ngram encoding does not capture the global relation of
    // the features, so it fails in datasets such as speech (ISOLET) and
    // image recognition (MNIST)".
    let dataset = Benchmark::Mnist.load(7);
    let ngram = evaluate_hdc(EncodingKind::Ngram, &dataset, DIM, DEFAULT_EPOCHS, 7);
    let generic = evaluate_hdc(EncodingKind::Generic, &dataset, DIM, DEFAULT_EPOCHS, 7);
    assert!(
        generic > ngram + 0.25,
        "GENERIC ({generic}) should dominate ngram ({ngram}) on MNIST"
    );
}

#[test]
fn ngram_and_generic_solve_language_identification() {
    // §3.2: only subsequence-based encodings work on LANG; GENERIC's
    // configurable id binding recovers ngram behaviour there.
    let dataset = Benchmark::Lang.load(7);
    let ngram = evaluate_hdc(EncodingKind::Ngram, &dataset, DIM, DEFAULT_EPOCHS, 7);
    let permute = evaluate_hdc(EncodingKind::Permutation, &dataset, DIM, DEFAULT_EPOCHS, 7);
    let generic = evaluate_hdc(EncodingKind::Generic, &dataset, DIM, DEFAULT_EPOCHS, 7);
    assert!(ngram > 0.85, "ngram should solve LANG: {ngram}");
    assert!(generic > 0.85, "GENERIC should solve LANG: {generic}");
    assert!(
        permute < generic - 0.3,
        "strict-order permutation ({permute}) should fail where GENERIC ({generic}) succeeds"
    );
}

#[test]
fn retraining_reduces_training_errors() {
    let dataset = Benchmark::Isolet.load(7);
    let run = train_hdc(EncodingKind::Generic, &dataset, DIM, 10, 7);
    assert!(
        run.retrain_errors.len() >= 2,
        "expected at least two epochs: {:?}",
        run.retrain_errors
    );
    let first = run.retrain_errors[0];
    let last = *run.retrain_errors.last().expect("non-empty");
    assert!(
        last < first,
        "errors should shrink: first {first}, last {last}"
    );
}

#[test]
fn pipeline_is_deterministic_across_runs() {
    let dataset = Benchmark::Page.load(11);
    let a = evaluate_hdc(EncodingKind::Generic, &dataset, 1024, 5, 11);
    let b = evaluate_hdc(EncodingKind::Generic, &dataset, 1024, 5, 11);
    assert_eq!(a, b);
}
