//! Contracts between the dataset generators and the learners: every
//! baseline must train and beat chance on data its family can represent,
//! and everything must be deterministic under a seed.

use generic_bench::runners::evaluate_ml;
use generic_bench::MlAlgorithm;
use generic_datasets::{Benchmark, ClusteringBenchmark};
use generic_hdc::metrics::normalized_mutual_information;
use generic_ml::{KMeans, KMeansSpec};

#[test]
fn all_benchmarks_validate_and_are_deterministic() {
    for benchmark in Benchmark::ALL {
        let a = benchmark.load(13);
        a.validate();
        let b = benchmark.load(13);
        assert_eq!(a, b, "{benchmark} not deterministic");
        let c = benchmark.load(14);
        assert_ne!(
            a.train.features[0], c.train.features[0],
            "{benchmark} ignores its seed"
        );
    }
}

#[test]
fn every_ml_baseline_beats_chance_on_tabular_data() {
    let dataset = Benchmark::Cardio.load(13);
    let chance = 1.0 / dataset.n_classes as f64;
    for algo in MlAlgorithm::ALL {
        let acc = evaluate_ml(algo, &dataset, 13);
        assert!(
            acc > chance + 0.2,
            "{algo}: accuracy {acc} barely above chance {chance}"
        );
    }
}

#[test]
fn svm_is_competitive_on_spatial_data() {
    // The paper's SVM (RBF SVC) is its strongest conventional baseline.
    let dataset = Benchmark::Face.load(13);
    let acc = evaluate_ml(MlAlgorithm::Svm, &dataset, 13);
    assert!(acc > 0.9, "SVM accuracy {acc}");
}

#[test]
fn kmeans_matches_ground_truth_on_separable_shapes() {
    for (benchmark, floor) in [
        (ClusteringBenchmark::Hepta, 0.85),
        (ClusteringBenchmark::TwoDiamonds, 0.9),
    ] {
        let ds = benchmark.load(13);
        let (_, outcome) =
            KMeans::fit(&ds.points, KMeansSpec::new(ds.k).with_seed(13)).expect("valid points");
        let nmi =
            normalized_mutual_information(&outcome.assignments, &ds.labels).expect("equal lengths");
        assert!(nmi > floor, "{benchmark}: NMI {nmi} below {floor}");
    }
}

#[test]
fn ml_training_is_deterministic_under_seed() {
    let dataset = Benchmark::Page.load(13);
    for algo in [
        MlAlgorithm::Mlp,
        MlAlgorithm::RandomForest,
        MlAlgorithm::Svm,
    ] {
        let a = evaluate_ml(algo, &dataset, 21);
        let b = evaluate_ml(algo, &dataset, 21);
        assert_eq!(a, b, "{algo} not deterministic");
    }
}

#[test]
fn clustering_benchmarks_have_fcps_cardinalities() {
    let sizes: Vec<usize> = ClusteringBenchmark::ALL
        .iter()
        .map(|b| b.load(1).len())
        .collect();
    assert_eq!(sizes, vec![212, 400, 800, 1016, 150]);
}
