//! Cross-crate energy invariants: the orderings every figure of the
//! evaluation relies on must hold structurally, not just at one operating
//! point.

use generic_bench::cost::{hdc_shape, ml_infer_ops, sim_train};
use generic_bench::MlAlgorithm;
use generic_datasets::Benchmark;
use generic_devices::Device;
use generic_sim::{AcceleratorConfig, EnergyModel, EnergyOptions, VosOperatingPoint};

#[test]
fn accelerator_beats_every_commodity_device_by_orders_of_magnitude() {
    let dataset = Benchmark::Ucihar.load(3);
    let (mut acc, _) = sim_train(&dataset, 4096, 3);
    acc.reset_activity();
    for x in dataset.test.features.iter().take(20) {
        acc.infer(x).expect("trained");
    }
    let asic_uj = acc.energy_report(&EnergyOptions::default()).total_energy_uj / 20.0;

    let shape = hdc_shape(&dataset, 4096, 3);
    for device in [
        Device::raspberry_pi3(),
        Device::desktop_cpu(),
        Device::jetson_tx2_egpu(),
    ] {
        let device_uj = device.energy_j(&shape.infer(), 1) * 1e6;
        assert!(
            device_uj > 100.0 * asic_uj,
            "{}: {device_uj} uJ should be >100x the ASIC's {asic_uj} uJ",
            device.name
        );
    }
}

#[test]
fn lp_techniques_only_ever_reduce_energy() {
    let dataset = Benchmark::Isolet.load(3);
    let (mut acc, _) = sim_train(&dataset, 4096, 3);

    acc.reset_activity();
    for x in dataset.test.features.iter().take(20) {
        acc.infer(x).expect("trained");
    }
    let base = acc.energy_report(&EnergyOptions::default());
    let no_gating = acc.energy_report(&EnergyOptions {
        power_gating: false,
        vos: None,
    });
    let with_vos = acc.energy_report(&EnergyOptions {
        power_gating: true,
        vos: Some(VosOperatingPoint::at_bit_error_rate(0.02)),
    });
    assert!(base.static_power_mw <= no_gating.static_power_mw);
    assert!(with_vos.total_energy_uj < base.total_energy_uj);
    assert!(with_vos.static_power_mw < base.static_power_mw);

    // Dimension reduction cuts cycles (and therefore both energy terms).
    acc.reset_activity();
    for x in dataset.test.features.iter().take(20) {
        acc.infer_reduced(x, 1024).expect("trained");
    }
    let reduced = acc.energy_report(&EnergyOptions::default());
    assert!(reduced.total_energy_uj < base.total_energy_uj / 2.0);
}

#[test]
fn power_gating_tracks_class_memory_utilization() {
    let model = EnergyModel::paper_default();
    // 2 classes → 1 bank; 10 → 2 banks; 26 → 4 banks (at D = 4K).
    let utilizations: Vec<f64> = [2usize, 10, 26]
        .iter()
        .map(|&c| {
            let config = AcceleratorConfig::new(4096, 64, c);
            model.active_bank_fraction(&config, true)
        })
        .collect();
    assert_eq!(utilizations, vec![0.25, 0.5, 1.0]);
    assert!(utilizations.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn hdc_is_the_expensive_algorithm_on_commodity_devices() {
    // The §3.3 inversion that motivates the ASIC: HDC loses to classical
    // ML on general-purpose hardware.
    let dataset = Benchmark::Mnist.load(3);
    let hdc = hdc_shape(&dataset, 4096, 3).infer();
    for device in [Device::raspberry_pi3(), Device::desktop_cpu()] {
        let hdc_energy = device.energy_j(&hdc, 1);
        for algo in MlAlgorithm::ALL {
            let ml_energy = device.energy_j(&ml_infer_ops(algo, &dataset), 1);
            assert!(
                ml_energy < hdc_energy,
                "{}: {algo} ({ml_energy} J) should undercut HDC ({hdc_energy} J)",
                device.name
            );
        }
    }
}

#[test]
fn deeper_voltage_scaling_trades_errors_for_power() {
    let mut prev = VosOperatingPoint::at_voltage(0.78);
    for step in 1..=8 {
        let v = 0.78 - 0.025 * f64::from(step);
        let point = VosOperatingPoint::at_voltage(v);
        assert!(point.bit_error_rate >= prev.bit_error_rate);
        assert!(point.static_power_factor <= prev.static_power_factor);
        assert!(point.dynamic_power_factor <= prev.dynamic_power_factor);
        prev = point;
    }
}

#[test]
fn silicon_figures_stay_in_the_papers_bands() {
    let dataset = Benchmark::Mnist.load(3);
    let (mut acc, _) = sim_train(&dataset, 4096, 3);
    acc.reset_activity();
    for x in dataset.test.features.iter().take(30) {
        acc.infer(x).expect("trained");
    }
    let breakdown = acc.breakdown();
    // §5.1: 0.30 mm², 0.25 mW worst-case static.
    assert!((0.25..0.40).contains(&breakdown.total_area_mm2()));
    assert!((0.15..0.35).contains(&breakdown.total_static_mw()));
    let report = acc.energy_report(&EnergyOptions::default());
    // ~1.8 mW active dynamic power at 500 MHz.
    assert!(
        (0.5..4.0).contains(&report.dynamic_power_mw),
        "dynamic power {} mW",
        report.dynamic_power_mw
    );
}
