//! Simulator ↔ library functional equivalence: the accelerator model must
//! compute the same HDC mathematics as `generic-hdc`, up to the documented
//! Mitchell-division approximation.

use generic_datasets::Benchmark;
use generic_hdc::encoding::{Encoder, GenericEncoder, GenericEncoderSpec};
use generic_hdc::metrics::normalized_mutual_information;
use generic_hdc::{HdcClustering, HdcClusteringSpec, HdcModel, IntHv};
use generic_sim::{Accelerator, AcceleratorConfig};

/// Library encoder configured exactly like the accelerator (hardware-style
/// seeded ids).
fn matching_encoder(config: &AcceleratorConfig, train: &[Vec<f64>]) -> GenericEncoder {
    let spec = GenericEncoderSpec::new(4096, train[0].len())
        .with_window(3)
        .with_id_binding(config.id_binding)
        .with_seeded_ids(true)
        .with_seed(5);
    GenericEncoder::from_data(spec, train).expect("valid training data")
}

#[test]
fn sim_encoding_is_bit_exact_with_library() {
    let dataset = Benchmark::Ucihar.load(5);
    let config = AcceleratorConfig::new(4096, dataset.n_features, dataset.n_classes).with_seed(5);
    let mut acc = Accelerator::new(config, &dataset.train.features).expect("fits");
    let encoder = matching_encoder(&config, &dataset.train.features);
    for sample in dataset.test.features.iter().take(10) {
        let sim_hv = acc.encode(sample).expect("valid sample");
        let lib_hv = encoder.encode(sample).expect("valid sample");
        assert_eq!(sim_hv, lib_hv, "simulator and library encodings diverge");
    }
}

#[test]
fn sim_inference_matches_library_predictions() {
    let dataset = Benchmark::Face.load(5);
    let config = AcceleratorConfig::new(4096, dataset.n_features, dataset.n_classes).with_seed(5);
    let mut acc = Accelerator::new(config, &dataset.train.features).expect("fits");
    let encoder = matching_encoder(&config, &dataset.train.features);

    // Train the library reference and load it into the simulator.
    let encoded = encoder
        .encode_batch(&dataset.train.features)
        .expect("valid rows");
    let mut model =
        HdcModel::fit(&encoded, &dataset.train.labels, dataset.n_classes).expect("valid labels");
    model
        .retrain(&encoded, &dataset.train.labels, 5)
        .expect("valid inputs");
    acc.load_model(&model).expect("shapes match");

    let mut agreements = 0;
    let n = 60.min(dataset.test.len());
    for sample in dataset.test.features.iter().take(n) {
        let sim_pred = acc.infer(sample).expect("model loaded").prediction;
        let lib_pred = model.predict(&encoder.encode(sample).expect("valid sample"));
        if sim_pred == lib_pred {
            agreements += 1;
        }
    }
    // The Mitchell divider may flip near-tie decisions, but on this
    // well-separated task the agreement must be essentially total.
    assert!(
        agreements >= n - 1,
        "simulator agreed with library on only {agreements}/{n} inputs"
    );
}

#[test]
fn sim_on_device_training_reaches_library_accuracy() {
    let dataset = Benchmark::Cardio.load(5);
    let config = AcceleratorConfig::new(4096, dataset.n_features, dataset.n_classes).with_seed(5);
    let mut acc = Accelerator::new(config, &dataset.train.features).expect("fits");
    acc.train(&dataset.train.features, &dataset.train.labels, 10)
        .expect("valid dataset");

    let encoder = matching_encoder(&config, &dataset.train.features);
    let encoded = encoder
        .encode_batch(&dataset.train.features)
        .expect("valid rows");
    let mut model =
        HdcModel::fit(&encoded, &dataset.train.labels, dataset.n_classes).expect("valid labels");
    model
        .retrain(&encoded, &dataset.train.labels, 10)
        .expect("valid inputs");

    let test_encoded = encoder
        .encode_batch(&dataset.test.features)
        .expect("valid rows");
    let lib_acc = model.accuracy(&test_encoded, &dataset.test.labels);

    let mut correct = 0;
    for (x, &y) in dataset.test.features.iter().zip(&dataset.test.labels) {
        if acc.infer(x).expect("trained").prediction == y {
            correct += 1;
        }
    }
    let sim_acc = correct as f64 / dataset.test.len() as f64;
    assert!(
        (sim_acc - lib_acc).abs() <= 0.05,
        "simulator accuracy {sim_acc} vs library {lib_acc}"
    );
}

#[test]
fn sim_clustering_matches_library_quality() {
    use generic_datasets::ClusteringBenchmark;
    let ds = ClusteringBenchmark::Hepta.load(5);
    let config = AcceleratorConfig::new(4096, ds.n_features(), ds.k)
        .with_window(3.min(ds.n_features()))
        .with_seed(5);
    let mut acc = Accelerator::new(config, &ds.points).expect("fits");
    let sim_outcome = acc.cluster(&ds.points, ds.k, 15).expect("k <= n");
    let sim_nmi =
        normalized_mutual_information(&sim_outcome.assignments, &ds.labels).expect("equal lengths");

    let spec = GenericEncoderSpec::new(4096, ds.n_features())
        .with_window(3.min(ds.n_features()))
        .with_seeded_ids(true)
        .with_seed(5);
    let encoder = GenericEncoder::from_data(spec, &ds.points).expect("valid points");
    let encoded: Vec<IntHv> = encoder.encode_batch(&ds.points).expect("valid rows");
    let (_, lib_outcome) =
        HdcClustering::fit(&encoded, HdcClusteringSpec::new(ds.k).with_max_epochs(15))
            .expect("k <= n");
    let lib_nmi =
        normalized_mutual_information(&lib_outcome.assignments, &ds.labels).expect("equal lengths");

    assert!(
        (sim_nmi - lib_nmi).abs() <= 0.1,
        "simulator NMI {sim_nmi} vs library {lib_nmi}"
    );
    assert!(sim_nmi > 0.85, "Hepta should cluster cleanly: {sim_nmi}");
}

#[test]
fn cycle_count_scales_linearly_with_dimensions() {
    let dataset = Benchmark::Page.load(5);
    let mut cycles = Vec::new();
    for dim in [1024usize, 2048, 4096] {
        let config =
            AcceleratorConfig::new(dim, dataset.n_features, dataset.n_classes).with_seed(5);
        let mut acc = Accelerator::new(config, &dataset.train.features).expect("fits");
        acc.train(&dataset.train.features, &dataset.train.labels, 1)
            .expect("valid");
        acc.reset_activity();
        acc.infer(&dataset.test.features[0]).expect("trained");
        cycles.push(acc.activity().cycles as f64);
    }
    let r1 = cycles[1] / cycles[0];
    let r2 = cycles[2] / cycles[1];
    assert!((1.8..2.2).contains(&r1), "1K→2K cycle ratio {r1}");
    assert!((1.8..2.2).contains(&r2), "2K→4K cycle ratio {r2}");
}
