//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait over deterministic seeded sampling,
//! [`any`], [`Just`], range strategies, [`collection::vec`], the
//! [`proptest!`] test macro with `#![proptest_config(..)]`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` / `prop_oneof!`
//! macros.
//!
//! Differences from upstream proptest, by design:
//!
//! - **No shrinking.** A failing case reports its inputs and seed but is
//!   not minimized.
//! - **Deterministic seeds.** Cases are generated from a fixed base seed
//!   mixed with the case index, so failures reproduce across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (the subset the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// A `prop_assert!`-style check failed; the property is falsified.
    Fail(String),
}

/// Per-case result used by the generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of values for property tests.
///
/// Unlike upstream proptest this is a plain sampling interface: a
/// strategy draws a value from a seeded RNG.
pub trait Strategy {
    /// The type of the generated values.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Boxes the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, dynamically-dispatched strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (**self).sample(rng)
    }
}

/// A strategy producing a single constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

/// The canonical strategy for `T`: uniform over the whole domain.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Finite, wide-dynamic-range doubles (no NaN/inf, as those make
        // nearly every numeric property vacuous).
        let mantissa: f64 = rng.random_range(-1.0..1.0);
        let exp: i32 = rng.random_range(-64..64);
        mantissa * (exp as f64).exp2()
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut StdRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let u: f64 = rng.random::<u64>() as f64 / u64::MAX as f64;
        start + (end - start) * u
    }
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;

    /// Anything usable as a collection size: a fixed size or a range.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut rand::rngs::StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _: &mut rand::rngs::StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut rand::rngs::StdRng) -> usize {
            use rand::Rng;
            rng.random_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut rand::rngs::StdRng) -> usize {
            use rand::Rng;
            rng.random_range(self.clone())
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S` and a size range.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates vectors whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut rand::rngs::StdRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Uniform choice among boxed alternatives (backs [`prop_oneof!`]).
pub struct UnionStrategy<T> {
    /// The alternatives to choose between.
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T: std::fmt::Debug> Strategy for UnionStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        assert!(!self.options.is_empty(), "prop_oneof! of nothing");
        let i = rng.random_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

/// Runs `cases` deterministic cases of `body`, panicking on the first
/// falsified case. Used by the [`proptest!`] macro expansion.
pub fn run_property(
    name: &str,
    config: &ProptestConfig,
    mut body: impl FnMut(&mut StdRng) -> TestCaseResult,
) {
    // Deterministic base seed: failures reproduce run to run.
    let base = 0xC0FF_EE00_D15E_A5E5u64;
    let mut rejected = 0u32;
    let mut ran = 0u32;
    let max_rejects = config.cases.saturating_mul(16).max(1024);
    let mut case = 0u64;
    while ran < config.cases {
        if rejected >= max_rejects {
            panic!(
                "property `{name}`: too many prop_assume! rejections \
                 ({rejected} rejects for {ran} accepted cases)"
            );
        }
        let mut rng = StdRng::seed_from_u64(base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        match body(&mut rng) {
            Ok(()) => ran += 1,
            Err(TestCaseError::Reject(_)) => rejected += 1,
            Err(TestCaseError::Fail(message)) => {
                panic!("property `{name}` falsified at case {case}: {message}")
            }
        }
        case += 1;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    // Internal arms first: the public catch-all below would otherwise
    // re-match `@impl ...` and recurse forever.
    (@impl ($config:expr) ) => {};
    (@impl ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        // Metas pass through untouched: callers write `#[test]` themselves,
        // exactly as with upstream proptest.
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_property(stringify!($name), &config, |rng| {
                $(let $arg = $crate::Strategy::sample(&($strategy), rng);)+
                // The case body returns TestCaseResult so that
                // prop_assert!/prop_assume! can exit early.
                #[allow(clippy::redundant_closure_call)]
                (|| -> $crate::TestCaseResult {
                    $body
                    Ok(())
                })()
            });
        }
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case (with context) when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case when the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fails the current case when the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)*);
    }};
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::UnionStrategy {
            options: vec![$($crate::Strategy::boxed($strategy)),+],
        }
    };
}

/// The conventional glob import for proptest users.
pub mod prelude {
    /// Access to strategy modules under the conventional `prop::` name.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(v in 3usize..10, w in 1u8..=255) {
            prop_assert!((3..10).contains(&v));
            prop_assert!(w >= 1);
        }

        #[test]
        fn oneof_and_just_produce_members(d in prop_oneof![Just(64usize), Just(128)]) {
            prop_assert!(d == 64 || d == 128);
        }

        #[test]
        fn assume_skips_without_failing(v in 0usize..10) {
            prop_assume!(v % 2 == 0);
            prop_assert!(v % 2 == 0);
        }

        #[test]
        fn vectors_respect_size(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
            prop_assert!(bytes.len() < 256);
        }
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failing_property_panics() {
        crate::run_property(
            "always_fails",
            &ProptestConfig::with_cases(4),
            |_| -> crate::TestCaseResult {
                prop_assert!(false, "nope");
                #[allow(unreachable_code)]
                Ok(())
            },
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first = Vec::new();
        crate::run_property("collect", &ProptestConfig::with_cases(8), |rng| {
            first.push(any::<u64>().sample(rng));
            Ok(())
        });
        let mut second = Vec::new();
        crate::run_property("collect", &ProptestConfig::with_cases(8), |rng| {
            second.push(any::<u64>().sample(rng));
            Ok(())
        });
        assert_eq!(first, second);
    }
}
