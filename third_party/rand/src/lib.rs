//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the small, stable subset of the `rand 0.9` API the
//! workspace actually uses: [`rngs::StdRng`] (a seedable, deterministic
//! generator), the [`Rng`] and [`SeedableRng`] traits with `random`,
//! `random_bool`, and `random_range`, and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a
//! high-quality non-cryptographic PRNG. Streams differ from the real
//! `rand::rngs::StdRng` (ChaCha12), which is fine: the workspace only
//! relies on determinism for a fixed seed and on statistical quality,
//! never on the exact byte stream of upstream `rand`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Deterministic generators.
pub mod rngs {
    /// The workspace's standard PRNG: xoshiro256++ with SplitMix64
    /// seeding. Deterministic for a fixed seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl crate::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            StdRng::next_u64(self)
        }
    }
}

/// Types samplable uniformly from a generator via [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable via [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128_below(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = uniform_u128_below(rng, span);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw in `[0, bound)` by rejection sampling (`bound > 0`).
fn uniform_u128_below<R: Rng + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound <= u64::MAX as u128 {
        let bound = bound as u64;
        // Zone-based rejection: top of the acceptable region.
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return (v % bound) as u128;
            }
        }
    } else {
        // Only reachable for spans wider than 64 bits (e.g. full i128
        // ranges) — not used by the workspace, but kept correct.
        loop {
            let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            if v < u128::MAX - u128::MAX % bound {
                return v % bound;
            }
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::draw(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::draw(rng) as f32;
        let v = self.start + (self.end - self.start) * u;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// The random-value interface.
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniform value of type `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        f64::draw(self) < p
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Sequence-related helpers.
pub mod seq {
    use crate::Rng;

    /// Slice shuffling.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn random_range_is_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values reachable");
        for _ in 0..1000 {
            let v: i32 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&v));
        }
        for _ in 0..1000 {
            let v: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&v));
        }
    }

    #[test]
    fn f64_draws_are_uniform_unit() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 32-element shuffle is not identity");
    }
}
