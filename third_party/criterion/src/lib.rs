//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset of the criterion 0.5 API the workspace's
//! benchmarks use: [`Criterion`], benchmark groups, `bench_function` /
//! `bench_with_input`, `iter` / `iter_batched`, [`BenchmarkId`],
//! [`BatchSize`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Instead of criterion's statistical machinery it runs a short
//! calibrated measurement loop and prints the median iteration time —
//! enough to compare orders of magnitude and keep `cargo bench` useful
//! offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup between measurements. The stand-in
/// measures per-iteration either way; the variants exist for API
/// compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per allocation.
    PerIteration,
}

/// A benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id carrying only a parameter (grouped benches).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            text: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

/// The timing harness handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            sample_count,
        }
    }

    /// Measures `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_count {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }

    /// Measures `routine` on inputs produced by `setup`, excluding the
    /// setup time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_count {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.samples.push(start.elapsed());
            drop(out);
        }
    }

    fn median(&mut self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort_unstable();
        Some(self.samples[self.samples.len() / 2])
    }
}

fn run_one(label: &str, sample_count: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher::new(sample_count);
    f(&mut bencher);
    match bencher.median() {
        Some(median) => println!("{label:<48} median {median:>12.3?} ({sample_count} samples)"),
        None => println!("{label:<48} (no measurement: routine never called iter)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of measured samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.sample_count, f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.sample_count, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_count: 16 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_count = self.sample_count;
        BenchmarkGroup {
            name: name.into(),
            sample_count,
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_count, f);
        self
    }
}

/// Re-export matching criterion's `black_box` (deprecated upstream in
/// favour of `std::hint::black_box`, which the workspace already uses).
pub use std::hint::black_box;

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(4);
        group.bench_function(BenchmarkId::from_parameter(7), |b| {
            b.iter(|| black_box(3u64.wrapping_mul(black_box(5))))
        });
        group.bench_with_input(BenchmarkId::new("sum", 3), &vec![1u64, 2, 3], |b, v| {
            b.iter_batched(
                || v.clone(),
                |owned| owned.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_without_panicking() {
        benches();
    }
}
