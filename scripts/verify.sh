#!/usr/bin/env bash
# Full local verification: everything CI runs, in one command.
#
# All dependencies are vendored as path crates (see [workspace.dependencies]
# in Cargo.toml), so this works with no network access; --locked makes any
# accidental registry reach a hard error instead of a silent fetch.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --workspace --release --locked

echo "==> cargo test"
cargo test --workspace --locked --quiet

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --locked -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> conformance smoke (differential oracles)"
cargo run -p generic-bench --release --locked --quiet --bin conformance -- --smoke

echo "==> throughput smoke (SIMD dispatch, batched scoring)"
cargo run -p generic-bench --release --locked --quiet --bin throughput -- --smoke

echo "==> soak smoke (crash recovery, deadline storm, sharded chaos, registry crash storm)"
cargo run -p generic-bench --release --locked --quiet --bin soak -- --smoke

echo "==> registry crash-recovery smoke (generational ledger, portable kernels forced)"
GENERIC_FORCE_PORTABLE=1 \
  cargo run -p generic-bench --release --locked --quiet --bin soak -- --smoke

echo "==> sharded serve bench smoke (QPS, latency percentiles, loopback netload)"
cargo run -p generic-bench --release --locked --quiet --bin serve -- --smoke

echo "==> sharded serve bench smoke (portable kernels forced)"
GENERIC_FORCE_PORTABLE=1 \
  cargo run -p generic-bench --release --locked --quiet --bin serve -- --smoke

echo "==> compression bench smoke (Pareto search, pruned bit-identity, tenant capacity)"
cargo run -p generic-bench --release --locked --quiet --bin compress -- --smoke

echo "==> compression bench smoke (portable kernels forced)"
GENERIC_FORCE_PORTABLE=1 \
  cargo run -p generic-bench --release --locked --quiet --bin compress -- --smoke

echo "==> registry bench smoke (mapped multi-tenant churn)"
cargo run -p generic-bench --release --locked --quiet --bin registry -- --smoke

echo "==> registry bench smoke (portable kernels forced)"
GENERIC_FORCE_PORTABLE=1 \
  cargo run -p generic-bench --release --locked --quiet --bin registry -- --smoke

echo "All checks passed."
