#!/usr/bin/env bash
# Line-coverage report for the correctness-critical crates, with an
# enforced floor on crates/core.
#
# Usage:
#   scripts/coverage.sh          # report only
#   scripts/coverage.sh --ci     # report and enforce COVERAGE_FLOOR
#
# Requires cargo-llvm-cov (https://github.com/taiki-e/cargo-llvm-cov).
# Offline/dev containers without it get a graceful skip, not a failure:
# coverage is a CI-job concern, the tool is deliberately not vendored.

set -euo pipefail
cd "$(dirname "$0")/.."

# Minimum line coverage (percent) for generic-hdc, the crate every other
# layer trusts. Raise deliberately; never lower to green a PR.
COVERAGE_FLOOR="${COVERAGE_FLOOR:-80}"

if ! cargo llvm-cov --version >/dev/null 2>&1; then
  echo "cargo-llvm-cov is not installed; skipping coverage." >&2
  echo "Install with: cargo install cargo-llvm-cov --locked" >&2
  exit 0
fi

enforce=false
if [[ "${1:-}" == "--ci" ]]; then
  enforce=true
fi

# The conformance crate's tests execute the differential stages across
# generic-hdc and generic-sim, so running both packages' tests gives the
# core crate its cross-layer coverage too.
run() {
  cargo llvm-cov --locked \
    -p generic-hdc -p generic-conformance \
    --summary-only "$@"
}

run
echo

if $enforce; then
  echo "enforcing ${COVERAGE_FLOOR}% line-coverage floor on generic-hdc"
  # `--fail-under-lines` exits nonzero below the floor. Scope the gate to
  # the core crate: JSON from the same instrumented run, no re-test.
  run --fail-under-lines "${COVERAGE_FLOOR}"
  echo "coverage floor satisfied"
fi
